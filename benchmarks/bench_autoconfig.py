"""X2 — auto-configuration from a stream prefix.

Extension artifact: the §3.1 "you must know the distribution" caveat,
operationalized.  The bench asserts that trackers dimensioned blind from
a 10% prefix still meet both APPROXTOP guarantees on the full stream, and
that the recommended width lands within a small factor of the oracle.
"""

from conftest import save_report

from repro.experiments import autoconfig

CONFIG = autoconfig.AutoConfigConfig()


def _run():
    return autoconfig.run(CONFIG)


def test_autoconfig(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("X2_autoconfig", autoconfig.format_report(rows, CONFIG))

    for row in rows:
        assert row.weak_rate == 1.0
        assert row.strong_rate == 1.0
        assert 0.3 <= row.width_ratio <= 3.0
        # The fitted exponent lands near the generator's z.
        assert abs(row.fitted_z - row.z) < 0.35
