"""T1 — update throughput, whole-pipeline and per-operation.

Not a paper artifact (the paper is analytic); standard release
benchmarks.  The whole-stream comparison runs via the experiment module;
the per-operation benches time the hot paths (sketch update/estimate,
tracker update) individually under pytest-benchmark statistics.
"""

import itertools

from conftest import save_report

from repro.baselines.kps import KPSFrequent
from repro.baselines.space_saving import SpaceSaving
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.experiments import throughput
from repro.streams.zipf import ZipfStreamGenerator

CONFIG = throughput.ThroughputConfig()


def test_throughput_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: throughput.run(CONFIG), rounds=1, iterations=1
    )
    save_report("T1_throughput", throughput.format_report(rows, CONFIG))
    assert all(row.items_per_second > 0 for row in rows)


def _stream_cycle():
    stream = ZipfStreamGenerator(m=1_000, z=1.0, seed=1).generate(10_000)
    return itertools.cycle(stream.items)


def test_countsketch_update(benchmark):
    sketch = CountSketch(5, 512, seed=0)
    items = _stream_cycle()
    benchmark(lambda: sketch.update(next(items)))


def test_countsketch_estimate(benchmark):
    sketch = CountSketch(5, 512, seed=0)
    stream = ZipfStreamGenerator(m=1_000, z=1.0, seed=1).generate(10_000)
    sketch.update_counts(stream.counts())
    items = _stream_cycle()
    benchmark(lambda: sketch.estimate(next(items)))


def test_topk_tracker_update(benchmark):
    tracker = TopKTracker(10, depth=5, width=512, seed=0)
    items = _stream_cycle()
    benchmark(lambda: tracker.update(next(items)))


def test_kps_update(benchmark):
    summary = KPSFrequent(512)
    items = _stream_cycle()
    benchmark(lambda: summary.update(next(items)))


def test_space_saving_update(benchmark):
    summary = SpaceSaving(512)
    items = _stream_cycle()
    benchmark(lambda: summary.update(next(items)))


def test_vectorized_batch_update_50k(benchmark):
    """The NumPy batch path: one call sketches 50k pre-encoded keys."""
    from repro.core.vectorized import VectorizedCountSketch
    from repro.hashing.vectorized import encode_keys

    stream = ZipfStreamGenerator(m=5_000, z=1.0, seed=2).generate(50_000)
    keys = encode_keys(list(stream))

    def run():
        sketch = VectorizedCountSketch(5, 512, seed=0)
        sketch.update_batch(keys)
        return sketch

    sketch = benchmark(run)
    assert sketch.total_weight == 50_000


def test_vectorized_estimate_batch_10k(benchmark):
    """Batch estimation of 10k keys in one call."""
    from repro.core.vectorized import VectorizedCountSketch
    from repro.hashing.vectorized import encode_keys

    stream = ZipfStreamGenerator(m=5_000, z=1.0, seed=2).generate(50_000)
    sketch = VectorizedCountSketch(5, 512, seed=0)
    sketch.update_batch(encode_keys(list(stream)))
    queries = encode_keys(list(range(1, 10_001)))
    benchmark(lambda: sketch.estimate_batch(queries))
