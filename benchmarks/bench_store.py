"""BENCH — snapshot save/load and checkpoint throughput (repro.store).

Measures, per summary type and sketch width:

* ``dumps`` / ``loads`` — in-memory encode/decode throughput (MB/s over
  the frame bytes), the codec cost with the filesystem factored out;
* ``save`` / ``load`` — atomic file write (tmp + fsync + rename) and
  file read throughput, what checkpointing actually pays;
* a :class:`~repro.store.CheckpointManager` ingestion pass, reported as
  items/s alongside the same loop without checkpointing, so the
  per-checkpoint cost is visible as an overhead percentage.

Every timed round-trip also asserts exactness (``loads(dumps(s)) == s``
state), so the bench doubles as a coarse correctness smoke.

Emits a BENCH json (``benchmarks/out/BENCH_store.json``) so future perf
PRs have a trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_store.py            # full
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.store import CheckpointManager, dumps, load, loads, save
from repro.streams.zipf import ZipfStreamGenerator

OUT_PATH = Path(__file__).parent / "out" / "BENCH_store.json"

DEPTH = 5
SEED = 0


def _make_stream(n: int) -> list:
    """A Zipf(1.0) item stream — the repo's canonical workload."""
    return list(ZipfStreamGenerator(m=10_000, z=1.0, seed=7).generate(n))


def _build(kind: str, width: int, stream: list):
    """One loaded summary of ``kind`` at ``width`` over ``stream``."""
    if kind == "dense":
        summary = CountSketch(DEPTH, width, seed=SEED)
    elif kind == "sparse":
        summary = SparseCountSketch(DEPTH, width, seed=SEED)
    elif kind == "vectorized":
        summary = VectorizedCountSketch(DEPTH, width, seed=SEED)
    elif kind == "topk":
        summary = TopKTracker(10, depth=DEPTH, width=width, seed=SEED)
    elif kind == "window":
        summary = JumpingWindowSketch(
            len(stream), buckets=8, depth=DEPTH, width=width, seed=SEED
        )
    else:  # pragma: no cover - defensive
        raise ValueError(kind)
    update = summary.update
    for item in stream:
        update(item)
    return summary


def _best_rate(payload_bytes: int, repeats: int, fn) -> float:
    """Best-of-``repeats`` MB/s for ``fn`` over ``payload_bytes``."""
    best = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = max(best, payload_bytes / elapsed / 1e6)
    return best


def bench_snapshot(kind: str, width: int, stream: list, repeats: int,
                   tmp_dir: Path) -> dict:
    """Codec + file throughput for one (kind, width) cell."""
    summary = _build(kind, width, stream)
    frame = dumps(summary)
    restored = loads(frame)
    assert dumps(restored) == frame, "round-trip must be byte-exact"
    path = tmp_dir / f"{kind}-{width}.rcs"

    return {
        "type": kind,
        "width": width,
        "frame_bytes": len(frame),
        "dumps_mb_per_s": round(
            _best_rate(len(frame), repeats, lambda: dumps(summary)), 1
        ),
        "loads_mb_per_s": round(
            _best_rate(len(frame), repeats, lambda: loads(frame)), 1
        ),
        "save_mb_per_s": round(
            _best_rate(len(frame), repeats, lambda: save(summary, path)), 1
        ),
        "load_mb_per_s": round(
            _best_rate(len(frame), repeats, lambda: load(path)), 1
        ),
    }


def bench_checkpoint(stream: list, width: int, every_items: int,
                     tmp_dir: Path) -> dict:
    """Checkpointed vs plain ingestion throughput for a TopKTracker."""
    plain = TopKTracker(10, depth=DEPTH, width=width, seed=SEED)
    update = plain.update
    start = time.perf_counter()
    for item in stream:
        update(item)
    plain_rate = len(stream) / (time.perf_counter() - start)

    manager = CheckpointManager(
        TopKTracker(10, depth=DEPTH, width=width, seed=SEED),
        tmp_dir / "checkpoint.rcs",
        every_items=every_items,
    )
    start = time.perf_counter()
    manager.extend(stream)
    checkpointed_rate = len(stream) / (time.perf_counter() - start)

    return {
        "width": width,
        "every_items": every_items,
        "checkpoints": len(stream) // every_items + 1,
        "plain_items_per_s": round(plain_rate),
        "checkpointed_items_per_s": round(checkpointed_rate),
        "overhead_pct": round(
            100.0 * (plain_rate - checkpointed_rate) / plain_rate, 2
        ),
    }


def run(n: int, widths: list[int], repeats: int) -> dict:
    """Measure every (type, width) cell; return the BENCH record."""
    stream = _make_stream(n)
    kinds = ["dense", "sparse", "vectorized", "topk", "window"]
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        snapshots = [
            bench_snapshot(kind, width, stream, repeats, tmp_dir)
            for kind in kinds
            for width in widths
        ]
        checkpoint = bench_checkpoint(
            stream, widths[-1], every_items=max(1, n // 10), tmp_dir=tmp_dir
        )
    return {
        "bench": "store",
        "n": n,
        "repeats": repeats,
        "snapshots": snapshots,
        "checkpoint": checkpoint,
    }


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    lines = [
        "BENCH store (n={n}, best of {repeats})".format(**record),
        "  {:<11} {:>7} {:>11} {:>9} {:>9} {:>9} {:>9}".format(
            "type", "width", "bytes", "dumps", "loads", "save", "load"
        ),
    ]
    for row in record["snapshots"]:
        lines.append(
            "  {type:<11} {width:>7} {frame_bytes:>11,} "
            "{dumps_mb_per_s:>7.1f}MB {loads_mb_per_s:>7.1f}MB "
            "{save_mb_per_s:>7.1f}MB {load_mb_per_s:>7.1f}MB".format(**row)
        )
    ckpt = record["checkpoint"]
    lines.append(
        "  checkpoint (topk w={width}, every {every_items}): "
        "{plain_items_per_s:,} items/s plain | "
        "{checkpointed_items_per_s:,} items/s checkpointed | "
        "{overhead_pct:+.2f}% overhead".format(**ckpt)
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the bench and write the BENCH json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000,
                        help="stream length (default 200000)")
    parser.add_argument("--widths", type=int, nargs="+",
                        default=[256, 1024, 4096],
                        help="sketch widths to sweep (default 256 1024 4096)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best kept (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: small n, one width, fewer repeats")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    args = parser.parse_args(argv)

    n = min(args.n, 20_000) if args.smoke else args.n
    widths = args.widths[:1] if args.smoke else args.widths
    repeats = min(args.repeats, 2) if args.smoke else args.repeats

    record = run(n, widths, repeats)
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
