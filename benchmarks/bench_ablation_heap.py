"""A3 — ablation: exact heap counts (§3.2 step 2).

Design-choice artifact: "if q_j is in the heap, increment its count."
The bench asserts the exact-increment policy reports sharper counts than
re-estimating heap members from the sketch.
"""

from conftest import save_report

from repro.experiments import ablation_heap_counts

CONFIG = ablation_heap_counts.HeapAblationConfig()


def _run():
    return ablation_heap_counts.run(CONFIG)


def test_ablation_heap_counts(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "A3_ablation_heap",
        ablation_heap_counts.format_report(rows, CONFIG),
    )

    exact, reestimate = rows
    assert exact.mean_relative_count_error <= (
        reestimate.mean_relative_count_error + 1e-9
    )
    assert exact.recall >= reestimate.recall - 0.1
