"""E5 — the §4.1 Case 1–3 width scaling laws.

Paper artifact: b = m^{1−2z}k^{2z} (z < ½), k·log m (z = ½), k (z > ½).
The bench measures required widths across the sweeps and asserts the
fitted exponents sit in the predicted ranges.
"""

from conftest import save_report

from repro.experiments import zipf_space_scaling

CONFIG = zipf_space_scaling.ScalingConfig()


def _run():
    return zipf_space_scaling.run(CONFIG)


def test_zipf_space_scaling(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "E5_zipf_space_scaling",
        zipf_space_scaling.format_report(result, CONFIG),
    )

    # Case 1 (z=0.3, theory 0.4): b grows with m but clearly sublinearly.
    assert 0.1 <= result.case1_slope <= 0.9
    # Case 2 (z=0.5, theory ~0): essentially flat in m.
    assert abs(result.case2_slope) <= 0.35
    # Case 3 (z=0.9, theory 1.0): linear in k.
    assert 0.6 <= result.case3_slope <= 1.4
    # Cross-case ordering: Case 1 depends on m strictly more than Case 2.
    assert result.case1_slope > result.case2_slope
