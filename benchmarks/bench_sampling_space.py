"""E6 — the §4.1 SAMPLING space analysis.

Paper artifact: the expected-distinct-items formulas (the SAMPLING column
of Table 1).  The bench runs the sampler at the §4.1 rate per regime and
asserts the measurement matches the exact finite-m prediction.
"""

from conftest import save_report

from repro.experiments import sampling_space

CONFIG = sampling_space.SamplingSpaceConfig()


def _run():
    return sampling_space.run(CONFIG)


def test_sampling_space(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "E6_sampling_space", sampling_space.format_report(rows, CONFIG)
    )

    for row in rows:
        assert 0.85 <= row.measured_over_exact <= 1.15
    measured = [row.measured_distinct for row in rows]
    assert measured == sorted(measured, reverse=True)
