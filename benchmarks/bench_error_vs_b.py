"""E2 — error vs width (Eq. 5 / Lemma 4).

Paper artifact: the 8γ error guarantee and its b^{-1/2} scaling.  The
bench reruns the full sweep at the default configuration and asserts the
bound holds and the decay is at least as fast as the guarantee.
"""

from conftest import save_report

from repro.experiments import error_vs_b

CONFIG = error_vs_b.ErrorVsBConfig()


def _run():
    return error_vs_b.run(CONFIG)


def test_error_vs_b(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("E2_error_vs_b", error_vs_b.format_report(rows, CONFIG))

    for row in rows:
        assert row.within_bound_fraction >= 0.98
    for z in CONFIG.zs:
        exponent = error_vs_b.fitted_exponent(rows, z)
        assert exponent <= -0.35
    # CLT regime: the guarantee's exponent is tight at z = 0.5.
    assert abs(error_vs_b.fitted_exponent(rows, 0.5) - (-0.5)) < 0.25
