"""A1 — ablation: median vs mean combiner (§3.1).

Design-choice artifact: the paper's argument for the median.  The bench
reruns the planted-heavy-hitter comparison and asserts the median's error
profile dominates the mean's.
"""

from conftest import save_report

from repro.experiments import ablation_estimator

CONFIG = ablation_estimator.EstimatorAblationConfig()


def _run():
    return ablation_estimator.run(CONFIG)


def test_ablation_estimator(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "A1_ablation_estimator",
        ablation_estimator.format_report(rows, CONFIG),
    )

    by = {row.combiner: row for row in rows}
    assert by["median"].mean_abs_error < by["mean"].mean_abs_error
    assert by["median"].p95_abs_error < by["mean"].p95_abs_error
