"""BENCH — instrumentation overhead on the dense-sketch hot paths.

Measures update throughput for the same workload three ways:

* ``disabled`` — the default :class:`~repro.observability.NullRegistry`
  (what every uninstrumented run pays after this PR; the acceptance bar
  is that this stays within a few percent of the pre-instrumentation
  baseline, i.e. the ``is not None`` guards are near-free);
* ``enabled`` — a collecting :class:`~repro.observability.MetricsRegistry`
  (what ``--metrics-out`` runs pay);
* a :class:`~repro.core.topk.TopKTracker` pass under both registries
  (sketch + heap instrumentation combined).

Emits a BENCH json (``benchmarks/out/BENCH_overhead.json``) so future
perf PRs have a trajectory, and exits nonzero when the enabled-registry
overhead exceeds ``--max-overhead-pct`` — the CI smoke gate
(``--smoke``) that keeps instrumentation regressions out of production.

Run::

    PYTHONPATH=src python benchmarks/bench_overhead.py            # full
    PYTHONPATH=src python benchmarks/bench_overhead.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.observability import MetricsRegistry, use_registry
from repro.streams.zipf import ZipfStreamGenerator

OUT_PATH = Path(__file__).parent / "out" / "BENCH_overhead.json"


def _make_stream(n: int) -> list:
    """A Zipf(1.0) item stream — the repo's canonical hot-path workload."""
    return list(ZipfStreamGenerator(m=10_000, z=1.0, seed=7).generate(n))


def _time_sketch_updates(stream: list, repeats: int) -> float:
    """Best-of-``repeats`` items/s for a dense CountSketch update loop."""
    best = 0.0
    for __ in range(repeats):
        sketch = CountSketch(5, 1024, seed=0)
        update = sketch.update
        start = time.perf_counter()
        for item in stream:
            update(item)
        elapsed = time.perf_counter() - start
        best = max(best, len(stream) / elapsed)
    return best


def _time_tracker_updates(stream: list, repeats: int) -> float:
    """Best-of-``repeats`` items/s for a TopKTracker pass."""
    best = 0.0
    for __ in range(repeats):
        tracker = TopKTracker(10, depth=5, width=1024, seed=0)
        update = tracker.update
        start = time.perf_counter()
        for item in stream:
            update(item)
        elapsed = time.perf_counter() - start
        best = max(best, len(stream) / elapsed)
    return best


def run(n: int, repeats: int) -> dict:
    """Measure disabled vs enabled throughput; return the BENCH record."""
    stream = _make_stream(n)

    sketch_disabled = _time_sketch_updates(stream, repeats)
    tracker_disabled = _time_tracker_updates(stream, repeats)
    with use_registry(MetricsRegistry()):
        sketch_enabled = _time_sketch_updates(stream, repeats)
        tracker_enabled = _time_tracker_updates(stream, repeats)

    def overhead(disabled: float, enabled: float) -> float:
        return 100.0 * (disabled - enabled) / disabled

    return {
        "bench": "overhead",
        "n": n,
        "repeats": repeats,
        "sketch_disabled_items_per_s": round(sketch_disabled),
        "sketch_enabled_items_per_s": round(sketch_enabled),
        "sketch_overhead_pct": round(
            overhead(sketch_disabled, sketch_enabled), 2
        ),
        "tracker_disabled_items_per_s": round(tracker_disabled),
        "tracker_enabled_items_per_s": round(tracker_enabled),
        "tracker_overhead_pct": round(
            overhead(tracker_disabled, tracker_enabled), 2
        ),
    }


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    return (
        "BENCH overhead (n={n}, best of {repeats})\n"
        "  dense sketch : {sketch_disabled_items_per_s:>10,} items/s "
        "disabled | {sketch_enabled_items_per_s:>10,} items/s enabled "
        "| {sketch_overhead_pct:+.2f}% overhead\n"
        "  topk tracker : {tracker_disabled_items_per_s:>10,} items/s "
        "disabled | {tracker_enabled_items_per_s:>10,} items/s enabled "
        "| {tracker_overhead_pct:+.2f}% overhead"
    ).format(**record)


def main(argv: list[str] | None = None) -> int:
    """Run the bench; write the BENCH json; gate on enabled overhead."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400_000,
                        help="stream length (default 400000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best kept (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small n, fewer repeats")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    parser.add_argument("--max-overhead-pct", type=float, default=30.0,
                        help="fail when enabled-registry overhead exceeds "
                             "this percentage (default 30)")
    args = parser.parse_args(argv)

    n = min(args.n, 60_000) if args.smoke else args.n
    repeats = min(args.repeats, 2) if args.smoke else args.repeats
    record = run(n, repeats)
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")

    worst = max(record["sketch_overhead_pct"], record["tracker_overhead_pct"])
    if worst > args.max_overhead_pct:
        print(
            f"FAIL: enabled-metrics overhead {worst:.2f}% exceeds "
            f"{args.max_overhead_pct:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
