"""E4 — the APPROXTOP(S, k, ε) guarantees (Lemma 5 / Theorem 1).

Paper artifact: Theorem 1's output guarantees at the Lemma 5 parameters.
The bench dimensions the tracker exactly as the analysis prescribes, runs
it, and asserts both the weak and strong guarantees hold at full width
(and records how far below the Lemma 5 width they keep holding).
"""

from conftest import save_report

from repro.experiments import approxtop_quality

CONFIG = approxtop_quality.ApproxTopConfig()


def _run():
    return approxtop_quality.run(CONFIG)


def test_approxtop_guarantees(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "E4_approxtop", approxtop_quality.format_report(rows, CONFIG)
    )

    assert approxtop_quality.lemma5_rows_all_pass(rows)
    # The analysis is conservative: 1/16 of the width still passes weak.
    for row in rows:
        if row.width_fraction == 16:
            assert row.weak_rate == 1.0
