"""T3 — sharded parallel ingestion scaling vs worker count.

Runs the :mod:`repro.experiments.parallel_scaling` experiment (the T1
throughput workload pushed through the §3.2-linearity sharded engine at
1/2/4 workers per backend) under pytest-benchmark timing, persists the
report, and asserts the two properties the engine exists for:

* every merged sketch is bit-for-bit equal to the single-process sketch;
* 4 sharded workers beat the single-process item-at-a-time ingest by ≥ 2×
  (on single-core hosts the margin comes from per-shard pre-aggregation
  and batch updates, which linearity makes exact; on multicore hosts
  process parallelism adds to it).
"""

from conftest import save_report

from repro.experiments import parallel_scaling

CONFIG = parallel_scaling.ParallelScalingConfig()


def test_parallel_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: parallel_scaling.run(CONFIG), rounds=1, iterations=1
    )
    save_report(
        "T3_parallel_scaling",
        parallel_scaling.format_report(rows, CONFIG),
    )
    assert all(row.exact for row in rows)
    assert all(row.items_per_second > 0 for row in rows)
    best_at_4 = max(
        row.speedup for row in rows if row.n_workers == 4
    )
    assert best_at_4 >= 2.0, (
        f"4-worker ingest only reached {best_at_4:.2f}x the "
        "single-process item loop"
    )


def test_parallel_merge_overhead_small(benchmark):
    """Merging shards must stay a tiny fraction of ingest time."""

    def run():
        rows = parallel_scaling.run(CONFIG)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        if row.backend == "item-loop":
            continue
        ingest_seconds = CONFIG.n / row.items_per_second
        assert row.merge_seconds <= ingest_seconds
