"""E3 — failure probability vs depth (Lemma 3).

Paper artifact: the Chernoff decay that justifies t = Θ(log n/δ).  The
bench reruns the depth sweep and asserts the failure rate decays and that
8γ busts are (near-)absent at practical depths.
"""

from conftest import save_report

from repro.experiments import failure_vs_t

CONFIG = failure_vs_t.FailureVsTConfig()


def _run():
    return failure_vs_t.run(CONFIG)


def test_failure_vs_t(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("E3_failure_vs_t", failure_vs_t.format_report(rows, CONFIG))

    assert failure_vs_t.decay_is_exponential(rows, "fail_rate_1g")
    assert failure_vs_t.decay_is_exponential(rows, "fail_rate_2g")
    # At depth >= 5 the 8γ bound essentially never fails.
    deep = [row for row in rows if row.depth >= 5]
    assert all(row.fail_rate_8g <= 0.005 for row in deep)
