"""X3 — jumping-window fidelity vs bucket granularity.

Extension artifact: the window sketch must (a) estimate in-window counts
accurately, (b) forget retired items, and (c) never cover more than W
items, with the span wobble shrinking as buckets increase.
"""

from conftest import save_report

from repro.experiments import windowed_accuracy

CONFIG = windowed_accuracy.WindowedAccuracyConfig()


def _run():
    return windowed_accuracy.run(CONFIG)


def test_windowed_accuracy(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "X3_windowed_accuracy",
        windowed_accuracy.format_report(rows, CONFIG),
    )

    for row in rows:
        assert row.mean_relative_error <= 0.15
        # Retired items leave only sketch noise, far below their count.
        assert row.retired_residual <= CONFIG.retired_count * 0.05
        assert row.covered_max <= CONFIG.window
    # More buckets => tighter span floor.
    floors = [row.covered_min for row in rows]
    assert floors == sorted(floors)
