"""T2 — sparse vs dense backend at Lemma 5-scale widths.

Not a paper artifact: release benchmark for the sparse backend.  At a
width Lemma 5 actually prescribes (~10⁵) with a small-support stream, the
sparse sketch must (a) produce identical estimates, (b) hold orders of
magnitude fewer counters, and (c) stay within a small constant factor on
update speed.
"""

from conftest import save_report

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator

DEPTH, WIDTH, SEED = 5, 1 << 17, 3


def _counts():
    stream = ZipfStreamGenerator(m=5_000, z=1.0, seed=1).generate(50_000)
    return stream.counts()


def test_dense_update_wide(benchmark):
    counts = _counts()

    def run():
        sketch = CountSketch(DEPTH, WIDTH, seed=SEED)
        sketch.update_counts(counts)
        return sketch

    benchmark(run)


def test_sparse_update_wide(benchmark):
    counts = _counts()

    def run():
        sketch = SparseCountSketch(DEPTH, WIDTH, seed=SEED)
        sketch.update_counts(counts)
        return sketch

    sketch = benchmark(run)

    dense = CountSketch(DEPTH, WIDTH, seed=SEED)
    dense.update_counts(counts)
    # Identical estimates at a fraction of the counters.
    for item in (1, 2, 3, 10, 100):
        assert sketch.estimate(item) == dense.estimate(item)
    report = format_table(
        ["backend", "counters held", "nominal t*b"],
        [
            ["dense", dense.counters_used(), dense.counters_used()],
            ["sparse", sketch.buckets_touched(), sketch.nominal_counters()],
        ],
        title=f"T2 — backend space at b={WIDTH} (m=5000 distinct items)",
    )
    save_report("T2_sparse_backend", report)
    assert sketch.buckets_touched() < dense.counters_used() // 10
