"""BENCH — production traffic against the hardened service tier.

Drives three seeded ``repro.traffic`` scenarios against live servers
and records saturation throughput, p50/p99/p999 latency, refusal
counts, per-tenant fairness, and bit-exactness under fire:

* **mixed** — closed-loop saturation, uniform tenants, no limits: the
  baseline throughput/latency surface, with the mid-load exactness
  probe running while the other tables are hammered.
* **hot_tenant** — one tenant receives most of the offered load
  (Zipf-skewed tenant choice) with per-table ingest quotas and
  weighted-fair draining enabled.  Every tenant must achieve at least
  ``FAIR_SHARE_FLOOR`` of its *fair-share throughput* — the smaller of
  what it offered and what its quota admits — so a hot tenant can be
  throttled but can never starve a cold one.
* **shedding** — a real TCP server with a tiny ingest queue, low
  quotas, and a connection cap: overload must surface as documented
  ``overloaded`` / ``quota_exceeded`` refusals (never ``internal``
  errors or silent drops), estimates must stay bit-equal to an offline
  summary mid-load, and the connection cap must refuse the excess
  connection with one ``overloaded`` frame.

``--gate`` asserts all of the above.  Emits
``benchmarks/out/BENCH_traffic.json`` so future perf PRs have a
trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_traffic.py            # full
    PYTHONPATH=src python benchmarks/bench_traffic.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_traffic.py --gate     # CI bound
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro.service import (
    AsyncServiceClient,
    OverloadedError,
    ServiceConnectionError,
    ServiceError,
    ServiceLimits,
    SketchServer,
)
from repro.traffic import TrafficRunner, WorkloadSpec

OUT_PATH = Path(__file__).parent / "out" / "BENCH_traffic.json"

SEED = 7

#: Every tenant must reach this fraction of its fair-share throughput
#: (min of offered records and quota-admitted records) in hot_tenant.
FAIR_SHARE_FLOOR = 0.5

#: hot_tenant per-table ingest quota (records/second).
HOT_INGEST_RATE = 4000.0

#: shedding scenario connection cap (runner needs clients + admin).
SHED_MAX_CONNECTIONS = 8


async def _scenario_mixed(duration: float) -> dict:
    """Closed-loop saturation with uniform tenants and no limits."""
    server = SketchServer()
    await server.start()
    try:
        spec = WorkloadSpec(tenants=4, keys_per_tenant=256,
                            query_fraction=0.25, batch_size=32,
                            seed=SEED, table_prefix="mix")
        runner = TrafficRunner(spec, clients=4, duration=duration)
        report = await runner.run(
            lambda: AsyncServiceClient.in_process(server))
    finally:
        await server.stop()
    return {"scenario": "mixed", **report.to_dict()}


async def _scenario_hot_tenant(duration: float) -> dict:
    """Zipf-skewed tenants under per-table quotas + fair draining."""
    limits = ServiceLimits(ingest_rate=HOT_INGEST_RATE,
                           fair_quantum=128)
    server = SketchServer(limits=limits)
    await server.start()
    try:
        spec = WorkloadSpec(tenants=4, keys_per_tenant=256,
                            zipf_tenant=2.0, query_fraction=0.1,
                            batch_size=32, seed=SEED,
                            table_prefix="hot")
        runner = TrafficRunner(spec, clients=6, duration=duration)
        report = await runner.run(
            lambda: AsyncServiceClient.in_process(server))
    finally:
        await server.stop()
    row = {"scenario": "hot_tenant", **report.to_dict()}
    # Fair share per tenant: what it offered, capped by what its quota
    # admits over the run (steady rate plus the initial burst).
    admitted = HOT_INGEST_RATE * report.duration + HOT_INGEST_RATE
    fair = {}
    for name in spec.table_names():
        offered = report.per_tenant_sent.get(name, 0)
        acknowledged = report.per_tenant_records.get(name, 0)
        share = min(offered, admitted)
        fair[name] = {
            "offered": offered,
            "acknowledged": acknowledged,
            "fair_share": round(share),
            "fraction": (round(acknowledged / share, 4)
                         if share > 0 else 1.0),
        }
    row["fair_share"] = fair
    return row


async def _check_connection_cap(host: str, port: int) -> dict:
    """Open connections past the cap; the excess one must be refused
    with a documented ``overloaded`` frame (or an immediate close)."""
    extras: list[AsyncServiceClient] = []
    shed = False
    opened = 0
    try:
        for _ in range(SHED_MAX_CONNECTIONS + 2):
            client = await AsyncServiceClient.connect(host, port)
            try:
                await client.ping()
            except (OverloadedError, ServiceConnectionError):
                shed = True
                await client.close()
                break
            extras.append(client)
            opened += 1
    finally:
        for client in extras:
            await client.close()
    return {"opened_before_refusal": opened, "refused": shed}


async def _scenario_shedding(duration: float) -> dict:
    """TCP server under overload: tiny queue, low quotas, conn cap."""
    limits = ServiceLimits(max_connections=SHED_MAX_CONNECTIONS,
                           ingest_rate=2000.0, ingest_burst=256)
    server = SketchServer(queue_capacity=4, limits=limits)
    host, port = await server.start("127.0.0.1", 0)
    try:
        spec = WorkloadSpec(tenants=2, keys_per_tenant=256,
                            query_fraction=0.05, batch_size=64,
                            seed=SEED, table_prefix="shed")
        runner = TrafficRunner(spec, clients=5, duration=duration)
        report = await runner.run(
            lambda: AsyncServiceClient.connect(host, port))
        cap = await _check_connection_cap(host, port)
    finally:
        await server.stop()
    return {"scenario": "shedding", "connection_cap": cap,
            **report.to_dict()}


def run(duration: float) -> dict:
    """Run the three scenarios; return the BENCH record."""

    async def drive() -> dict:
        return {
            "bench": "traffic",
            "seed": SEED,
            "duration_per_scenario": duration,
            "fair_share_floor": FAIR_SHARE_FLOOR,
            "scenarios": {
                "mixed": await _scenario_mixed(duration),
                "hot_tenant": await _scenario_hot_tenant(duration),
                "shedding": await _scenario_shedding(duration),
            },
        }

    return asyncio.run(drive())


def check_gate(record: dict) -> str | None:
    """Assert the documented traffic bounds (see module docstring)."""
    mixed = record["scenarios"]["mixed"]
    for kind in ("ingest", "estimate"):
        stats = mixed["latency"].get(kind)
        if stats is None or stats["count"] == 0:
            return f"gate FAILED: mixed scenario completed no {kind} ops"
        if not (stats["p50_ms"] <= stats["p99_ms"] <= stats["p999_ms"]):
            return (
                f"gate FAILED: mixed {kind} percentiles are not "
                f"monotone: {stats}"
            )
    if mixed["throughput_ops_per_s"] <= 0:
        return "gate FAILED: mixed scenario reports no throughput"

    hot = record["scenarios"]["hot_tenant"]
    for name, cell in hot["fair_share"].items():
        if cell["fair_share"] > 0 and cell["fraction"] < FAIR_SHARE_FLOOR:
            return (
                f"gate FAILED: tenant {name} achieved only "
                f"{cell['fraction']:.2f} of its fair-share throughput "
                f"(floor {FAIR_SHARE_FLOOR})"
            )

    shed = record["scenarios"]["shedding"]
    refusals = (shed["errors"].get("overloaded", 0)
                + shed["errors"].get("quota_exceeded", 0))
    if refusals == 0:
        return (
            "gate FAILED: shedding scenario produced no "
            "overloaded/quota_exceeded refusals"
        )
    if not shed["connection_cap"]["refused"]:
        return (
            "gate FAILED: the connection cap never refused an excess "
            "connection"
        )

    for name, row in record["scenarios"].items():
        if "internal" in row["errors"]:
            return (
                f"gate FAILED: scenario {name} surfaced "
                f"{row['errors']['internal']} internal error(s)"
            )
        if not row["verification"]["no_silent_drops"]:
            return (
                f"gate FAILED: scenario {name} silently dropped "
                "acknowledged records"
            )
        if not row["probe"]["bit_equal"]:
            return (
                f"gate FAILED: scenario {name} mid-load estimates "
                "diverged from the offline summary"
            )
    return None


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    lines = [
        "BENCH traffic (seed={seed}, {duration_per_scenario}s per "
        "scenario)".format(**record),
    ]
    for name, row in record["scenarios"].items():
        total_ops = sum(row["ops"].values())
        total_errors = sum(row["errors"].values())
        lines.append(
            f"  {name}: {total_ops} ops "
            f"({row['throughput_ops_per_s']:.0f} ops/s), "
            f"{total_errors} refused, fairness "
            f"{row['fairness_ratio']:.3f}"
        )
        for kind in sorted(row["latency"]):
            stats = row["latency"][kind]
            lines.append(
                f"    {kind}: n={stats['count']} "
                f"p50={stats['p50_ms']:.2f}ms "
                f"p99={stats['p99_ms']:.2f}ms "
                f"p999={stats['p999_ms']:.2f}ms"
            )
        for code in sorted(row["errors"]):
            lines.append(f"    refused {code}: {row['errors'][code]}")
        probe = row["probe"]
        lines.append(
            f"    probe: {probe['keys_exact']}/{probe['keys_checked']} "
            f"keys bit-equal mid-load"
        )
    cap = record["scenarios"]["shedding"]["connection_cap"]
    lines.append(
        f"  connection cap: refused after {cap['opened_before_refusal']} "
        f"open connections: {cap['refused']}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the bench and write the BENCH json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds of load per scenario (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: 0.8s per scenario")
    parser.add_argument("--gate", action="store_true",
                        help="fail (exit 1) unless saturation, fairness "
                             "floor, refusal, exactness, and no-silent-"
                             "drop bounds all hold")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    args = parser.parse_args(argv)

    duration = 0.8 if args.smoke else args.duration
    try:
        record = run(duration)
    except ServiceError as error:
        print(f"bench FAILED with a service error: {error}",
              file=sys.stderr)
        return 1
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    if args.gate:
        failure = check_gate(record)
        if failure is not None:
            print(failure, file=sys.stderr)
            return 1
        print("gate ok: saturation, fairness floor, documented "
              "refusals, bit-exactness, and no silent drops all hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
