"""X1 — one-pass hierarchical max-change vs the paper's two-pass (§4.2).

Extension artifact: the dyadic hierarchy buys back a stream pass at a
``domain_bits×`` space premium.  The bench asserts both methods recover
the planted drift, that the one-pass variant's estimate quality matches
the flat difference sketch, and that the space trade is as predicted.
"""

from conftest import save_report

from repro.experiments import hierarchical_maxchange

CONFIG = hierarchical_maxchange.HierarchicalMaxChangeConfig()


def _run():
    return hierarchical_maxchange.run(CONFIG)


def test_hierarchical_maxchange(benchmark):
    rows, threshold = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "X1_hierarchical_maxchange",
        hierarchical_maxchange.format_report(rows, threshold, CONFIG),
    )

    two_pass, one_pass = rows
    assert two_pass.recall >= 0.9
    assert one_pass.recall >= 0.9
    # Same flat-sketch estimator inside: comparable change errors.
    assert one_pass.mean_change_error <= 2 * two_pass.mean_change_error + 5
    # The space premium is the domain_bits hierarchy factor (×2 streams).
    assert one_pass.counters == (
        2 * CONFIG.domain_bits * CONFIG.depth * CONFIG.width
    )
    assert one_pass.passes == 1 and two_pass.passes == 2
