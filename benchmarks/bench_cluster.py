"""BENCH — cluster ingest scaling and scatter-gather exactness.

Launches real ``repro serve`` shard processes (the same supervisor
``repro cluster serve`` uses), routes a seeded Zipf(1.0) stream through
:class:`~repro.cluster.coordinator.ClusterCoordinator` over the binary
wire, and measures ingest throughput at 1/2/… shards.

Every fleet size ends with the probe the cluster exists for: served
estimates must be **bit-equal** to one offline sketch fed the same
records (§3.2 linearity — the partition never shows).  A mid-stream
probe under the ``wait=True`` read barrier checks the acknowledged
prefix the same way.  Exactness is asserted unconditionally, at every
fleet size, on every host.

``--gate`` additionally asserts near-linear scaling: 2-shard ingest
must reach ≥1.6× the 1-shard rate.  Shards are separate processes, so
the margin needs real cores — on a single-CPU host the scaling bound
is recorded as skipped (the exactness assertions still run), matching
how ``bench_parallel.py`` treats process parallelism.

Emits ``benchmarks/out/BENCH_cluster.json`` so future perf PRs have a
trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_cluster.py --gate     # CI bound
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.fleet import launch_fleet, stop_fleet
from repro.core.countsketch import CountSketch
from repro.service.tables import TableSpec
from repro.streams.zipf import ZipfStreamGenerator

OUT_PATH = Path(__file__).parent / "out" / "BENCH_cluster.json"

DEPTH = 5
WIDTH = 1024
SEED = 0

# Scalar sketch tables make the shard-side apply loop the dominant
# cost, which is exactly what sharding divides; the coordinator's
# encode+route pass is one vectorized sweep and stays constant.
SPEC = TableSpec("bench", kind="sketch", depth=DEPTH, width=WIDTH,
                 seed=SEED)

SCALING_BOUND = 1.6


def _make_stream(n: int) -> list:
    """A Zipf(1.0) item stream — the repo's canonical workload."""
    return list(ZipfStreamGenerator(m=10_000, z=1.0, seed=7).generate(n))


def _offline_reference(stream: list) -> CountSketch:
    sketch = CountSketch(DEPTH, WIDTH, seed=SEED)
    sketch.extend(stream)
    return sketch


def _probes(stream: list) -> list:
    head = list(dict.fromkeys(stream))[:8]
    return head + ["bench-absent-item"]


async def _run_fleet(endpoints: list[tuple[str, int]], stream: list,
                     batch: int) -> float:
    """Ingest the stream through one fleet; return items/s.

    The clock stops at *applied* (each span's final batch waits), so
    throughput includes the sketch work; a mid-stream probe checks the
    acknowledged prefix bit-for-bit.
    """
    cluster = await ClusterCoordinator.connect(endpoints, wire="binary")
    probes = _probes(stream)
    half = len(stream) // 2
    reference_half = _offline_reference(stream[:half])
    reference = _offline_reference(stream)

    async def ingest_span(lo: int, hi: int) -> None:
        # Batches are pipelined (coordinator preps the next batch while
        # the shards apply the last); the final batch waits, so the
        # clock stops at *applied* and the following probe reads
        # exactly the acknowledged prefix.
        starts = list(range(lo, hi, batch))
        for index, chunk_lo in enumerate(starts):
            await cluster.ingest_items(
                SPEC.name, stream[chunk_lo:min(chunk_lo + batch, hi)],
                wait=index == len(starts) - 1)

    start = time.perf_counter()
    await ingest_span(0, half)
    served = await cluster.estimate(SPEC.name, probes)
    assert served == [float(reference_half.estimate(p)) for p in probes], \
        "mid-stream cluster estimates must be bit-equal to offline"
    await ingest_span(half, len(stream))
    rate = len(stream) / (time.perf_counter() - start)

    served = await cluster.estimate(SPEC.name, probes)
    assert served == [float(reference.estimate(p)) for p in probes], \
        "final cluster estimates must be bit-equal to offline"
    await cluster.close()
    return rate


def bench_shards(n_shards: int, stream: list, batch: int,
                 repeats: int) -> float:
    """Best-of ingest rate (items/s) through an ``n_shards`` fleet."""
    best = 0.0
    for __ in range(repeats):
        shards = launch_fleet(n_shards, [SPEC])
        try:
            endpoints = [(s.host, s.port) for s in shards]
            best = max(best,
                       asyncio.run(_run_fleet(endpoints, stream, batch)))
        finally:
            stop_fleet(shards, timeout=15.0)
    return best


def run(n: int, fleet_sizes: list[int], batch: int,
        repeats: int) -> dict:
    """Measure every fleet size; return the BENCH record."""
    stream = _make_stream(n)
    rows = []
    base_rate = None
    for n_shards in fleet_sizes:
        rate = bench_shards(n_shards, stream, batch, repeats)
        if base_rate is None:
            base_rate = rate
        rows.append({
            "n_shards": n_shards,
            "items_per_s": round(rate),
            "speedup_vs_1": round(rate / base_rate, 2),
            "exact": True,  # asserted inside _run_fleet
        })
    return {
        "bench": "cluster",
        "n": n,
        "batch": batch,
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "spec": SPEC.to_dict(),
        "scaling": rows,
    }


def check_gate(record: dict) -> str | None:
    """The scaling bound: 2-shard ingest ≥1.6× the 1-shard rate.

    Needs real cores — shards are separate processes, so on a
    single-CPU host the bound is unreachable by construction and the
    gate reports ``None`` (skipped); the exactness assertions have
    already run unconditionally.
    """
    cpus = record["cpus"] or 1
    if cpus < 2:
        return None
    by_shards = {row["n_shards"]: row for row in record["scaling"]}
    if 2 not in by_shards:
        return "gate FAILED: no 2-shard measurement in the record"
    speedup = by_shards[2]["speedup_vs_1"]
    if speedup < SCALING_BOUND:
        return (
            f"gate FAILED: 2-shard ingest reached only {speedup:.2f}x "
            f"the 1-shard rate ({by_shards[2]['items_per_s']:,}/s vs "
            f"{by_shards[1]['items_per_s']:,}/s); the bound is "
            f"{SCALING_BOUND}x"
        )
    return None


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    lines = [
        "BENCH cluster (n={n}, batch={batch}, best of {repeats}, "
        "{cpus} cpus)".format(**record),
        "  {:<9} {:>13} {:>10} {:>7}".format(
            "shards", "items/s", "vs 1", "exact"),
    ]
    for row in record["scaling"]:
        lines.append(
            "  {n_shards:<9} {items_per_s:>13,} {speedup_vs_1:>9.2f}x "
            "{exact!s:>7}".format(**row)
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the bench and write the BENCH json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=60_000,
                        help="stream length (default 60000)")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                        help="fleet sizes to measure (default 1 2 4)")
    parser.add_argument("--batch", type=int, default=2048,
                        help="records per routed batch (default 2048)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best kept (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: small n, 1+2 shards, one repeat")
    parser.add_argument("--gate", action="store_true",
                        help="fail (exit 1) unless 2-shard ingest reaches "
                             f"{SCALING_BOUND}x the 1-shard rate "
                             "(skipped on single-cpu hosts; exactness is "
                             "always asserted)")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    args = parser.parse_args(argv)

    n = min(args.n, 6_000) if args.smoke else args.n
    fleet_sizes = [1, 2] if args.smoke else args.shards
    repeats = 1 if args.smoke else args.repeats

    record = run(n, fleet_sizes, args.batch, repeats)
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    if args.gate:
        failure = check_gate(record)
        if failure is not None:
            print(failure, file=sys.stderr)
            return 1
        if (record["cpus"] or 1) < 2:
            print("gate: scaling bound skipped on a single-cpu host "
                  "(exactness asserted)")
        else:
            print("gate ok: 2-shard scaling within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
