"""Benchmark-suite helpers.

Every bench regenerates one paper artifact (DESIGN.md's experiment index):
it runs the experiment module at its default (paper-scale) configuration
under pytest-benchmark timing, prints the paper-style report, and persists
it under ``benchmarks/out/`` so the numbers recorded in EXPERIMENTS.md can
be re-derived with a single ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def save_report(name: str, report: str) -> None:
    """Print a report and persist it under ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
    print("\n" + report)
