"""BENCH — service ingest throughput and query latency (repro.service).

Measures, over a seeded Zipf(1.0) stream:

* **ingest** — items/s through the service for a sweep of batch sizes:
  in-process (frame codec, no kernel), TCP loopback over the JSON
  protocol (sequential requests, what the original wire paid), and TCP
  loopback over the binary wire with pipelined acks
  (``AsyncServiceClient.ingest_many``).  The offline
  :class:`~repro.core.vectorized.VectorizedCountSketch` batch-update
  loop is reported alongside as the no-server ceiling, so the service
  overhead is visible as a percentage.
* **query latency** — per-request ``estimate`` latency (p50/p99 ms)
  from several concurrent clients while a background producer keeps
  ingesting over the binary wire, i.e. reads racing writes through the
  read barrier.

Every ingest pass ends with a correctness probe: the served estimates
for a handful of head items must equal an offline sketch built from the
same records.  The binary pass additionally probes *mid-stream* — after
the first half of the stream, served estimates must be bit-equal to an
offline sketch fed exactly that prefix — so the bench doubles as an
exactness smoke for read-your-acknowledged-writes.

``--gate`` asserts the regression bound from ROADMAP item 1: binary TCP
ingest at the largest batch size must reach at least 50% of the offline
ceiling.

Emits a BENCH json (``benchmarks/out/BENCH_service.json``) so future
perf PRs have a trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_service.py --gate     # CI bound
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.vectorized import VectorizedCountSketch
from repro.service.client import AsyncServiceClient, OverloadedError
from repro.service.server import SketchServer
from repro.service.tables import TableSpec
from repro.streams.zipf import ZipfStreamGenerator

OUT_PATH = Path(__file__).parent / "out" / "BENCH_service.json"

DEPTH = 5
WIDTH = 1024
SEED = 0

SPEC = TableSpec("bench", kind="vectorized", depth=DEPTH, width=WIDTH,
                 seed=SEED)

PROBE_ITEMS = [0, 1, 2, 7, 42]


def _make_stream(n: int) -> list:
    """A Zipf(1.0) item stream — the repo's canonical workload."""
    return list(ZipfStreamGenerator(m=10_000, z=1.0, seed=7).generate(n))


def _chunks(stream: list, batch: int) -> list[list]:
    return [stream[i:i + batch] for i in range(0, len(stream), batch)]


def _offline_reference(stream: list) -> VectorizedCountSketch:
    sketch = VectorizedCountSketch(DEPTH, WIDTH, seed=SEED)
    if stream:
        sketch.update_batch(stream)
    return sketch


async def _send(client: AsyncServiceClient, table: str, records: list,
                *, wait: bool = False) -> None:
    """Ingest one batch, yielding to the applier on backpressure."""
    while True:
        try:
            await client.ingest(table, records, wait=wait)
            return
        except OverloadedError:
            await asyncio.sleep(0)


async def _ingest_stream(client: AsyncServiceClient, chunks: list[list]
                         ) -> None:
    for chunk in chunks[:-1]:
        await _send(client, SPEC.name, [(item, 1) for item in chunk])
    # The final batch waits, so the clock stops at *applied*, not
    # merely acknowledged — throughput includes the sketch work.
    await _send(client, SPEC.name,
                [(item, 1) for item in chunks[-1]], wait=True)


async def _assert_probe(client: AsyncServiceClient,
                        reference: VectorizedCountSketch) -> None:
    served = await client.estimate(SPEC.name, PROBE_ITEMS)
    expected = [reference.estimate(item) for item in PROBE_ITEMS]
    assert served == expected, "served estimates must match offline"


def bench_ingest_in_process(stream: list, batch: int, repeats: int,
                            reference: VectorizedCountSketch) -> float:
    """Best-of in-process ingest rate (items/s) at one batch size."""

    async def once() -> float:
        server = SketchServer([SPEC])
        client = AsyncServiceClient.in_process(server)
        chunks = _chunks(stream, batch)
        start = time.perf_counter()
        await _ingest_stream(client, chunks)
        rate = len(stream) / (time.perf_counter() - start)
        await _assert_probe(client, reference)
        await server.stop()
        return rate

    return max(asyncio.run(once()) for __ in range(repeats))


def bench_ingest_tcp(stream: list, batch: int, repeats: int,
                     reference: VectorizedCountSketch) -> float:
    """Best-of TCP ingest rate over the JSON wire (items/s)."""

    async def once() -> float:
        server = SketchServer([SPEC])
        host, port = await server.start("127.0.0.1", 0)
        client = await AsyncServiceClient.connect(host, port, wire="json")
        chunks = _chunks(stream, batch)
        start = time.perf_counter()
        await _ingest_stream(client, chunks)
        rate = len(stream) / (time.perf_counter() - start)
        await _assert_probe(client, reference)
        await client.close()
        await server.stop()
        return rate

    return max(asyncio.run(once()) for __ in range(repeats))


def bench_ingest_tcp_binary(stream: list, batch: int, repeats: int,
                            reference: VectorizedCountSketch) -> float:
    """Best-of TCP ingest rate over the binary wire (items/s).

    Pipelined (``ingest_many``), with a mid-stream exactness probe:
    after the first half of the stream is acknowledged and applied, the
    served estimates must be bit-equal to an offline sketch fed exactly
    that prefix.  The probe's round-trip is inside the timed window —
    one request against hundreds, noise next to the guarantee it buys.
    """
    half = len(stream) // 2
    reference_half = _offline_reference(stream[:half])

    async def once() -> float:
        server = SketchServer([SPEC])
        host, port = await server.start("127.0.0.1", 0)
        client = await AsyncServiceClient.connect(host, port,
                                                  wire="binary")
        first = [[(item, 1) for item in chunk]
                 for chunk in _chunks(stream[:half], batch)]
        second = [[(item, 1) for item in chunk]
                  for chunk in _chunks(stream[half:], batch)]
        start = time.perf_counter()
        await client.ingest_many(SPEC.name, first, wait=True)
        await _assert_probe(client, reference_half)
        await client.ingest_many(SPEC.name, second, wait=True)
        rate = len(stream) / (time.perf_counter() - start)
        await _assert_probe(client, reference)
        await client.close()
        await server.stop()
        return rate

    return max(asyncio.run(once()) for __ in range(repeats))


def bench_offline(stream: list, batch: int, repeats: int) -> float:
    """The no-server ceiling: direct vectorized batch updates."""

    def once() -> float:
        sketch = VectorizedCountSketch(DEPTH, WIDTH, seed=SEED)
        chunks = _chunks(stream, batch)
        ones = np.ones(batch, dtype=np.int64)
        start = time.perf_counter()
        for chunk in chunks:
            sketch.update_batch(chunk, ones[:len(chunk)])
        return len(stream) / (time.perf_counter() - start)

    return max(once() for __ in range(repeats))


def bench_query_latency(stream: list, queries: int, concurrency: int,
                        batch: int) -> dict:
    """p50/p99 estimate latency (ms) under a concurrent producer."""

    async def go() -> dict:
        server = SketchServer([SPEC])
        host, port = await server.start("127.0.0.1", 0)
        seed_client = await AsyncServiceClient.connect(host, port)
        await _send(seed_client, SPEC.name,
                    [(item, 1) for item in stream], wait=True)

        producing = True

        async def producer() -> None:
            chunks = _chunks(stream, batch)
            while producing:
                for chunk in chunks:
                    if not producing:
                        break
                    await _send(seed_client, SPEC.name,
                                [(item, 1) for item in chunk])
                    await asyncio.sleep(0)

        async def worker(count: int) -> list[float]:
            client = await AsyncServiceClient.connect(host, port)
            latencies = []
            for i in range(count):
                start = time.perf_counter()
                await client.estimate(
                    SPEC.name, [PROBE_ITEMS[i % len(PROBE_ITEMS)]]
                )
                latencies.append((time.perf_counter() - start) * 1e3)
            await client.close()
            return latencies

        producer_task = asyncio.create_task(producer())
        per_worker = max(1, queries // concurrency)
        results = await asyncio.gather(
            *(worker(per_worker) for __ in range(concurrency))
        )
        producing = False
        await producer_task
        await seed_client.close()
        await server.stop()

        latencies = sorted(value for chunk in results for value in chunk)
        return {
            "queries": len(latencies),
            "concurrency": concurrency,
            "p50_ms": round(_percentile(latencies, 0.50), 3),
            "p99_ms": round(_percentile(latencies, 0.99), 3),
        }

    return asyncio.run(go())


def _percentile(ordered: list[float], q: float) -> float:
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run(n: int, batches: list[int], repeats: int, queries: int,
        concurrency: int) -> dict:
    """Measure every batch-size cell; return the BENCH record."""
    stream = _make_stream(n)
    reference = _offline_reference(stream)
    ingest = []
    for batch in batches:
        offline = bench_offline(stream, batch, repeats)
        in_process = bench_ingest_in_process(stream, batch, repeats,
                                             reference)
        tcp_json = bench_ingest_tcp(stream, batch, repeats, reference)
        tcp_binary = bench_ingest_tcp_binary(stream, batch, repeats,
                                             reference)
        ingest.append({
            "batch": batch,
            "offline_items_per_s": round(offline),
            "in_process_items_per_s": round(in_process),
            "tcp_json_items_per_s": round(tcp_json),
            "tcp_binary_items_per_s": round(tcp_binary),
            "in_process_overhead_pct": round(
                100.0 * (offline - in_process) / offline, 1
            ),
            "tcp_json_overhead_pct": round(
                100.0 * (offline - tcp_json) / offline, 1
            ),
            "tcp_binary_overhead_pct": round(
                100.0 * (offline - tcp_binary) / offline, 1
            ),
            "tcp_binary_of_offline_pct": round(
                100.0 * tcp_binary / offline, 1
            ),
        })
    latency = bench_query_latency(stream, queries, concurrency,
                                  batch=batches[-1])
    return {
        "bench": "service",
        "n": n,
        "repeats": repeats,
        "spec": SPEC.to_dict(),
        "ingest": ingest,
        "query_latency": latency,
    }


def check_gate(record: dict) -> str | None:
    """The ROADMAP item 1 bound: binary TCP ingest at the largest batch
    must reach ≥50% of the offline ceiling.  Returns the failure
    message, or ``None`` when the gate holds."""
    row = record["ingest"][-1]
    achieved = row["tcp_binary_of_offline_pct"]
    if achieved < 50.0:
        return (
            f"gate FAILED: binary TCP ingest at batch {row['batch']} "
            f"reached {achieved:.1f}% of the offline ceiling "
            f"({row['tcp_binary_items_per_s']:,}/s vs "
            f"{row['offline_items_per_s']:,}/s); the bound is 50%"
        )
    return None


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    lines = [
        "BENCH service (n={n}, best of {repeats})".format(**record),
        "  {:<7} {:>13} {:>13} {:>13} {:>13} {:>8}".format(
            "batch", "offline/s", "in-proc/s", "tcp-json/s", "tcp-bin/s",
            "bin/off"
        ),
    ]
    for row in record["ingest"]:
        lines.append(
            "  {batch:<7} {offline_items_per_s:>13,} "
            "{in_process_items_per_s:>13,} {tcp_json_items_per_s:>13,} "
            "{tcp_binary_items_per_s:>13,} "
            "{tcp_binary_of_offline_pct:>7.1f}%".format(**row)
        )
    latency = record["query_latency"]
    lines.append(
        "  estimate latency under load ({queries} queries, "
        "{concurrency} clients): p50 {p50_ms}ms | p99 {p99_ms}ms".format(
            **latency
        )
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the bench and write the BENCH json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000,
                        help="stream length (default 200000)")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=[64, 512, 2048],
                        help="ingest batch sizes (default 64 512 2048)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats, best kept (default 3)")
    parser.add_argument("--queries", type=int, default=2000,
                        help="latency sample size (default 2000)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="concurrent query clients (default 4)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: small n, one batch, fewer repeats")
    parser.add_argument("--gate", action="store_true",
                        help="fail (exit 1) unless binary TCP ingest at "
                             "the largest batch reaches 50%% of the "
                             "offline ceiling")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    args = parser.parse_args(argv)

    n = min(args.n, 10_000) if args.smoke else args.n
    batches = args.batches[-1:] if args.smoke else args.batches
    repeats = 1 if args.smoke else args.repeats
    queries = min(args.queries, 200) if args.smoke else args.queries
    concurrency = min(args.concurrency, 2) if args.smoke else args.concurrency

    record = run(n, batches, repeats, queries, concurrency)
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    if args.gate:
        failure = check_gate(record)
        if failure is not None:
            print(failure, file=sys.stderr)
            return 1
        print("gate ok: binary TCP ingest within bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
