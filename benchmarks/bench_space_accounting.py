"""E8 — the §5 bit-level space comparison.

Paper artifact: §5's conclusion that COUNT SKETCH's O(k·log n + k·ℓ) beats
SAMPLING's O(k·log m·log(k/δ)·ℓ) once objects are large (ℓ ≫ log n).  The
bench measures both summaries and asserts the crossover exists and moves
in the predicted direction.
"""

from conftest import save_report

from repro.experiments import space_accounting

CONFIG = space_accounting.SpaceAccountingConfig()


def _run():
    return space_accounting.run(CONFIG)


def test_space_accounting(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "E8_space_accounting",
        space_accounting.format_report(result, CONFIG),
    )

    ratios = [row.ratio for row in result.rows]
    assert ratios == sorted(ratios)  # sketch advantage grows with ℓ
    assert ratios[-1] > 1.0  # sketch wins for large objects
    assert result.cs_objects < result.sampling_objects
