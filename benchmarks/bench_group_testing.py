"""X5 — heavy-hitter enumeration: group testing vs the dyadic hierarchy.

Extension artifact: the two sketch-only enumeration routes must agree on
the heavy set and differ on the predicted trade — group testing holds
``t·b·(domain_bits+1)`` counters in one structure with one bucket hash
per row per update; the hierarchy holds ``domain_bits`` sketches updated
at every level.
"""

import random

from conftest import save_report

from repro.core.group_testing import GroupTestingSketch
from repro.core.hierarchical import HierarchicalCountSketch
from repro.experiments.report import format_table

DOMAIN_BITS = 12
THRESHOLD = 200
HEAVY = {999: 700, 2222: 450, 3131: 300}


def _stream():
    rng = random.Random(21)
    stream = [rng.randrange(1 << DOMAIN_BITS) for _ in range(8_000)]
    for item, count in HEAVY.items():
        stream += [item] * count
    rng.shuffle(stream)
    return stream


def _run_group_testing(stream):
    sketch = GroupTestingSketch(DOMAIN_BITS, depth=3, width=512, seed=5)
    sketch.extend(stream)
    return sketch, sketch.heavy_hitters(THRESHOLD)


def _run_hierarchy(stream):
    sketch = HierarchicalCountSketch(DOMAIN_BITS, depth=5, width=512, seed=5)
    sketch.extend(stream)
    return sketch, sketch.heavy_hitters(THRESHOLD)


def test_group_testing_enumeration(benchmark):
    stream = _stream()
    gt_sketch, gt_found = benchmark.pedantic(
        lambda: _run_group_testing(stream), rounds=1, iterations=1
    )
    hier_sketch, hier_found = _run_hierarchy(stream)

    assert {item for item, __ in gt_found} == set(HEAVY)
    assert {item for item, __ in hier_found} == set(HEAVY)

    report = format_table(
        ["method", "counters", "found", "largest estimate"],
        [
            ["group testing", gt_sketch.counters_used(), len(gt_found),
             gt_found[0][1]],
            ["dyadic hierarchy", hier_sketch.counters_used(),
             len(hier_found), hier_found[0][1]],
        ],
        title=(
            f"X5 — heavy-hitter enumeration at threshold {THRESHOLD} "
            f"(domain 2^{DOMAIN_BITS}, 3 planted heavy items)"
        ),
    )
    save_report("X5_group_testing", report)
