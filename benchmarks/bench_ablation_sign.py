"""A2 — ablation: the ±1 sign hashes (Count Sketch vs Count-Min).

Design-choice artifact: what the sign hashes buy — unbiasedness and
two-sided error.  The bench asserts Count-Min's strictly positive bias
against Count Sketch's near-zero bias at identical dimensions.
"""

from conftest import save_report

from repro.experiments import ablation_sign_hash

CONFIG = ablation_sign_hash.SignAblationConfig()


def _run():
    return ablation_sign_hash.run(CONFIG)


def test_ablation_sign_hash(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "A2_ablation_sign", ablation_sign_hash.format_report(rows, CONFIG)
    )

    count_sketch, count_min = rows
    assert count_min.bias > 0
    assert abs(count_sketch.bias) < count_min.bias
