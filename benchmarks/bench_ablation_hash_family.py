"""A4 — hash-family ablation (polynomial vs tabulation vs multiply-shift).

Design-substrate artifact: accuracy must be family-insensitive at equal
dimensions (the analysis only needs pairwise independence; all three
families deliver it exactly or near enough), making the family a pure
speed/portability choice — the premise of the vectorized backend.
"""

from conftest import save_report

from repro.experiments import ablation_hash_family

CONFIG = ablation_hash_family.HashFamilyAblationConfig()


def _run():
    return ablation_hash_family.run(CONFIG)


def test_ablation_hash_family(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "A4_ablation_hash_family",
        ablation_hash_family.format_report(rows, CONFIG),
    )

    errors = [row.mean_abs_error for row in rows]
    # Accuracy within a 2x band across families (family-insensitive).
    assert max(errors) <= 2 * min(errors) + 1
    assert all(row.updates_per_second > 0 for row in rows)
