"""BENCH — W-TinyLFU hit ratio and throughput vs LRU/LFU baselines.

Replays seeded synthetic traces (``repro.cache.simulate``) against the
three cache policies at several capacities and reports hit ratio and
requests/s per run.  Two trace families:

* **zipf** — i.i.d. Zipf(1.1) draws, the §4.1 workload model; the
  frequency-aware policies should win, TinyLFU without LFU's memory
  cost.
* **shifting** — the same popularity law with the hot set re-permuted
  every phase; unaged LFU fossilises the first phase's hot set while
  TinyLFU's ``scale(0.5)`` resets let it adapt.

Mid-way through the first TinyLFU zipf run, the admission sketch is
snapshotted to ``.rcs``, restored, and asserted **bit-for-bit equal**
(CountSketch ``__eq__`` compares the raw counters) with matching
sampling state — persistence is exercised unconditionally, on every
host, before the simulation continues.

``--gate`` additionally asserts the hit-ratio bound: on the zipf trace
TinyLFU must beat plain LRU by ``GATE_MARGIN`` at every capacity below
``MARGIN_CAPACITY_RATIO`` of the keyspace, and must at least match LRU
at the larger capacities (when the whole hot set fits, admission
filtering has nothing left to win).

Emits ``benchmarks/out/BENCH_cache.json`` so future perf PRs have a
trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_cache.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_cache.py --gate     # CI bound
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cache import (
    FrequencySketch,
    TinyLFUCache,
    make_policy,
    shifting_hotset_trace,
    simulate,
    zipf_trace,
)

OUT_PATH = Path(__file__).parent / "out" / "BENCH_cache.json"

ZIPF_Z = 1.1
SEED = 7
POLICY_SEED = 11
PHASES = 5
POLICY_NAMES = ("lru", "lfu", "tinylfu")

#: TinyLFU must beat LRU's zipf hit ratio by this much ...
GATE_MARGIN = 0.02
#: ... at capacities below this fraction of the keyspace; at larger
#: capacities the working set mostly fits and the bound relaxes to
#: "no worse than LRU".
MARGIN_CAPACITY_RATIO = 0.025


def _roundtrip_sketch(policy: TinyLFUCache) -> dict:
    """Save/load the admission sketch and assert bit-for-bit equality."""
    oracle = policy.frequency
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "admission.rcs"
        written = oracle.save(path)
        restored = FrequencySketch.load(path)
    assert restored.sketch == oracle.sketch, \
        "restored admission sketch must be bit-for-bit equal"
    assert (restored.sample_size, restored.samples, restored.resets) == \
        (oracle.sample_size, oracle.samples, oracle.resets), \
        "restored sampling state must match the live oracle"
    probe_keys = range(1, 17)
    assert all(
        restored.sketch.estimate(key) == oracle.sketch.estimate(key)
        for key in probe_keys
    ), "restored sketch must serve identical estimates"
    return {
        "bytes": written,
        "sketch_equal": True,
        "meta_match": True,
        "resets": oracle.resets,
    }


def bench_policy(
    name: str, capacity: int, trace: np.ndarray, *,
    roundtrip: bool = False,
) -> tuple[dict, dict | None]:
    """Replay ``trace`` against one policy; return (row, roundtrip info).

    With ``roundtrip=True`` (TinyLFU only) the run pauses at the trace
    midpoint to push the admission sketch through a ``.rcs`` save/load
    and assert bit-for-bit equality, then continues on the live policy.
    """
    policy = make_policy(name, capacity, seed=POLICY_SEED)
    roundtrip_info = None
    start = time.perf_counter()
    if roundtrip:
        assert isinstance(policy, TinyLFUCache)
        half = len(trace) // 2
        first = simulate(policy, trace[:half])
        timer_pause = time.perf_counter()
        roundtrip_info = _roundtrip_sketch(policy)
        start += time.perf_counter() - timer_pause  # exclude the I/O
        second = simulate(policy, trace[half:])
        hits = first.hits + second.hits
    else:
        hits = simulate(policy, trace).hits
    elapsed = time.perf_counter() - start
    requests = len(trace)
    row = {
        "policy": name,
        "capacity": capacity,
        "requests": requests,
        "hits": hits,
        "hit_ratio": round(hits / requests, 4),
        "ops_per_s": round(requests / elapsed),
    }
    return row, roundtrip_info


def run(n: int, m: int, capacities: list[int]) -> dict:
    """Measure every (trace, capacity, policy) cell; return the record."""
    traces = {
        "zipf": zipf_trace(n, m, ZIPF_Z, seed=SEED),
        "shifting": shifting_hotset_trace(n, m, ZIPF_Z, seed=SEED,
                                          phases=PHASES),
    }
    results: dict[str, list[dict]] = {name: [] for name in traces}
    roundtrip: dict | None = None
    for trace_name, trace in traces.items():
        for capacity in capacities:
            for policy_name in POLICY_NAMES:
                want_roundtrip = (
                    roundtrip is None and trace_name == "zipf"
                    and policy_name == "tinylfu"
                )
                row, info = bench_policy(
                    policy_name, capacity, trace,
                    roundtrip=want_roundtrip,
                )
                results[trace_name].append(row)
                if info is not None:
                    roundtrip = dict(info, capacity=capacity)
    assert roundtrip is not None, \
        "the zipf sweep must include one TinyLFU roundtrip run"
    return {
        "bench": "cache",
        "n": n,
        "m": m,
        "z": ZIPF_Z,
        "seed": SEED,
        "phases": PHASES,
        "capacities": capacities,
        "traces": results,
        "roundtrip": roundtrip,
    }


def check_gate(record: dict) -> str | None:
    """The hit-ratio bound on the zipf trace (see module docstring)."""
    by_cell = {
        (row["capacity"], row["policy"]): row
        for row in record["traces"]["zipf"]
    }
    for capacity in record["capacities"]:
        lru = by_cell[(capacity, "lru")]["hit_ratio"]
        tinylfu = by_cell[(capacity, "tinylfu")]["hit_ratio"]
        small = capacity <= MARGIN_CAPACITY_RATIO * record["m"]
        margin = GATE_MARGIN if small else 0.0
        if tinylfu < lru + margin:
            bound = (
                f"lru + {GATE_MARGIN}" if small else "the lru ratio"
            )
            return (
                f"gate FAILED: tinylfu hit ratio {tinylfu:.4f} at "
                f"capacity {capacity} does not reach {bound} "
                f"(lru={lru:.4f}) on the zipf trace"
            )
    if not record["roundtrip"]["sketch_equal"]:
        return "gate FAILED: admission sketch .rcs roundtrip was not exact"
    return None


def format_report(record: dict) -> str:
    """Human-readable summary of one BENCH record."""
    lines = [
        "BENCH cache (n={n}, m={m}, z={z}, seed={seed})".format(**record),
    ]
    for trace_name, rows in record["traces"].items():
        lines.append(f"  {trace_name} trace:")
        lines.append("    {:<9} {:>9} {:>10} {:>12}".format(
            "policy", "capacity", "hit ratio", "ops/s"))
        for row in rows:
            lines.append(
                "    {policy:<9} {capacity:>9} {hit_ratio:>10.4f} "
                "{ops_per_s:>12,}".format(**row)
            )
    rt = record["roundtrip"]
    lines.append(
        "  roundtrip: admission sketch .rcs save/load at capacity "
        "{capacity} after {resets} reset(s): bit-for-bit equal "
        "({bytes} bytes)".format(**rt)
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the bench and write the BENCH json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=1_000_000,
                        help="requests per trace (default 1000000)")
    parser.add_argument("--m", type=int, default=200_000,
                        help="distinct keys (default 200000)")
    parser.add_argument("--capacities", type=int, nargs="+",
                        default=[1000, 5000, 20000],
                        help="cache sizes to sweep "
                             "(default 1000 5000 20000)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: 150k requests over 50k keys at "
                             "two capacities")
    parser.add_argument("--gate", action="store_true",
                        help="fail (exit 1) unless TinyLFU beats LRU by "
                             f"{GATE_MARGIN} at small capacities (and "
                             "matches it at large ones) on the zipf "
                             "trace; the .rcs roundtrip is always "
                             "asserted")
    parser.add_argument("--json", dest="json_path", default=str(OUT_PATH),
                        help=f"BENCH json output path (default {OUT_PATH})")
    args = parser.parse_args(argv)

    if args.smoke:
        n, m, capacities = 150_000, 50_000, [500, 2000]
    else:
        n, m, capacities = args.n, args.m, list(args.capacities)

    record = run(n, m, capacities)
    print(format_report(record))

    path = Path(args.json_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    if args.gate:
        failure = check_gate(record)
        if failure is not None:
            print(failure, file=sys.stderr)
            return 1
        print("gate ok: tinylfu hit-ratio bound and .rcs roundtrip hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
