"""E1 — regenerate Table 1 (SAMPLING vs KPS vs COUNT SKETCH space).

Paper artifact: Table 1.  Workload: Zipf streams across the five regimes.
The bench measures the wall-clock of the full Table 1 pipeline and checks
the qualitative claims that must reproduce: every algorithm's space shrinks
with skew, and the within-column measured/order ratios stay within a
constant band (the paper's constants are absorbed in big-O).
"""

import math

from conftest import save_report

from repro.experiments import table1

CONFIG = table1.Table1Config()


def _run():
    return table1.run(CONFIG)


def test_table1(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report("E1_table1", table1.format_report(rows, CONFIG))

    # Deterministic baselines must solve CANDIDATETOP at the §4.1 settings.
    assert all(row.kps_ok for row in rows)
    assert all(row.sampling_ok for row in rows)
    assert all(row.count_sketch_width is not None for row in rows)

    # Across-rows trend: more skew, less space, in every column.
    assert rows[0].sampling_space > rows[-1].sampling_space
    assert rows[0].kps_space > rows[-1].kps_space
    assert rows[0].count_sketch_space > rows[-1].count_sketch_space

    # Within-column shape: measured/order ratios bounded (no drift beyond
    # an order of magnitude across regimes).
    for __, sampling, kps, sketch in table1.shape_ratios(rows):
        for ratio in (sampling, kps, sketch):
            if not math.isnan(ratio):
                assert 0.05 < ratio < 20.0
