"""E7 — max-change recovery (§4.2).

Paper artifact: the two-pass max-change algorithm's claim that the items
with the largest |n_q(S2) − n_q(S1)| are recovered (the Lemma 5 analogue
with Δ_q).  The bench runs the width sweep on planted-drift streams and
asserts high recall at adequate width, with the per-stream-top-list
baseline reported alongside.
"""

from conftest import save_report

from repro.experiments import maxchange_experiment

CONFIG = maxchange_experiment.MaxChangeConfig()


def _run():
    return maxchange_experiment.run(CONFIG)


def test_maxchange(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "E7_maxchange", maxchange_experiment.format_report(result, CONFIG)
    )

    assert result.rows[-1].recall >= 0.9
    assert result.rows[-1].recall >= result.baseline_recall - 0.05
    # The structural advantage: the difference sketch estimates the change
    # itself far more accurately than differencing two per-stream
    # summaries — even the smallest sketch (equal counters) wins clearly.
    assert result.rows[0].mean_change_error < result.baseline_change_error / 2
    errors = [row.mean_change_error for row in result.rows]
    assert errors == sorted(errors, reverse=True)
