"""X4 — the max-percent-change smoothing floor (§5 open problem).

Extension artifact: the floor must reproduce its three regimes — chasing
flicker noise when too low, surfacing the sleeper hit in the useful band,
degrading to absolute change when extreme.
"""

from conftest import save_report

from repro.experiments import relative_change_floor

CONFIG = relative_change_floor.FloorSweepConfig()


def _run():
    return relative_change_floor.run(CONFIG)


def test_relative_change_floor(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_report(
        "X4_relative_change_floor",
        relative_change_floor.format_report(rows, CONFIG),
    )

    by_floor = {row.floor: row for row in rows}
    assert by_floor[1.0].top_item_kind == "flicker"
    assert by_floor[16.0].top_item_kind == "sleeper"
    assert by_floor[256.0].top_item_kind == "sleeper"
    assert by_floor[16_384.0].top_item_kind == "heavy"
