"""repro — Count Sketch and the frequent-items-in-data-streams toolkit.

A from-scratch reproduction of *Finding frequent items in data streams*
(Charikar, Chen & Farach-Colton): the Count Sketch data structure, the
one-pass APPROXTOP / CANDIDATETOP algorithms built on it, the two-pass
max-change algorithm, every baseline the paper compares against or surveys
(SAMPLING, concise/counting samples, KPS/Misra–Gries, lossy counting,
sticky sampling, plus SpaceSaving and Count-Min as extensions), synthetic
Zipfian / query / packet-flow workloads, and an experiment harness that
regenerates the paper's Table 1 and the quantitative content of its lemmas.

Quickstart::

    from repro import CountSketch, TopKTracker
    from repro.streams import ZipfStreamGenerator

    stream = ZipfStreamGenerator(m=10_000, z=1.0, seed=7).generate(100_000)
    tracker = TopKTracker(k=10, depth=5, width=256, seed=7)
    for item in stream:
        tracker.update(item)
    print(tracker.top())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.baselines import (
    ConciseSamples,
    CountingSamples,
    CountMinSketch,
    ExactCounter,
    KPSFrequent,
    LossyCounting,
    MultiHashIceberg,
    SamplingSummary,
    SpaceSaving,
    StickySampling,
)
from repro.core import (
    CandidateTopTracker,
    ChangeReport,
    CountSketch,
    GroupTestingSketch,
    HierarchicalCountSketch,
    IndexedMinHeap,
    JumpingWindowSketch,
    MaxChangeFinder,
    RelativeChangeFinder,
    RelativeChangeReport,
    SketchParameters,
    SparseCountSketch,
    TopKTracker,
    VectorizedCountSketch,
    gamma,
    suggest_depth,
    width_for_approxtop,
)
from repro.core.hierarchical import heavy_change_items
from repro.core.maxchange import find_max_change
from repro.parallel import parallel_sketch, parallel_topk

__version__ = "1.0.0"

__all__ = [
    "CandidateTopTracker",
    "ChangeReport",
    "ConciseSamples",
    "CountMinSketch",
    "CountSketch",
    "CountingSamples",
    "ExactCounter",
    "GroupTestingSketch",
    "HierarchicalCountSketch",
    "IndexedMinHeap",
    "JumpingWindowSketch",
    "KPSFrequent",
    "LossyCounting",
    "MaxChangeFinder",
    "MultiHashIceberg",
    "RelativeChangeFinder",
    "RelativeChangeReport",
    "SamplingSummary",
    "SketchParameters",
    "SpaceSaving",
    "SparseCountSketch",
    "StickySampling",
    "TopKTracker",
    "VectorizedCountSketch",
    "find_max_change",
    "heavy_change_items",
    "parallel_sketch",
    "parallel_topk",
    "gamma",
    "suggest_depth",
    "width_for_approxtop",
]
