"""Chunked streaming drivers for the sharded ingestion engine.

A parallel ingest never holds the whole stream: :func:`iter_chunks` slices
any iterable into bounded lists (the unit of work shipped to a worker),
and :func:`iter_file_chunks` composes it with the lazy line reader
:func:`repro.streams.io.iter_stream_text` so a multi-GB query log is read
one chunk at a time.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.streams.io import iter_stream_text

#: Default items per chunk.  Large enough that per-chunk overhead
#: (pickling, a Counter pass, one merge) is amortized; small enough that a
#: handful of in-flight chunks stays comfortably in memory.
DEFAULT_CHUNK_SIZE = 1 << 16


def iter_chunks(items: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[list]:
    """Yield successive lists of up to ``chunk_size`` items from ``items``.

    The input is consumed lazily — only one chunk is materialized at a
    time — so this is safe over generators and lazily-read files.

    Args:
        items: any iterable of stream items.
        chunk_size: maximum items per yielded list (must be positive).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    iterator = iter(items)
    while True:
        chunk = list(itertools.islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


def iter_file_chunks(
    path: str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    as_int: bool = False,
) -> Iterator[list]:
    """Chunk a text-format stream file without loading it into memory.

    Args:
        path: stream file, one item per line.
        chunk_size: maximum items per yielded list.
        as_int: parse every line as ``int`` (matches the CLI's
            ``--int-keys``).
    """
    yield from iter_chunks(iter_stream_text(path, as_int=as_int), chunk_size)
