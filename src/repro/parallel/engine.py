"""Sharded parallel ingestion built on §3.2 sketch linearity.

The Count Sketch update is a linear function of the frequency vector, so
sketches built from disjoint pieces of a stream with *shared hash
functions* — same ``(depth, width, seed)`` — sum to exactly the sketch of
the whole stream.  This module exploits that the way production systems
(Hokusai-style real-time aggregation, multi-stage SF-sketch deployments)
do: partition the stream into chunks, sketch each chunk in a worker, and
``merge`` the shards.  The merged sketch is bit-for-bit equal to the
single-process sketch, including ``total_weight`` — not an approximation.

Two executors:

* ``"fork"`` — a ``multiprocessing`` pool (chunks are shipped to worker
  processes, shard states shipped back and merged with backpressure so at
  most ``2·n_workers`` chunks are in flight).
* ``"serial"`` — the same chunk/shard/merge pipeline run in-process; used
  for ``n_workers=1`` and automatically on platforms without ``fork``.

Within a shard, each worker pre-aggregates its chunk into a count table
and applies weighted updates — identical counters by linearity, at a
fraction of the per-item cost (the ``update_counts`` idiom).

Top-k runs the same way, mirroring §4.1's CANDIDATETOP: each worker
tracks ``l ≥ k`` heap candidates next to its sketch shard, the parent
unions the candidate sets, re-estimates every candidate from the merged
sketch, and reports the ``k`` largest.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import time
from collections import Counter, deque
from dataclasses import dataclass
from collections.abc import Hashable, Iterable
from pathlib import Path

import numpy as np

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.observability.registry import (
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    use_registry,
)
from repro.parallel.chunks import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.store.checkpoint import ShardCheckpointStore

#: Sketch backends the engine can shard.
BACKENDS = ("dense", "sparse", "vectorized")

#: Any shardable sketch (all three satisfy the same update/merge protocol).
_AnySketch = CountSketch | SparseCountSketch | VectorizedCountSketch


def _make_sketch(backend: str, depth: int, width: int, seed: int) -> _AnySketch:
    """Build an empty shard sketch for ``backend``."""
    if backend == "dense":
        return CountSketch(depth, width, seed=seed)
    if backend == "sparse":
        return SparseCountSketch(depth, width, seed=seed)
    if backend == "vectorized":
        return VectorizedCountSketch(depth, width, seed=seed)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )


def resolve_executor(n_workers: int) -> str:
    """Pick the executor: ``"fork"`` when usable, else ``"serial"``.

    ``n_workers <= 1`` always runs serially (no process overhead), as do
    platforms whose ``multiprocessing`` lacks the ``fork`` start method
    (the spawn-only configurations the engine does not try to support).
    """
    if n_workers <= 1:
        return "serial"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "serial"
    return "fork"


# -- per-shard work (runs in workers; everything must be picklable) ---------


@dataclass(frozen=True)
class _ShardTask:
    """One chunk plus the shared sketch parameters."""

    index: int
    backend: str
    depth: int
    width: int
    seed: int
    candidates: int | None  # top-k candidate list length; None = sketch only
    chunk: list[Hashable]


@dataclass(frozen=True)
class _ShardResult:
    """A worker's shard, reduced to its picklable state."""

    index: int
    state: object  # int64 ndarray (dense/vectorized) or list[dict] (sparse)
    total_weight: int
    items: int
    seconds: float
    counters_touched: int
    candidates: tuple[Hashable, ...] = ()
    #: The shard's own counter metrics (``snapshot()["counters"]``), or
    #: ``None`` when collection is off; the parent folds them into its
    #: registry so fork-worker updates aren't lost with the child.
    metrics: dict[str, int] | None = None


def _build_shard(
    task: _ShardTask, counts: Counter[Hashable]
) -> tuple[_AnySketch, tuple[Hashable, ...]]:
    """Sketch one pre-aggregated chunk; returns (sketch, candidates)."""
    if task.candidates is None:
        sketch = _make_sketch(task.backend, task.depth, task.width, task.seed)
        sketch.update_counts(counts)
        candidate_items: tuple[Hashable, ...] = ()
    else:
        sketch = CountSketch(task.depth, task.width, seed=task.seed)
        tracker = TopKTracker(task.candidates, sketch=sketch)
        for item, count in counts.items():
            tracker.update(item, count)
        candidate_items = tuple(item for item, __ in tracker.top())
    return sketch, candidate_items


def _sketch_chunk(task: _ShardTask) -> _ShardResult:
    """Build one hash-compatible shard over ``task.chunk``."""
    start = time.perf_counter()
    counts = Counter(task.chunk)
    worker_metrics = None
    if metrics_enabled():
        # Collect this shard's counters in a private registry and ship the
        # (picklable) totals home — in fork mode the child's mutations to
        # the inherited registry would otherwise die with the process.
        shard_registry = MetricsRegistry()
        with use_registry(shard_registry):
            sketch, candidate_items = _build_shard(task, counts)
        worker_metrics = shard_registry.snapshot()["counters"]
    else:
        sketch, candidate_items = _build_shard(task, counts)
    seconds = time.perf_counter() - start
    # Workers ship raw shard state home; the parent rehydrates it into a
    # hash-compatible sketch and merges through the checked API
    # (_absorb_state), so the private reads here are serialization, not
    # an unchecked merge.
    if isinstance(sketch, SparseCountSketch):
        state: object = sketch._rows  # repro: noqa-RS004
        touched = sketch.buckets_touched()
    else:
        state = sketch._counters  # repro: noqa-RS004
        touched = int(np.count_nonzero(sketch._counters))  # repro: noqa-RS004
    return _ShardResult(
        index=task.index,
        state=state,
        total_weight=sketch.total_weight,
        items=len(task.chunk),
        seconds=seconds,
        counters_touched=touched,
        candidates=candidate_items,
        metrics=worker_metrics,
    )


# -- instrumentation --------------------------------------------------------


class _IngestMetrics:
    """Engine metric handles captured once per ingest.

    The function-level analogue of the construction-time handle capture
    the instrumented classes use: one registry lookup per ``_ingest``
    call, then plain attribute loads on the per-shard path.
    """

    __slots__ = (
        "workers", "shards", "items", "shard_seconds", "shard_rate",
        "merge_seconds", "wait_seconds",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.workers = registry.gauge("parallel_workers")
        self.shards = registry.counter("parallel_shards_total")
        self.items = registry.counter("parallel_items_total")
        self.shard_seconds = registry.histogram("parallel_shard_seconds")
        self.shard_rate = registry.histogram(
            "parallel_shard_items_per_second"
        )
        self.merge_seconds = registry.histogram("parallel_merge_seconds")
        self.wait_seconds = registry.histogram(
            "parallel_backpressure_wait_seconds"
        )


@dataclass(frozen=True)
class ShardStats:
    """Throughput and footprint of one shard (one chunk, one worker)."""

    shard: int
    items: int
    seconds: float
    items_per_second: float
    counters_touched: int


@dataclass(frozen=True)
class IngestSummary:
    """Whole-run instrumentation for one parallel ingest."""

    backend: str
    executor: str  # "fork" or "serial"
    n_workers: int
    chunk_size: int
    n_shards: int
    total_items: int
    wall_seconds: float
    items_per_second: float
    merge_seconds: float
    shards: tuple[ShardStats, ...]
    #: Shards restored from a checkpoint directory instead of recomputed.
    restored_shards: int = 0
    #: Items covered by the restored shards (skipped on replay).
    restored_items: int = 0


# -- the engine -------------------------------------------------------------


def _absorb_state(
    merged: _AnySketch, result: _ShardResult, backend: str
) -> _AnySketch:
    """Rehydrate a shard from its state and ``merge`` it (§3.2).

    The raw-state writes below rebuild a worker's shard inside an empty
    sketch constructed with the parent's own ``(depth, width, seed)`` —
    hash compatibility holds by construction, and the final ``merge``
    call re-checks it.  Returns the rehydrated shard so the checkpoint
    layer can persist it after the merge.
    """
    if backend == "sparse":
        shard: _AnySketch = SparseCountSketch(
            merged.depth, merged.width, seed=merged.seed
        )
        shard._rows = list(result.state)  # repro: noqa-RS002
        shard._total_weight = result.total_weight  # repro: noqa-RS002
    else:
        counters = np.asarray(result.state, dtype=np.int64)
        shard = merged._with_counters(  # repro: noqa-RS004
            counters, result.total_weight
        )
    merged.merge(shard)
    return shard


def _ingest(
    stream: Iterable[Hashable],
    *,
    backend: str,
    depth: int,
    width: int,
    seed: int,
    n_workers: int,
    chunk_size: int,
    candidates: int | None,
    checkpoint_dir: str | Path | None = None,
) -> tuple[_AnySketch, dict[Hashable, None], IngestSummary]:
    """Chunk, fan out, and merge; returns (sketch, candidate dict, summary)."""
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    effective_backend = backend if candidates is None else "dense"
    merged = _make_sketch(effective_backend, depth, width, seed)
    executor = resolve_executor(n_workers)
    shard_stats: list[ShardStats] = []
    candidate_items: dict[Hashable, None] = {}  # insertion-ordered set
    merge_seconds = 0.0
    total_items = 0

    # Promote per-shard instrumentation into the metrics registry (the
    # ShardStats/IngestSummary fields stay for programmatic callers).
    # Under the default NullRegistry every handle is a shared no-op.
    registry = get_registry()
    metrics = _IngestMetrics(registry)
    metrics.workers.set(n_workers)

    # Durable-resume bookkeeping: fold previously checkpointed shards
    # into the merged sketch up front (merge order is irrelevant by
    # linearity) and skip their chunk indices when replaying the stream.
    store: ShardCheckpointStore | None = None
    covered: frozenset[int] = frozenset()
    restored_items = 0
    if checkpoint_dir is not None:
        store = ShardCheckpointStore(checkpoint_dir)
        store.ensure_manifest(
            {
                "backend": effective_backend,
                "depth": depth,
                "width": width,
                "seed": seed,
                "chunk_size": chunk_size,
                "candidates": candidates,
            }
        )
        restored: set[int] = set()
        for index, shard, meta in store.load_shards():
            merged.merge(shard)  # compatibility-checked (§3.2)
            for item in meta["candidates"]:
                candidate_items.setdefault(item)
            restored.add(index)
            restored_items += meta.get("items", 0)
        covered = frozenset(restored)
        total_items += restored_items

    def absorb(result: _ShardResult) -> None:
        nonlocal merge_seconds, total_items
        merge_start = time.perf_counter()
        shard = _absorb_state(
            merged, result, backend if candidates is None else "dense"
        )
        merge_elapsed = time.perf_counter() - merge_start
        if store is not None:
            store.save_shard(
                result.index,
                shard,
                items=result.items,
                candidates=result.candidates,
            )
        merge_seconds += merge_elapsed
        for item in result.candidates:
            candidate_items.setdefault(item)
        total_items += result.items
        items_per_second = (
            result.items / result.seconds if result.seconds > 0
            else float("inf")
        )
        if result.metrics:
            registry.merge_counters(result.metrics)
        metrics.shards.inc()
        metrics.items.inc(result.items)
        metrics.shard_seconds.observe(result.seconds)
        if result.seconds > 0:
            metrics.shard_rate.observe(items_per_second)
        metrics.merge_seconds.observe(merge_elapsed)
        shard_stats.append(
            ShardStats(
                shard=result.index,
                items=result.items,
                seconds=result.seconds,
                items_per_second=items_per_second,
                counters_touched=result.counters_touched,
            )
        )

    tasks = (
        _ShardTask(
            index=index,
            backend=backend,
            depth=depth,
            width=width,
            seed=seed,
            candidates=candidates,
            chunk=chunk,
        )
        for index, chunk in enumerate(iter_chunks(stream, chunk_size))
        if index not in covered
    )

    wall_start = time.perf_counter()
    if executor == "serial":
        for task in tasks:
            absorb(_sketch_chunk(task))
    else:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=n_workers) as pool:
            # Backpressure: at most 2·n_workers chunks in flight, merged as
            # they complete, so memory stays bounded on endless streams.
            pending: deque[
                multiprocessing.pool.AsyncResult[_ShardResult]
            ] = deque()
            for task in tasks:
                pending.append(pool.apply_async(_sketch_chunk, (task,)))
                while len(pending) >= 2 * n_workers:
                    wait_start = time.perf_counter()
                    result = pending.popleft().get()
                    metrics.wait_seconds.observe(
                        time.perf_counter() - wait_start
                    )
                    absorb(result)
            while pending:
                absorb(pending.popleft().get())
    wall_seconds = time.perf_counter() - wall_start

    shard_stats.sort(key=lambda stats: stats.shard)
    summary = IngestSummary(
        backend=backend if candidates is None else "dense",
        executor=executor,
        n_workers=n_workers,
        chunk_size=chunk_size,
        n_shards=len(shard_stats),
        total_items=total_items,
        wall_seconds=wall_seconds,
        items_per_second=(
            total_items / wall_seconds if wall_seconds > 0 else float("inf")
        ),
        merge_seconds=merge_seconds,
        shards=tuple(shard_stats),
        restored_shards=len(covered),
        restored_items=restored_items,
    )
    return merged, candidate_items, summary


def parallel_sketch(
    stream: Iterable[Hashable],
    depth: int,
    width: int,
    *,
    seed: int = 0,
    backend: str = "dense",
    n_workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint_dir: str | Path | None = None,
) -> tuple[_AnySketch, IngestSummary]:
    """Sketch a stream with sharded workers; exact by linearity.

    Args:
        stream: any iterable of hashable items (pair with
            :func:`repro.streams.io.iter_stream_text` for on-disk logs).
        depth: sketch rows ``t`` (shared by every shard).
        width: counters per row ``b`` (shared by every shard).
        seed: hash seed — all shards use it, which is what makes the
            merge exact; merging shards from different seeds is refused
            by the sketches' own compatibility checks.
        backend: ``"dense"``, ``"sparse"``, or ``"vectorized"``.
        n_workers: worker processes; 1 (or a fork-less platform) runs the
            identical pipeline serially.
        chunk_size: items per shard chunk.
        checkpoint_dir: when set, every absorbed shard is persisted there
            (atomic ``.rcs`` snapshots via :mod:`repro.store`); rerunning
            with the same directory, stream, and parameters restores the
            saved shards and only sketches the not-yet-covered chunks.
            A mismatched directory is refused
            (:class:`~repro.store.CheckpointMismatchError`).

    Returns:
        ``(sketch, summary)`` — the merged sketch, bit-for-bit equal to a
        single-process sketch of the same stream, and an
        :class:`IngestSummary` of per-shard throughput.
    """
    merged, __, summary = _ingest(
        stream,
        backend=backend,
        depth=depth,
        width=width,
        seed=seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        candidates=None,
        checkpoint_dir=checkpoint_dir,
    )
    return merged, summary


def parallel_topk(
    stream: Iterable[Hashable],
    k: int,
    depth: int,
    width: int,
    *,
    seed: int = 0,
    n_workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    candidates: int | None = None,
    checkpoint_dir: str | Path | None = None,
) -> tuple[list[tuple[Hashable, float]], IngestSummary]:
    """Approximate top-k over sharded workers (§4.1 CANDIDATETOP style).

    Each worker runs a :class:`~repro.core.topk.TopKTracker` with
    ``candidates ≥ k`` heap slots over its chunks; the parent merges the
    sketch shards exactly, unions the per-shard candidate lists, and
    re-estimates every candidate from the merged sketch — the same
    union-then-rescore step :class:`~repro.core.candidate_top.
    CandidateTopTracker` uses between passes.

    Args:
        stream: any iterable of hashable items.
        k: number of items to report.
        depth: sketch rows shared by every shard.
        width: counters per row shared by every shard.
        seed: shared hash seed (the §3.2 compatibility requirement).
        n_workers: worker processes (1 = serial).
        chunk_size: items per shard chunk.
        candidates: per-shard candidate list length ``l``; defaults to
            ``2·k``, the same safe constant multiple CANDIDATETOP uses.
        checkpoint_dir: when set, absorbed shards (sketch + candidate
            list) are persisted for durable resume, exactly as in
            :func:`parallel_sketch`.

    Returns:
        ``(top, summary)`` where ``top`` is a list of ``(item, estimate)``
        pairs, heaviest first, estimated from the exactly-merged sketch.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if candidates is None:
        candidates = 2 * k
    if candidates < k:
        raise ValueError("candidates must be at least k")
    merged, candidate_items, summary = _ingest(
        stream,
        backend="dense",
        depth=depth,
        width=width,
        seed=seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        candidates=candidates,
        checkpoint_dir=checkpoint_dir,
    )
    ranked = sorted(
        ((item, merged.estimate(item)) for item in candidate_items),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return ranked[:k], summary
