"""Sharded parallel ingestion (the §3.2 linearity, scaled out).

* :func:`~repro.parallel.engine.parallel_sketch` — chunk a stream, sketch
  each chunk in a worker, merge shards exactly.
* :func:`~repro.parallel.engine.parallel_topk` — sharded CANDIDATETOP:
  per-shard trackers, candidate union, re-estimate from the merged sketch.
* :func:`~repro.parallel.chunks.iter_chunks` /
  :func:`~repro.parallel.chunks.iter_file_chunks` — bounded-memory chunked
  drivers over iterables and on-disk streams.
* :class:`~repro.parallel.engine.IngestSummary` /
  :class:`~repro.parallel.engine.ShardStats` — per-run and per-shard
  instrumentation (items/s, merge time, counters touched).
"""

from repro.parallel.chunks import (
    DEFAULT_CHUNK_SIZE,
    iter_chunks,
    iter_file_chunks,
)
from repro.parallel.engine import (
    BACKENDS,
    IngestSummary,
    ShardStats,
    parallel_sketch,
    parallel_topk,
    resolve_executor,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK_SIZE",
    "IngestSummary",
    "ShardStats",
    "iter_chunks",
    "iter_file_chunks",
    "parallel_sketch",
    "parallel_topk",
    "resolve_executor",
]
