"""A3 — ablation: exact incremental counts for heap members (§3.2 step 2).

The §3.2 algorithm says "if q_j is in the heap, increment its count" —
heap members get exact counting from the moment they enter (plus their
estimated count at entry).  The alternative is to re-estimate a heap member
from the sketch on every recurrence.  This ablation compares the two on
(a) recall of the true top ``k`` and (b) the relative error of the
reported counts, showing that the exact-increment rule both stabilizes the
ranking and sharpens the reported counts at zero extra space.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import recall_at_k
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class HeapAblationConfig:
    """Workload parameters for the heap-counting ablation."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    k: int = 20
    depth: int = 5
    width: int = 256
    stream_seed: int = 47
    sketch_seeds: tuple[int, ...] = (0, 1, 2, 3, 4)


@dataclass(frozen=True)
class HeapAblationRow:
    """Quality metrics for one policy, averaged over sketch seeds.

    The count error is measured over the reported items that are truly in
    the top k (the items the guarantee is about); false-positive heap
    entries carry arbitrarily bad counts under *either* policy and would
    swamp the comparison.
    """

    policy: str
    recall: float
    mean_relative_count_error: float


def _evaluate(exact: bool, stream: Sequence[Hashable],
              stats: StreamStatistics,
              config: HeapAblationConfig) -> HeapAblationRow:
    truth = stats.top_k_items(config.k)
    recalls = []
    errors = []
    for seed in config.sketch_seeds:
        tracker = TopKTracker(
            config.k,
            depth=config.depth,
            width=config.width,
            seed=seed,
            exact_heap_counts=exact,
        )
        for item in stream:
            tracker.update(item)
        reported = tracker.top()
        recalls.append(recall_at_k([item for item, __ in reported], truth))
        per_item = [
            abs(count - stats.count(item)) / stats.count(item)
            for item, count in reported
            if item in truth and stats.count(item) > 0
        ]
        errors.append(sum(per_item) / len(per_item) if per_item else 0.0)
    return HeapAblationRow(
        policy="exact heap counts" if exact else "re-estimate from sketch",
        recall=sum(recalls) / len(recalls),
        mean_relative_count_error=sum(errors) / len(errors),
    )


def run(config: HeapAblationConfig = HeapAblationConfig()) -> list[HeapAblationRow]:
    """Compare the two heap-count policies."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    stats = StreamStatistics(counts=stream.counts())
    return [
        _evaluate(True, stream, stats, config),
        _evaluate(False, stream, stats, config),
    ]


def format_report(rows: list[HeapAblationRow], config: HeapAblationConfig) -> str:
    """Render the policy comparison."""
    return format_table(
        ["policy", "recall@k", "mean rel count err"],
        [[r.policy, r.recall, r.mean_relative_count_error] for r in rows],
        title=(
            f"A3 / §3.2 — heap count policy; zipf(z={config.z}, "
            f"m={config.m}), n={config.n}, k={config.k}, t={config.depth}, "
            f"b={config.width}"
        ),
    )


def main() -> None:
    """Run A3 at the default configuration and print the report."""
    config = HeapAblationConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
