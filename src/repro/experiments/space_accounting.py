"""E8 — the §5 bit-level space comparison.

§5's closing argument: counters cost ``O(log n)`` bits, but *stored stream
objects* cost ``ℓ`` bits, and the two algorithms store very different
numbers of objects — COUNT SKETCH keeps only its ``k`` heap members while
SAMPLING keeps every distinct sampled item.  For a Zipfian with ``z = 1``
the paper concludes SAMPLING needs ``O(k log m log(k/δ) · ℓ)`` space versus
``O(k log(n/δ) + k·ℓ)`` for Count Sketch, so the sketch wins whenever
``ℓ ≫ log n``.

The experiment runs both algorithms once on the same stream (each
dimensioned for CANDIDATETOP at the same ``k``), then evaluates
:class:`~repro.analysis.space.SpaceModel` over a sweep of object sizes ℓ,
locating the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.space import SpaceModel
from repro.baselines.sampling import SamplingSummary
from repro.core.candidate_top import CandidateTopTracker
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class SpaceAccountingConfig:
    """Workload parameters for the bit-accounting experiment."""

    m: int = 10_000
    n: int = 100_000
    z: float = 1.0
    k: int = 10
    depth: int = 5
    width: int = 512
    delta: float = 0.05
    stream_seed: int = 37
    object_bits: tuple[int, ...] = (32, 128, 512, 2048)


@dataclass(frozen=True)
class SpaceAccountingRow:
    """Total bits of each summary at one object size ℓ."""

    object_bits: int
    count_sketch_bits: int
    sampling_bits: int
    ratio: float  # sampling / count sketch


@dataclass(frozen=True)
class SpaceAccountingResult:
    """The ℓ sweep plus the raw counter/object tallies."""

    rows: list[SpaceAccountingRow]
    cs_counters: int
    cs_objects: int
    sampling_counters: int
    sampling_objects: int


def run(
    config: SpaceAccountingConfig = SpaceAccountingConfig(),
) -> SpaceAccountingResult:
    """Run both algorithms once and sweep the object-size model."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    stats = StreamStatistics(counts=stream.counts())

    tracker = CandidateTopTracker(
        config.k, depth=config.depth, width=config.width,
        seed=config.stream_seed,
    )
    for item in stream:
        tracker.update(item)

    sampler = SamplingSummary.for_candidate_top(
        stats.nk(config.k), config.k, config.delta, seed=config.stream_seed
    )
    for item in stream:
        sampler.update(item)

    rows = []
    for object_bits in config.object_bits:
        model = SpaceModel.for_stream(config.n, object_bits)
        cs_bits = model.summary_bits(tracker)
        sampling_bits = model.summary_bits(sampler)
        rows.append(
            SpaceAccountingRow(
                object_bits=object_bits,
                count_sketch_bits=cs_bits,
                sampling_bits=sampling_bits,
                ratio=sampling_bits / cs_bits,
            )
        )
    return SpaceAccountingResult(
        rows=rows,
        cs_counters=tracker.counters_used(),
        cs_objects=tracker.items_stored(),
        sampling_counters=sampler.counters_used(),
        sampling_objects=sampler.items_stored(),
    )


def format_report(
    result: SpaceAccountingResult, config: SpaceAccountingConfig
) -> str:
    """Render the bit-accounting table."""
    table = format_table(
        ["object bits (l)", "COUNT SKETCH bits", "SAMPLING bits",
         "SAMPLING/CS"],
        [
            [r.object_bits, r.count_sketch_bits, r.sampling_bits, r.ratio]
            for r in result.rows
        ],
        title=(
            f"E8 / §5 — total bits vs object size; zipf(z={config.z}), "
            f"n={config.n}, k={config.k}"
        ),
    )
    footer = (
        f"COUNT SKETCH: {result.cs_counters} counters, "
        f"{result.cs_objects} stored objects | SAMPLING: "
        f"{result.sampling_counters} counters, "
        f"{result.sampling_objects} stored objects"
    )
    return f"{table}\n{footer}"


def main() -> None:
    """Run E8 at the default configuration and print the report."""
    config = SpaceAccountingConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
