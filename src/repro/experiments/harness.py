"""Shared experiment machinery: sweeps, searches, and scaling fits.

Three tools cover what the experiments need:

* :func:`geometric_grid` — the parameter grids every sweep walks.
* :func:`minimal_passing_value` — "the smallest width at which the
  algorithm succeeds", the measurement Table 1's space comparison is built
  from.  Success is probabilistic, so the predicate is evaluated over
  several seeds and must pass a success-rate threshold.
* :func:`fit_power_law` — log–log least-squares slope, used to check the
  §4.1 scaling *shapes* (e.g. ``b ∝ m^{1−2z}``) without caring about the
  big-O constants the paper leaves free.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence


def geometric_grid(lo: int, hi: int, factor: float = 2.0) -> list[int]:
    """Integers from ``lo`` to ``hi`` (inclusive) spaced by ``factor``.

    Args:
        lo: first grid point (≥ 1).
        hi: inclusive upper bound; appended if the last step overshoots.
        factor: multiplicative spacing (> 1).
    """
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    if factor <= 1:
        raise ValueError("factor must exceed 1")
    grid = []
    value = float(lo)
    while value < hi:
        point = int(round(value))
        if not grid or point > grid[-1]:
            grid.append(point)
        value *= factor
    if not grid or grid[-1] != hi:
        grid.append(hi)
    return grid


def minimal_passing_value(
    predicate: Callable[[int, int], bool],
    grid: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    success_rate: float = 0.75,
) -> int | None:
    """Smallest grid value where ``predicate(value, seed)`` passes often
    enough.

    Walks ``grid`` in increasing order and returns the first value whose
    success rate over ``seeds`` reaches ``success_rate`` — a randomized
    algorithm's "required space" measured the way the paper's w.h.p.
    statements define it.  Returns ``None`` if no grid value passes.

    Args:
        predicate: ``(value, seed) -> bool`` success test.
        grid: candidate values, ascending.
        seeds: seeds to evaluate each value at.
        success_rate: fraction of seeds that must pass.
    """
    if not 0 < success_rate <= 1:
        raise ValueError("success_rate must be in (0, 1]")
    needed = math.ceil(success_rate * len(seeds))
    for value in grid:
        passes = 0
        for index, seed in enumerate(seeds):
            if predicate(value, seed):
                passes += 1
            # Early exit when success is already impossible.
            remaining = len(seeds) - index - 1
            if passes + remaining < needed:
                break
        if passes >= needed:
            return value
    return None


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The least-squares slope of ``log y`` against ``log x``.

    For measurements following ``y = C·x^a`` this returns ``a`` regardless
    of ``C`` — exactly the exponent the §4.1 scaling claims predict.

    Raises:
        ValueError: on fewer than two points or nonpositive values.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive values")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    mean_x = sum(log_x) / len(log_x)
    mean_y = sum(log_y) / len(log_y)
    numerator = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y, strict=True)
    )
    denominator = sum((lx - mean_x) ** 2 for lx in log_x)
    if denominator == 0:
        raise ValueError("all x values are identical")
    return numerator / denominator


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (empty input raises)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
