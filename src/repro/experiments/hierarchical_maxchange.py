"""X1 — extension: one-pass hierarchical max-change vs the §4.2 two-pass.

The §4.2 algorithm needs a second pass over both streams because a flat
sketch cannot *enumerate* heavy-change items.  The hierarchical (dyadic)
Count Sketch removes that need: sketch each stream once, subtract, and
search the difference hierarchy for ``|Δ̂| ≥ threshold``
(:func:`repro.core.hierarchical.heavy_change_items`).

This experiment runs both on the same planted-drift pair and compares:

* recall of the true top-``k`` absolute changes,
* mean change-estimate error over those items,
* counters used, and the number of stream passes.

The semantic difference is honest: the hierarchical variant answers a
*threshold* query (all changes ≥ T) rather than a top-``k`` query, so the
threshold is set from the workload (a fraction of the k-th largest true
change) and reported alongside.
"""

from __future__ import annotations

from collections.abc import Hashable

from dataclasses import dataclass

from repro.analysis.metrics import recall_at_k
from repro.core.hierarchical import HierarchicalCountSketch
from repro.core.maxchange import MaxChangeFinder
from repro.experiments.report import format_table
from repro.streams.drift import make_drift_pair


@dataclass(frozen=True)
class HierarchicalMaxChangeConfig:
    """Workload parameters for the one-pass vs two-pass comparison."""

    domain_bits: int = 11  # items in [0, 2048)
    m: int = 2_000
    n: int = 30_000
    z: float = 1.0
    k: int = 10
    l: int = 40
    depth: int = 5
    width: int = 512
    boost: float = 8.0
    pair_seed: int = 61
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    threshold_fraction: float = 0.8


@dataclass(frozen=True)
class MethodRow:
    """Scores for one method, averaged over sketch seeds."""

    method: str
    passes: int
    counters: int
    recall: float
    mean_change_error: float


def run(
    config: HierarchicalMaxChangeConfig = HierarchicalMaxChangeConfig(),
) -> tuple[list[MethodRow], float]:
    """Compare the two methods; returns (rows, threshold used)."""
    pair = make_drift_pair(
        config.m, config.n, z=config.z, boost=config.boost,
        seed=config.pair_seed,
    )
    truth = pair.true_changes()
    top = pair.top_changes(config.k)
    top_items = {item for item, __ in top}
    threshold = abs(top[-1][1]) * config.threshold_fraction

    def change_error(estimates: dict[Hashable, float]) -> float:
        return sum(
            abs(estimates.get(item, 0.0) - truth[item]) for item in top_items
        ) / len(top_items)

    # -- two-pass (§4.2) ------------------------------------------------------
    recalls, errors, counters = [], [], 0
    for seed in config.sketch_seeds:
        finder = MaxChangeFinder(
            config.l, depth=config.depth, width=config.width, seed=seed
        )
        finder.first_pass(pair.before, pair.after)
        finder.second_pass(pair.before, pair.after)
        reports = finder.report(config.k)
        recalls.append(recall_at_k([r.item for r in reports], top_items))
        errors.append(
            change_error(
                {item: finder.sketch.estimate(item) for item in top_items}
            )
        )
        counters = finder.counters_used()
    two_pass = MethodRow(
        method="two-pass (paper §4.2)",
        passes=2,
        counters=counters,
        recall=sum(recalls) / len(recalls),
        mean_change_error=sum(errors) / len(errors),
    )

    # -- one-pass hierarchical -------------------------------------------------
    recalls, errors, counters = [], [], 0
    for seed in config.sketch_seeds:
        before = HierarchicalCountSketch(
            config.domain_bits, config.depth, config.width, seed
        )
        after = HierarchicalCountSketch(
            config.domain_bits, config.depth, config.width, seed
        )
        before.extend(pair.before)
        after.extend(pair.after)
        difference = after - before
        found = difference.heavy_hitters(threshold, absolute=True)
        reported = [item for item, __ in found[: config.k]]
        recalls.append(recall_at_k(reported, top_items))
        errors.append(
            change_error(
                {item: difference.estimate(item) for item in top_items}
            )
        )
        counters = before.counters_used() + after.counters_used()
    one_pass = MethodRow(
        method="one-pass hierarchical (ext.)",
        passes=1,
        counters=counters,
        recall=sum(recalls) / len(recalls),
        mean_change_error=sum(errors) / len(errors),
    )

    return [two_pass, one_pass], threshold


def format_report(
    rows: list[MethodRow],
    threshold: float,
    config: HierarchicalMaxChangeConfig,
) -> str:
    """Render the comparison."""
    table = format_table(
        ["method", "passes", "counters", "recall@k", "mean |est dV - dV|"],
        [
            [r.method, r.passes, r.counters, r.recall, r.mean_change_error]
            for r in rows
        ],
        title=(
            f"X1 — one-pass hierarchical vs two-pass max-change; "
            f"m={config.m}, n={config.n}, k={config.k}"
        ),
    )
    return f"{table}\nhierarchical threshold T = {threshold:.0f}"


def main() -> None:
    """Run X1 at the default configuration and print the report."""
    config = HierarchicalMaxChangeConfig()
    rows, threshold = run(config)
    print(format_report(rows, threshold, config))


if __name__ == "__main__":
    main()
