"""A4 — ablation: hash-family choice inside the Count Sketch.

The analysis assumes pairwise-independent hash functions; the default
implementation uses the polynomial family over ``2^61 − 1`` that
delivers exactly that.  Practical deployments often substitute cheaper
(multiply-shift) or stronger-in-practice (tabulation) families.  This
ablation runs the *same* Count Sketch with each family at identical
dimensions and compares estimation error and update throughput,
quantifying that the accuracy is family-insensitive on realistic streams
(so the family is a pure speed/portability choice) — the empirical basis
for offering the vectorized multiply-shift backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.core.countsketch import CountSketch
from repro.experiments.report import format_table
from repro.hashing.bucket import BucketHashFamily
from repro.hashing.multiply_shift import MultiplyShiftFamily
from repro.hashing.sign import SignHashFamily
from repro.hashing.tabulation import TabulationFamily
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class HashFamilyAblationConfig:
    """Workload parameters for the hash-family ablation."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    depth: int = 5
    width: int = 256
    stream_seed: int = 71
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    query_ranks: int = 300
    timing_items: int = 5_000


@dataclass(frozen=True)
class HashFamilyRow:
    """Error and speed for one family, pooled over sketch seeds."""

    family: str
    mean_abs_error: float
    p95_abs_error: float
    updates_per_second: float


def _build_sketch(family: str, config: HashFamilyAblationConfig,
                  seed: int) -> CountSketch:
    """A Count Sketch whose rows come from the named family."""
    if family == "polynomial":
        return CountSketch(config.depth, config.width, seed=seed)
    if family == "tabulation":
        base_buckets = TabulationFamily(seed=seed, salt="buckets")
        base_signs = TabulationFamily(seed=seed, salt="signs")
    elif family == "multiply-shift":
        base_buckets = MultiplyShiftFamily(out_bits=31, seed=seed,
                                           salt="buckets")
        base_signs = MultiplyShiftFamily(out_bits=31, seed=seed,
                                         salt="signs")
    else:
        raise ValueError(f"unknown family {family!r}")
    bucket_hashes = BucketHashFamily(base_buckets, config.width).draw(
        config.depth
    )
    sign_hashes = SignHashFamily(base_signs).draw(config.depth)
    return CountSketch(
        config.depth,
        config.width,
        seed=seed,
        bucket_hashes=bucket_hashes,
        sign_hashes=sign_hashes,
    )


FAMILIES = ("polynomial", "tabulation", "multiply-shift")


def run(
    config: HashFamilyAblationConfig = HashFamilyAblationConfig(),
) -> list[HashFamilyRow]:
    """Compare the three families at identical sketch dimensions."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    counts = stream.counts()
    stats = StreamStatistics(counts=counts)
    queries = [item for item, __ in stats.top_k(config.query_ranks)]
    timing_slice = list(stream)[: config.timing_items]

    rows = []
    for family in FAMILIES:
        errors: list[float] = []
        rates: list[float] = []
        for seed in config.sketch_seeds:
            sketch = _build_sketch(family, config, seed)
            sketch.update_counts(counts)
            errors.extend(
                abs(sketch.estimate(item) - counts[item]) for item in queries
            )
            timed = _build_sketch(family, config, seed)
            start = time.perf_counter()
            for item in timing_slice:
                timed.update(item)
            rates.append(len(timing_slice) / (time.perf_counter() - start))
        errors_arr = np.asarray(errors)
        rows.append(
            HashFamilyRow(
                family=family,
                mean_abs_error=float(errors_arr.mean()),
                p95_abs_error=float(np.percentile(errors_arr, 95)),
                updates_per_second=sum(rates) / len(rates),
            )
        )
    return rows


def format_report(
    rows: list[HashFamilyRow], config: HashFamilyAblationConfig
) -> str:
    """Render the family comparison."""
    return format_table(
        ["family", "mean |err|", "p95 |err|", "updates/sec"],
        [
            [r.family, r.mean_abs_error, r.p95_abs_error,
             r.updates_per_second]
            for r in rows
        ],
        title=(
            f"A4 — hash-family ablation at t={config.depth}, "
            f"b={config.width}; zipf(z={config.z}, m={config.m}), "
            f"n={config.n}"
        ),
    )


def main() -> None:
    """Run A4 at the default configuration and print the report."""
    config = HashFamilyAblationConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
