"""E5 — the §4.1 width scaling laws (Cases 1–3).

§4.1 derives how the Lemma 5 width ``b`` scales for Zipfian streams:

* **Case 1** (``z < ½``): ``b = m^{1−2z} k^{2z}`` — grows with the universe
  size ``m``; measured by sweeping ``m`` at ``z = 0.3`` and fitting the
  log–log slope (theory: ``1 − 2z = 0.4``).
* **Case 2** (``z = ½``): ``b = k log m`` — only logarithmic in ``m``;
  measured by the same sweep at ``z = 0.5`` (slope ≈ 0, ratio to ``log m``
  roughly flat).
* **Case 3** (``z > ½``): ``b = k`` — independent of ``m``, linear in
  ``k``; measured by sweeping ``k`` at ``z = 0.9`` (slope ≈ 1).

"Required width" is measured operationally: the smallest ``b`` (geometric
grid, factor √2̄) at which the sketch's estimates place the true top ``k``
inside the top ``2k`` estimated items — the §4.1 CANDIDATETOP criterion —
for most sketch seeds.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable
from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.core.countsketch import CountSketch
from repro.experiments.harness import (
    fit_power_law,
    geometric_grid,
    minimal_passing_value,
)
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class ScalingConfig:
    """Workload parameters for the three scaling sweeps."""

    n: int = 50_000
    depth: int = 5
    case1_z: float = 0.3
    case2_z: float = 0.5
    case12_ms: tuple[int, ...] = (2_000, 4_000, 8_000, 16_000)
    case12_k: int = 10
    case3_z: float = 0.9
    case3_ks: tuple[int, ...] = (5, 10, 20, 40)
    case3_m: int = 10_000
    stream_seed: int = 23
    sketch_seeds: tuple[int, ...] = (0, 1, 2, 3)
    max_width: int = 1 << 18


@dataclass(frozen=True)
class ScalingPoint:
    """One sweep point: the independent variable and the measured width."""

    case: str
    variable: str
    value: int
    required_width: int | None


@dataclass(frozen=True)
class ScalingResult:
    """All sweep points plus the fitted exponents."""

    points: list[ScalingPoint]
    case1_slope: float
    case2_slope: float
    case3_slope: float


def _required_width(
    counts: Counter[Hashable], k: int, config: ScalingConfig
) -> int | None:
    """Smallest width whose estimates put the true top-k in the top 2k."""
    stats = StreamStatistics(counts=counts)
    true_top = stats.top_k_items(k)
    items = list(counts)

    def succeeds(width: int, seed: int) -> bool:
        sketch = CountSketch(config.depth, width, seed=seed)
        sketch.update_counts(counts)
        estimated = sorted(
            items, key=lambda item: sketch.estimate(item), reverse=True
        )
        return true_top <= set(estimated[: 2 * k])

    grid = geometric_grid(max(4, k), config.max_width, factor=2 ** 0.5)
    return minimal_passing_value(
        succeeds, grid, seeds=config.sketch_seeds, success_rate=0.75
    )


def _sweep_m(z: float, case: str, config: ScalingConfig) -> list[ScalingPoint]:
    points = []
    for m in config.case12_ms:
        stream = ZipfStreamGenerator(m, z, seed=config.stream_seed).generate(
            config.n
        )
        width = _required_width(stream.counts(), config.case12_k, config)
        points.append(ScalingPoint(case, "m", m, width))
    return points


def _sweep_k(config: ScalingConfig) -> list[ScalingPoint]:
    stream = ZipfStreamGenerator(
        config.case3_m, config.case3_z, seed=config.stream_seed
    ).generate(config.n)
    counts = stream.counts()
    points = []
    for k in config.case3_ks:
        width = _required_width(counts, k, config)
        points.append(ScalingPoint("case3", "k", k, width))
    return points


def _slope(points: list[ScalingPoint]) -> float:
    usable = [(p.value, p.required_width) for p in points
              if p.required_width is not None]
    if len(usable) < 2:
        return float("nan")
    return fit_power_law([x for x, __ in usable], [y for __, y in usable])


def run(config: ScalingConfig = ScalingConfig()) -> ScalingResult:
    """Run the three sweeps and fit the scaling exponents."""
    case1 = _sweep_m(config.case1_z, "case1", config)
    case2 = _sweep_m(config.case2_z, "case2", config)
    case3 = _sweep_k(config)
    return ScalingResult(
        points=case1 + case2 + case3,
        case1_slope=_slope(case1),
        case2_slope=_slope(case2),
        case3_slope=_slope(case3),
    )


def format_report(result: ScalingResult, config: ScalingConfig) -> str:
    """Render the sweep table plus the exponent summary."""
    table = format_table(
        ["case", "variable", "value", "required width b"],
        [
            [p.case, p.variable, p.value,
             p.required_width if p.required_width is not None else "-"]
            for p in result.points
        ],
        title="E5 / §4.1 Cases 1-3 — required width scaling",
    )
    summary = (
        f"case 1 (z={config.case1_z}): slope of b vs m = "
        f"{result.case1_slope:.3f} (theory {1 - 2 * config.case1_z:.2f})\n"
        f"case 2 (z={config.case2_z}): slope of b vs m = "
        f"{result.case2_slope:.3f} (theory ~0, log m)\n"
        f"case 3 (z={config.case3_z}): slope of b vs k = "
        f"{result.case3_slope:.3f} (theory 1.0)"
    )
    return f"{table}\n\n{summary}"


def main() -> None:
    """Run E5 at the default configuration and print the report."""
    config = ScalingConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
