"""A1 — ablation: median vs mean combiner (§3.1's design motivation).

§3.1 explains why the final scheme takes the *median* of the per-row
estimates instead of the mean: "high-frequency items ... make large
contributions to the variance in the estimates of lower frequency
elements" and "the mean is very sensitive to outliers, while the median is
sufficiently robust."  This ablation plants a handful of very heavy items
on top of a Zipf background and compares both combiners' errors on
mid-frequency items — the ones whose buckets the heavy items occasionally
poison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.core.countsketch import CountSketch
from repro.experiments.report import format_table
from repro.streams.generators import planted_heavy_hitter_stream


@dataclass(frozen=True)
class EstimatorAblationConfig:
    """Workload parameters for the combiner ablation."""

    m: int = 5_000
    n: int = 50_000
    heavy_items: int = 10
    heavy_fraction: float = 0.4
    background_z: float = 1.0
    depth: int = 5
    width: int = 128
    stream_seed: int = 41
    sketch_seeds: tuple[int, ...] = tuple(range(10))
    query_rank_lo: int = 30
    query_rank_hi: int = 300


@dataclass(frozen=True)
class EstimatorAblationRow:
    """Error statistics for one combiner."""

    combiner: str
    mean_abs_error: float
    p95_abs_error: float
    max_abs_error: float


def run(
    config: EstimatorAblationConfig = EstimatorAblationConfig(),
) -> list[EstimatorAblationRow]:
    """Compare median and mean combiners on mid-frequency items."""
    stream = planted_heavy_hitter_stream(
        config.m,
        config.n,
        config.heavy_items,
        config.heavy_fraction,
        config.background_z,
        seed=config.stream_seed,
    )
    counts = stream.counts()
    stats = StreamStatistics(counts=counts)
    ranked = [item for item, __ in stats.top_k(config.query_rank_hi)]
    queries = ranked[config.query_rank_lo:config.query_rank_hi]

    median_errors: list[float] = []
    mean_errors: list[float] = []
    for seed in config.sketch_seeds:
        sketch = CountSketch(config.depth, config.width, seed=seed)
        sketch.update_counts(counts)
        for item in queries:
            true = counts[item]
            median_errors.append(abs(sketch.estimate(item) - true))
            mean_errors.append(abs(sketch.estimate_mean(item) - true))

    def summarize(label: str, errors: list[float]) -> EstimatorAblationRow:
        arr = np.asarray(errors)
        return EstimatorAblationRow(
            combiner=label,
            mean_abs_error=float(arr.mean()),
            p95_abs_error=float(np.percentile(arr, 95)),
            max_abs_error=float(arr.max()),
        )

    return [summarize("median", median_errors), summarize("mean", mean_errors)]


def format_report(
    rows: list[EstimatorAblationRow], config: EstimatorAblationConfig
) -> str:
    """Render the combiner comparison."""
    return format_table(
        ["combiner", "mean |err|", "p95 |err|", "max |err|"],
        [
            [r.combiner, r.mean_abs_error, r.p95_abs_error, r.max_abs_error]
            for r in rows
        ],
        title=(
            f"A1 / §3.1 — median vs mean combiner; {config.heavy_items} "
            f"planted heavy items carrying {config.heavy_fraction:.0%} of "
            f"n={config.n}"
        ),
    )


def main() -> None:
    """Run A1 at the default configuration and print the report."""
    config = EstimatorAblationConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
