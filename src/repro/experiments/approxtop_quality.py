"""E4 — the APPROXTOP(S, k, ε) guarantee (Lemma 5 / Theorem 1).

Dimension the tracker exactly as Lemma 5 prescribes —
``b = 8·max(k, 32·Σ_{q'>k} n_{q'}²/(ε·n_k)²)`` and ``t = Θ(log n/δ)`` — run
it over Zipf streams, and test the two §1 guarantees:

* **weak**: every reported item has true count ≥ (1−ε)·n_k;
* **strong**: every item with true count ≥ (1+ε)·n_k is reported.

Because Lemma 5's constants (8·32 = 256/ε²) are worst-case, the experiment
also evaluates the same guarantees at ``b/16`` and ``b/64``, recording how
much slack the analysis leaves on realistic inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import approxtop_strong_ok, approxtop_weak_ok
from repro.core.params import suggest_depth, width_for_approxtop
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class ApproxTopConfig:
    """Workload parameters for the APPROXTOP guarantee experiment."""

    m: int = 5_000
    n: int = 50_000
    k: int = 20
    zs: tuple[float, ...] = (0.8, 1.1)
    epsilons: tuple[float, ...] = (0.25, 0.5)
    delta: float = 0.05
    depth_constant: float = 0.5
    stream_seed: int = 17
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    width_fractions: tuple[int, ...] = (1, 16, 64)
    max_width: int = 1 << 20


@dataclass(frozen=True)
class ApproxTopRow:
    """Guarantee success rates for one (z, ε, width fraction) cell."""

    z: float
    epsilon: float
    width_fraction: int
    depth: int
    width: int
    weak_rate: float
    strong_rate: float


def run(config: ApproxTopConfig = ApproxTopConfig()) -> list[ApproxTopRow]:
    """Evaluate the guarantees across (z, ε) at several width fractions."""
    depth = suggest_depth(config.n, config.delta, config.depth_constant)
    rows = []
    for z in config.zs:
        stream = ZipfStreamGenerator(
            config.m, z, seed=config.stream_seed
        ).generate(config.n)
        stats = StreamStatistics(counts=stream.counts())
        nk = stats.nk(config.k)
        tail = stats.tail_second_moment(config.k)
        for epsilon in config.epsilons:
            full_width = min(
                width_for_approxtop(config.k, epsilon, nk, tail),
                config.max_width,
            )
            for fraction in config.width_fractions:
                width = max(config.k, full_width // fraction)
                weak = strong = 0
                for seed in config.sketch_seeds:
                    tracker = TopKTracker(
                        config.k, depth=depth, width=width, seed=seed
                    )
                    for item in stream:
                        tracker.update(item)
                    reported = [item for item, __ in tracker.top()]
                    weak += approxtop_weak_ok(
                        reported, stats, config.k, epsilon
                    )
                    strong += approxtop_strong_ok(
                        reported, stats, config.k, epsilon
                    )
                trials = len(config.sketch_seeds)
                rows.append(
                    ApproxTopRow(
                        z=z,
                        epsilon=epsilon,
                        width_fraction=fraction,
                        depth=depth,
                        width=width,
                        weak_rate=weak / trials,
                        strong_rate=strong / trials,
                    )
                )
    return rows


def lemma5_rows_all_pass(rows: list[ApproxTopRow]) -> bool:
    """True iff every full-Lemma-5-width row passed both guarantees."""
    return all(
        r.weak_rate == 1.0 and r.strong_rate == 1.0
        for r in rows
        if r.width_fraction == 1
    )


def format_report(rows: list[ApproxTopRow], config: ApproxTopConfig) -> str:
    """Render the guarantee table."""
    return format_table(
        ["z", "eps", "b = Lemma5/", "depth t", "width b", "weak ok",
         "strong ok"],
        [
            [r.z, r.epsilon, r.width_fraction, r.depth, r.width,
             r.weak_rate, r.strong_rate]
            for r in rows
        ],
        title=(
            f"E4 / Lemma 5 & Theorem 1 — APPROXTOP guarantees; "
            f"m={config.m}, n={config.n}, k={config.k}"
        ),
    )


def main() -> None:
    """Run E4 at the default configuration and print the report."""
    config = ApproxTopConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
