"""T1 — update throughput across algorithms.

Not a paper experiment (the paper is purely analytic), but standard for a
system release: items/second of the one-pass update path of every
algorithm in the library, on the same pre-generated Zipf stream, at
space settings comparable to the Table 1 task.  pytest-benchmark covers
per-operation timing in ``benchmarks/``; this module gives the
whole-stream view.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable

from repro.baselines.countmin import CountMinSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.kps import KPSFrequent
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.sampling import SamplingSummary
from repro.baselines.space_saving import SpaceSaving
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class ThroughputConfig:
    """Workload parameters for the throughput comparison."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    k: int = 10
    depth: int = 5
    width: int = 256
    stream_seed: int = 53


@dataclass(frozen=True)
class ThroughputRow:
    """Items/second for one algorithm."""

    algorithm: str
    items_per_second: float
    counters_used: int


def _summaries(config: ThroughputConfig) -> dict[str, Callable[[], object]]:
    """Factories for each algorithm under test."""
    return {
        "CountSketch": lambda: CountSketch(
            config.depth, config.width, seed=0
        ),
        "TopKTracker": lambda: TopKTracker(
            config.k, depth=config.depth, width=config.width, seed=0
        ),
        "CountMin": lambda: CountMinSketch(
            config.depth, config.width, seed=0
        ),
        "KPSFrequent": lambda: KPSFrequent(config.width),
        "SpaceSaving": lambda: SpaceSaving(config.width),
        "LossyCounting": lambda: LossyCounting(1.0 / config.width),
        "Sampling": lambda: SamplingSummary(0.05, seed=0),
        "ExactCounter": lambda: ExactCounter(),
    }


def run(config: ThroughputConfig = ThroughputConfig()) -> list[ThroughputRow]:
    """Time each algorithm's update loop over the same stream."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    items = list(stream)
    rows = []
    for name, factory in _summaries(config).items():
        summary = factory()
        update = summary.update
        start = time.perf_counter()
        for item in items:
            update(item)
        elapsed = time.perf_counter() - start
        rows.append(
            ThroughputRow(
                algorithm=name,
                items_per_second=len(items) / elapsed,
                counters_used=summary.counters_used(),
            )
        )
    rows.sort(key=lambda r: r.items_per_second, reverse=True)
    return rows


def format_report(rows: list[ThroughputRow], config: ThroughputConfig) -> str:
    """Render the throughput table."""
    return format_table(
        ["algorithm", "items/sec", "counters"],
        [[r.algorithm, r.items_per_second, r.counters_used] for r in rows],
        title=(
            f"T1 — update throughput; zipf(z={config.z}, m={config.m}), "
            f"n={config.n}"
        ),
    )


def main() -> None:
    """Run T1 at the default configuration and print the report."""
    config = ThroughputConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
