"""E2 — estimation error versus sketch width (Eq. 5 and Lemma 4).

Lemma 4 guarantees that, w.h.p., *every* estimate is within ``8γ`` of truth
with ``γ = sqrt(Σ_{q'>k} n_{q'}² / b)``.  Two claims are measured while
sweeping the width ``b``:

1. **the bound holds**: the fraction of estimates within ``8γ`` is ≈ 1 at
   every width;
2. **the scaling shape**: the guarantee decays as ``b^{-1/2}``.  The
   measured error must decay *at least* that fast (Lemma 4 is an upper
   bound).  On a flat-ish stream (``z = 0.5``) per-bucket noise is a sum of
   many comparable terms, the CLT applies, and the measured exponent sits
   right at −0.5; on a skewed stream (``z = 1``) the tail second moment is
   dominated by a few heavy colliders that the median rejects outright, so
   the *typical* error decays faster (≈ ``b^{-1}``) while the 8γ envelope
   still holds — both regimes are reported.
"""

from __future__ import annotations

from collections.abc import Hashable

from dataclasses import dataclass

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.core.countsketch import CountSketch
from repro.core.params import error_bound, gamma
from repro.experiments.harness import fit_power_law
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class ErrorVsBConfig:
    """Workload parameters for the error-vs-width sweep."""

    m: int = 10_000
    n: int = 100_000
    zs: tuple[float, ...] = (0.5, 1.0)
    k: int = 10
    depth: int = 5
    widths: tuple[int, ...] = (16, 32, 64, 128, 256, 512)
    stream_seed: int = 3
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    query_top_ranks: int = 100
    query_tail_samples: int = 200


@dataclass(frozen=True)
class ErrorVsBRow:
    """Measured errors at one (z, width), pooled over sketch seeds."""

    z: float
    width: int
    gamma: float
    bound: float  # 8γ, the Lemma 4 bound
    mean_abs_error: float
    max_abs_error: float
    within_bound_fraction: float


def _query_items(stats: StreamStatistics, config: ErrorVsBConfig,
                 rng: np.random.Generator) -> list[Hashable]:
    """Top ranks plus a random slice of the tail — the items estimated."""
    top = [item for item, __ in stats.top_k(config.query_top_ranks)]
    all_items = [item for item, __ in stats.top_k(stats.m)]
    tail = all_items[config.query_top_ranks:]
    if tail and config.query_tail_samples:
        picks = rng.choice(
            len(tail),
            size=min(config.query_tail_samples, len(tail)),
            replace=False,
        )
        top.extend(tail[i] for i in picks)
    return top


def run(config: ErrorVsBConfig = ErrorVsBConfig()) -> list[ErrorVsBRow]:
    """Sweep (z, width) and measure estimate errors against ground truth."""
    rows = []
    for z in config.zs:
        stream = ZipfStreamGenerator(
            config.m, z, seed=config.stream_seed
        ).generate(config.n)
        counts = stream.counts()
        stats = StreamStatistics(counts=counts)
        tail = stats.tail_second_moment(config.k)
        rng = np.random.default_rng(config.stream_seed)
        queries = _query_items(stats, config, rng)

        for width in config.widths:
            errors: list[float] = []
            for seed in config.sketch_seeds:
                sketch = CountSketch(config.depth, width, seed=seed)
                sketch.update_counts(counts)
                errors.extend(
                    abs(sketch.estimate(item) - counts[item])
                    for item in queries
                )
            bound = error_bound(tail, width)
            errors_arr = np.asarray(errors)
            rows.append(
                ErrorVsBRow(
                    z=z,
                    width=width,
                    gamma=gamma(tail, width),
                    bound=bound,
                    mean_abs_error=float(errors_arr.mean()),
                    max_abs_error=float(errors_arr.max()),
                    within_bound_fraction=float(
                        (errors_arr <= bound).mean()
                    ),
                )
            )
    return rows


def fitted_exponent(rows: list[ErrorVsBRow], z: float) -> float:
    """Log–log slope of mean error vs width for one ``z``.

    Theory: the guaranteed envelope decays at −0.5, so the measured slope
    must be ≤ −0.5 up to noise; it sits at −0.5 in the CLT regime
    (``z = 0.5``) and below it for skewed streams.
    """
    points = [
        (r.width, r.mean_abs_error)
        for r in rows
        if r.z == z and r.mean_abs_error > 0
    ]
    return fit_power_law([p[0] for p in points], [p[1] for p in points])


def format_report(rows: list[ErrorVsBRow], config: ErrorVsBConfig) -> str:
    """Render the sweep plus the fitted scaling exponents."""
    table = format_table(
        ["z", "width b", "gamma", "8*gamma", "mean |err|", "max |err|",
         "P[err <= 8g]"],
        [
            [r.z, r.width, r.gamma, r.bound, r.mean_abs_error,
             r.max_abs_error, r.within_bound_fraction]
            for r in rows
        ],
        title=(
            f"E2 / Lemma 4 — error vs width; m={config.m}, n={config.n}, "
            f"t={config.depth}, k={config.k}"
        ),
    )
    lines = [table, ""]
    for z in config.zs:
        exponent = fitted_exponent(rows, z)
        lines.append(
            f"z={z}: fitted exponent of mean error vs b = {exponent:.3f} "
            "(guarantee envelope: -0.5; measured must be <= -0.5 + noise)"
        )
    return "\n".join(lines)


def main() -> None:
    """Run E2 at the default configuration and print the report."""
    config = ErrorVsBConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
