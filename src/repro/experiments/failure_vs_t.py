"""E3 — failure probability versus sketch depth (Lemma 3).

Lemma 3 proves the per-item probability that the median estimate deviates
by more than ``8γ`` decays exponentially in the depth ``t`` (the Chernoff
bound over rows), which is what lets ``t = Θ(log n/δ)`` union-bound over
the whole stream.  This experiment fixes the width, sweeps ``t``, and
measures the fraction of (item, sketch-seed) pairs whose estimate deviates
by more than ``8γ`` — and, because ``8γ`` failures become unobservably rare
almost immediately, also by more than the *tighter* thresholds ``2γ`` and
``γ``, where the exponential decay is visible over several decades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.core.countsketch import CountSketch
from repro.core.params import gamma
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class FailureVsTConfig:
    """Workload parameters for the failure-vs-depth sweep."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    k: int = 10
    width: int = 64
    depths: tuple[int, ...] = (1, 3, 5, 7, 9, 13)
    stream_seed: int = 5
    sketch_seeds: tuple[int, ...] = tuple(range(40))
    query_ranks: int = 200


@dataclass(frozen=True)
class FailureVsTRow:
    """Failure rates at one depth, pooled over seeds and query items."""

    depth: int
    trials: int
    fail_rate_1g: float
    fail_rate_2g: float
    fail_rate_8g: float


def run(config: FailureVsTConfig = FailureVsTConfig()) -> list[FailureVsTRow]:
    """Sweep the depth and measure deviation rates at γ, 2γ, and 8γ."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    counts = stream.counts()
    stats = StreamStatistics(counts=counts)
    scale = gamma(stats.tail_second_moment(config.k), config.width)
    queries = [item for item, __ in stats.top_k(config.query_ranks)]

    rows = []
    for depth in config.depths:
        deviations: list[float] = []
        for seed in config.sketch_seeds:
            sketch = CountSketch(depth, config.width, seed=seed)
            sketch.update_counts(counts)
            deviations.extend(
                abs(sketch.estimate(item) - counts[item]) for item in queries
            )
        deviations_arr = np.asarray(deviations)
        rows.append(
            FailureVsTRow(
                depth=depth,
                trials=len(deviations),
                fail_rate_1g=float((deviations_arr > scale).mean()),
                fail_rate_2g=float((deviations_arr > 2 * scale).mean()),
                fail_rate_8g=float((deviations_arr > 8 * scale).mean()),
            )
        )
    return rows


def decay_is_exponential(rows: list[FailureVsTRow],
                         threshold_attr: str = "fail_rate_1g") -> bool:
    """Check the Lemma 3 shape: failure rates non-increasing in ``t`` and
    dropping by at least 2x from the shallowest to the deepest sketch
    (unless already at zero)."""
    rates = [getattr(r, threshold_attr) for r in rows]
    nonincreasing = all(
        rates[i + 1] <= rates[i] + 1e-9 for i in range(len(rates) - 1)
    )
    if rates[0] == 0:
        return nonincreasing
    return nonincreasing and (rates[-1] <= rates[0] / 2 or rates[-1] == 0)


def format_report(rows: list[FailureVsTRow], config: FailureVsTConfig) -> str:
    """Render the sweep."""
    table = format_table(
        ["depth t", "trials", "P[err > g]", "P[err > 2g]", "P[err > 8g]"],
        [
            [r.depth, r.trials, r.fail_rate_1g, r.fail_rate_2g, r.fail_rate_8g]
            for r in rows
        ],
        title=(
            f"E3 / Lemma 3 — failure rate vs depth; zipf(z={config.z}, "
            f"m={config.m}), n={config.n}, b={config.width}"
        ),
    )
    return table


def main() -> None:
    """Run E3 at the default configuration and print the report."""
    config = FailureVsTConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
