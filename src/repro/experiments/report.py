"""ASCII table rendering for experiment reports.

Every experiment prints its results as a plain monospaced table in the
style of the paper's Table 1: a title, a header row, and one row per
configuration, with numbers formatted compactly.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_value(value: object) -> str:
    """Render one cell: compact floats, plain ints, str pass-through."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-aligned numeric-looking columns."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(widths[index]) for index, cell in enumerate(cells)
        )

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
