"""T3 — sharded parallel ingestion scaling vs worker count.

Not a paper experiment (the paper predates multicore sketch deployments),
but the natural systems follow-up to §3.2: because the Count Sketch is a
linear map, a stream can be chunked, sketched shard-by-shard in worker
processes, and merged *exactly*.  This experiment measures the ingestion
engine on the T1 throughput workload and verifies, for every row, that
the merged sketch is bit-for-bit equal to the single-process sketch.

The baseline row (``item-loop``) is the single-process item-at-a-time
``CountSketch.update`` path — what the CLI used before the engine
existed, and what T1 records for CountSketch.  Engine rows gain from two
sources: per-shard pre-aggregation (exact by linearity) with batch
updates, and process parallelism where cores allow.  On a single-core
host the first source dominates; the speedup column is honest either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.countsketch import CountSketch
from repro.core.vectorized import VectorizedCountSketch
from repro.experiments.report import format_table
from repro.parallel import parallel_sketch
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class ParallelScalingConfig:
    """Workload parameters (matches T1's throughput workload)."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    depth: int = 5
    width: int = 256
    seed: int = 0
    stream_seed: int = 53
    chunk_size: int = 4_096
    worker_counts: tuple[int, ...] = (1, 2, 4)
    backends: tuple[str, ...] = ("dense", "vectorized")


@dataclass(frozen=True)
class ParallelScalingRow:
    """One (backend, worker count) measurement."""

    backend: str
    n_workers: int
    executor: str
    n_shards: int
    items_per_second: float
    speedup: float  # vs the single-process item-at-a-time baseline
    merge_seconds: float
    exact: bool  # merged sketch == single-process sketch, bit for bit


def run(
    config: ParallelScalingConfig = ParallelScalingConfig(),
) -> list[ParallelScalingRow]:
    """Measure engine throughput per backend and worker count."""
    stream = list(
        ZipfStreamGenerator(
            config.m, config.z, seed=config.stream_seed
        ).generate(config.n)
    )

    # Single-process item-at-a-time baseline (the pre-engine status quo).
    baseline = CountSketch(config.depth, config.width, seed=config.seed)
    update = baseline.update
    start = time.perf_counter()
    for item in stream:
        update(item)
    baseline_seconds = time.perf_counter() - start
    baseline_ips = len(stream) / baseline_seconds

    references = {
        "dense": baseline,
        "sparse": baseline,  # compared via to_dense()
    }
    vectorized_reference = VectorizedCountSketch(
        config.depth, config.width, seed=config.seed
    )
    vectorized_reference.extend(stream)
    references["vectorized"] = vectorized_reference

    rows = [
        ParallelScalingRow(
            backend="item-loop",
            n_workers=1,
            executor="serial",
            n_shards=1,
            items_per_second=baseline_ips,
            speedup=1.0,
            merge_seconds=0.0,
            exact=True,
        )
    ]
    for backend in config.backends:
        for n_workers in config.worker_counts:
            sketch, summary = parallel_sketch(
                stream,
                config.depth,
                config.width,
                seed=config.seed,
                backend=backend,
                n_workers=n_workers,
                chunk_size=config.chunk_size,
            )
            reference = references[backend]
            if backend == "sparse":
                exact = sketch.to_dense() == reference
            else:
                exact = sketch == reference
            exact = exact and sketch.total_weight == reference.total_weight
            rows.append(
                ParallelScalingRow(
                    backend=backend,
                    n_workers=n_workers,
                    executor=summary.executor,
                    n_shards=summary.n_shards,
                    items_per_second=summary.items_per_second,
                    speedup=summary.items_per_second / baseline_ips,
                    merge_seconds=summary.merge_seconds,
                    exact=exact,
                )
            )
    return rows


def format_report(
    rows: list[ParallelScalingRow], config: ParallelScalingConfig
) -> str:
    """Render the scaling table."""
    return format_table(
        ["backend", "workers", "executor", "shards", "items/sec",
         "speedup", "merge s", "exact"],
        [
            [row.backend, row.n_workers, row.executor, row.n_shards,
             row.items_per_second, row.speedup, row.merge_seconds,
             "yes" if row.exact else "NO"]
            for row in rows
        ],
        title=(
            f"T3 — sharded ingestion scaling; zipf(z={config.z}, "
            f"m={config.m}), n={config.n}, chunk={config.chunk_size}, "
            f"speedup vs single-process item loop"
        ),
    )


def main() -> None:
    """Run at the default configuration and print the report."""
    config = ParallelScalingConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
