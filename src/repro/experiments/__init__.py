"""The experiment harness: one module per paper artifact.

Every module exposes ``run(config) -> rows`` returning plain dataclass rows,
``format_report(rows) -> str`` rendering the paper-style table, and a
``main()`` entry point so each experiment is runnable directly::

    python -m repro.experiments.table1

The experiment ids (E1–E8, A1–A3, T1) and their mapping to the paper's
table/lemmas are indexed in DESIGN.md; measured-vs-paper results are
recorded in EXPERIMENTS.md.
"""

from repro.experiments.harness import (
    fit_power_law,
    geometric_grid,
    minimal_passing_value,
)
from repro.experiments.report import format_table

__all__ = [
    "fit_power_law",
    "format_table",
    "geometric_grid",
    "minimal_passing_value",
]
