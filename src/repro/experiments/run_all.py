"""Run every experiment at its default configuration and print all
reports — the one-command regeneration of the paper's evaluation.

``python -m repro.experiments.run_all`` (or ``repro experiment run_all``)
takes a few minutes; each section header names the experiment id from
DESIGN.md's index.  The benchmark suite does the same work under timing
(`pytest benchmarks/ --benchmark-only`) and persists the reports; this
driver is the interactive, dependency-free path.
"""

from __future__ import annotations

import importlib
import time

#: (experiment id, module name) in DESIGN.md index order.
EXPERIMENT_SEQUENCE: tuple[tuple[str, str], ...] = (
    ("E1", "table1"),
    ("E2", "error_vs_b"),
    ("E3", "failure_vs_t"),
    ("E4", "approxtop_quality"),
    ("E5", "zipf_space_scaling"),
    ("E6", "sampling_space"),
    ("E7", "maxchange_experiment"),
    ("E8", "space_accounting"),
    ("A1", "ablation_estimator"),
    ("A2", "ablation_sign_hash"),
    ("A3", "ablation_heap_counts"),
    ("A4", "ablation_hash_family"),
    ("X1", "hierarchical_maxchange"),
    ("X2", "autoconfig"),
    ("X3", "windowed_accuracy"),
    ("X4", "relative_change_floor"),
    ("T1", "throughput"),
    ("T3", "parallel_scaling"),
)


def main() -> None:
    """Run the full experiment sequence, printing every report."""
    started = time.perf_counter()
    for experiment_id, module_name in EXPERIMENT_SEQUENCE:
        module = importlib.import_module(
            f"repro.experiments.{module_name}"
        )
        banner = f"[{experiment_id}] {module_name}"
        print("\n" + "#" * len(banner))
        print(banner)
        print("#" * len(banner))
        step_start = time.perf_counter()
        module.main()
        print(f"({time.perf_counter() - step_start:.1f}s)")
    total = time.perf_counter() - started
    print(f"\nall {len(EXPERIMENT_SEQUENCE)} experiments completed "
          f"in {total:.0f}s")


if __name__ == "__main__":
    main()
