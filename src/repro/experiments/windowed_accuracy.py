"""X3 — extension: jumping-window accuracy vs bucket granularity.

The jumping-window sketch (:mod:`repro.core.windowed`) trades space for
window sharpness: with ``B`` sub-sketches the covered span wobbles in
``[W − W/B, W]`` and space grows ``B×``.  This experiment measures, for a
sweep of ``B``:

* **in-window accuracy** — mean relative error of estimates for items in
  the current window, against exact trailing-window counts;
* **forgetting** — the residual estimate of an item that stopped
  appearing more than ``W`` items ago (should be sketch noise, ≈ 0);
* **span wobble** — the observed min/max of ``covered()``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.windowed import JumpingWindowSketch
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class WindowedAccuracyConfig:
    """Workload parameters for the windowed-accuracy experiment."""

    m: int = 1_000
    z: float = 1.0
    window: int = 5_000
    total: int = 25_000
    buckets: tuple[int, ...] = (2, 4, 8, 16)
    depth: int = 5
    width: int = 256
    stream_seed: int = 73
    sketch_seed: int = 1
    query_ranks: int = 30
    retired_item: str = "retired-item"
    retired_count: int = 400


@dataclass(frozen=True)
class WindowedAccuracyRow:
    """Measurements at one bucket count."""

    buckets: int
    counters: int
    mean_relative_error: float
    retired_residual: float
    covered_min: int
    covered_max: int


def run(
    config: WindowedAccuracyConfig = WindowedAccuracyConfig(),
) -> list[WindowedAccuracyRow]:
    """Sweep the bucket count and measure window fidelity."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.total)
    # Plant an item that appears early and then retires: it must be
    # forgotten once the window slides past it.
    items = (
        [config.retired_item] * config.retired_count + list(stream)
    )

    rows = []
    for buckets in config.buckets:
        window = JumpingWindowSketch(
            config.window,
            buckets=buckets,
            depth=config.depth,
            width=config.width,
            seed=config.sketch_seed,
        )
        covered_min = None
        covered_max = 0
        for position, item in enumerate(items):
            window.update(item)
            if position >= config.window:
                covered = window.covered()
                covered_min = (
                    covered if covered_min is None
                    else min(covered_min, covered)
                )
                covered_max = max(covered_max, covered)

        # Exact trailing-window counts over the span the sketch covers.
        trailing = Counter(items[-window.covered():])
        queries = [item for item, __ in trailing.most_common(
            config.query_ranks)]
        errors = []
        for item in queries:
            true = trailing[item]
            errors.append(abs(window.estimate(item) - true) / true)
        rows.append(
            WindowedAccuracyRow(
                buckets=buckets,
                counters=window.counters_used(),
                mean_relative_error=sum(errors) / len(errors),
                retired_residual=abs(window.estimate(config.retired_item)),
                covered_min=covered_min or 0,
                covered_max=covered_max,
            )
        )
    return rows


def format_report(
    rows: list[WindowedAccuracyRow], config: WindowedAccuracyConfig
) -> str:
    """Render the bucket sweep."""
    return format_table(
        ["buckets B", "counters", "mean rel err (in-window)",
         "retired residual", "covered min", "covered max"],
        [
            [r.buckets, r.counters, r.mean_relative_error,
             r.retired_residual, r.covered_min, r.covered_max]
            for r in rows
        ],
        title=(
            f"X3 — jumping-window fidelity; W={config.window}, "
            f"stream={config.total + config.retired_count} items, "
            f"zipf(z={config.z}, m={config.m})"
        ),
    )


def main() -> None:
    """Run X3 at the default configuration and print the report."""
    config = WindowedAccuracyConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
