"""A2 — ablation: what the ±1 sign hashes buy (Count Sketch vs Count-Min).

Removing the sign hashes and replacing the median with a minimum yields the
Count-Min sketch: every collision then *adds* to the estimate, so errors
are one-sided (pure overcounting) and scale with the tail L1 norm, whereas
the signed sketch's collisions cancel in expectation, giving unbiased
estimates whose error scales with the tail L2 norm (Eq. 5).  At equal
dimensions this ablation measures exactly that: signed-error bias (≈ 0 for
Count Sketch, strictly positive for Count-Min) and error magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.baselines.countmin import CountMinSketch
from repro.core.countsketch import CountSketch
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class SignAblationConfig:
    """Workload parameters for the sign-hash ablation."""

    m: int = 10_000
    n: int = 100_000
    z: float = 1.0
    depth: int = 5
    width: int = 256
    stream_seed: int = 43
    sketch_seeds: tuple[int, ...] = tuple(range(5))
    query_ranks: int = 500


@dataclass(frozen=True)
class SignAblationRow:
    """Error statistics for one sketch type."""

    sketch: str
    bias: float  # mean signed error
    mean_abs_error: float
    max_abs_error: float


def run(config: SignAblationConfig = SignAblationConfig()) -> list[SignAblationRow]:
    """Compare Count Sketch and Count-Min at identical dimensions."""
    stream = ZipfStreamGenerator(
        config.m, config.z, seed=config.stream_seed
    ).generate(config.n)
    counts = stream.counts()
    stats = StreamStatistics(counts=counts)
    queries = [item for item, __ in stats.top_k(config.query_ranks)]

    cs_errors: list[float] = []
    cm_errors: list[float] = []
    for seed in config.sketch_seeds:
        count_sketch = CountSketch(config.depth, config.width, seed=seed)
        count_sketch.update_counts(counts)
        count_min = CountMinSketch(config.depth, config.width, seed=seed)
        for item, count in counts.items():
            count_min.update(item, count)
        for item in queries:
            true = counts[item]
            cs_errors.append(count_sketch.estimate(item) - true)
            cm_errors.append(count_min.estimate(item) - true)

    def summarize(label: str, errors: list[float]) -> SignAblationRow:
        arr = np.asarray(errors)
        return SignAblationRow(
            sketch=label,
            bias=float(arr.mean()),
            mean_abs_error=float(np.abs(arr).mean()),
            max_abs_error=float(np.abs(arr).max()),
        )

    return [
        summarize("CountSketch (signs+median)", cs_errors),
        summarize("CountMin (no signs, min)", cm_errors),
    ]


def format_report(rows: list[SignAblationRow], config: SignAblationConfig) -> str:
    """Render the sketch comparison."""
    return format_table(
        ["sketch", "bias (mean signed err)", "mean |err|", "max |err|"],
        [[r.sketch, r.bias, r.mean_abs_error, r.max_abs_error] for r in rows],
        title=(
            f"A2 — sign-hash ablation at t={config.depth}, b={config.width}; "
            f"zipf(z={config.z}, m={config.m}), n={config.n}"
        ),
    )


def main() -> None:
    """Run A2 at the default configuration and print the report."""
    config = SignAblationConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
