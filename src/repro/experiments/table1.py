"""E1 — the empirical Table 1: space to solve CANDIDATETOP(S, k, O(k)).

The paper's Table 1 compares the asymptotic space of SAMPLING, KPS, and
COUNT SKETCH across Zipf regimes.  This experiment measures the same
quantities on synthetic Zipf streams:

* **SAMPLING** — run at the §4.1 inclusion probability
  ``p = log(k/δ)/n_k``; its space is the number of distinct sampled items
  (what §4.1 counts), and its candidate list is the *entire sample* — the
  paper notes this solves only CANDIDATETOP(S, k, x) with ``x`` = distinct
  sampled, "an advantage over ours" in the comparison.
* **KPS** — run with ``c = ⌈n/n_k⌉`` counters (the §4.1 setting
  ``θ = n_k/n``); its space is ``c`` and its candidate list all ``c``
  tracked items.
* **COUNT SKETCH** — the smallest sketch width ``b`` (over a geometric
  grid) at which :class:`~repro.core.candidate_top.CandidateTopTracker`
  with ``l = 2k`` candidates captures the true top ``k``; its space is
  ``t·b + l`` counters and its candidate list has length ``2k``.

Alongside each measurement the Table 1 *order* formulas are evaluated so
the per-column scaling shapes can be compared (constants are not
comparable; the within-column trend across ``z`` is the reproduction
target — see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import math
from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import candidatetop_ok
from repro.analysis.zipf_math import (
    count_sketch_space_order,
    kps_space_order,
    sampling_distinct_order,
)
from repro.baselines.kps import KPSFrequent, counters_for_candidate_top
from repro.baselines.sampling import SamplingSummary
from repro.core.candidate_top import CandidateTopTracker
from repro.experiments.harness import geometric_grid, minimal_passing_value
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class Table1Config:
    """Workload parameters for the empirical Table 1."""

    m: int = 10_000
    n: int = 100_000
    k: int = 10
    depth: int = 5
    zs: tuple[float, ...] = (0.3, 0.5, 0.75, 1.0, 1.5)
    stream_seed: int = 11
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    delta: float = 0.05
    max_width: int = 1 << 17


@dataclass(frozen=True)
class Table1Row:
    """Measured and theoretical space for one Zipf parameter."""

    z: float
    sampling_space: int
    sampling_candidates: int
    kps_space: int
    count_sketch_width: int | None
    count_sketch_space: int | None
    sampling_order: float
    kps_order: float
    count_sketch_order: float
    sampling_ok: bool
    kps_ok: bool


def _measure_sampling(
    stream: Sequence[Hashable], stats: StreamStatistics, config: Table1Config
) -> tuple[int, int, bool]:
    """(distinct sampled items, candidate-list length, top-k captured)."""
    nk = stats.nk(config.k)
    summary = SamplingSummary.for_candidate_top(
        nk, config.k, config.delta, seed=config.stream_seed
    )
    for item in stream:
        summary.update(item)
    sampled = {item for item, __ in summary.top(summary.counters_used())}
    ok = candidatetop_ok(sampled, stats, config.k)
    return summary.counters_used(), len(sampled), ok


def _measure_kps(
    stream: Sequence[Hashable], stats: StreamStatistics, config: Table1Config
) -> tuple[int, bool]:
    """(counter budget c, top-k captured)."""
    capacity = counters_for_candidate_top(stats.n, stats.nk(config.k))
    summary = KPSFrequent(capacity)
    for item in stream:
        summary.update(item)
    ok = candidatetop_ok(summary.candidates(), stats, config.k)
    return capacity, ok


def _measure_count_sketch(
    stream: Sequence[Hashable], stats: StreamStatistics, config: Table1Config
) -> int | None:
    """Minimal sketch width capturing the top k in a 2k-candidate list."""
    l = 2 * config.k

    def succeeds(width: int, seed: int) -> bool:
        tracker = CandidateTopTracker(
            config.k, l=l, depth=config.depth, width=width, seed=seed
        )
        for item in stream:
            tracker.update(item)
        candidates = [item for item, __ in tracker.candidates()]
        return candidatetop_ok(candidates, stats, config.k)

    grid = geometric_grid(2 * config.k, config.max_width, factor=2.0)
    return minimal_passing_value(
        succeeds, grid, seeds=config.sketch_seeds, success_rate=0.67
    )


def run(config: Table1Config = Table1Config()) -> list[Table1Row]:
    """Measure every Table 1 cell; one row per Zipf parameter."""
    rows = []
    for z in config.zs:
        generator = ZipfStreamGenerator(config.m, z, seed=config.stream_seed)
        stream = generator.generate(config.n)
        stats = StreamStatistics(counts=stream.counts())

        sampling_space, sampling_candidates, sampling_ok = _measure_sampling(
            stream, stats, config
        )
        kps_space, kps_ok = _measure_kps(stream, stats, config)
        width = _measure_count_sketch(stream, stats, config)
        cs_space = (
            config.depth * width + 2 * config.k if width is not None else None
        )

        rows.append(
            Table1Row(
                z=z,
                sampling_space=sampling_space,
                sampling_candidates=sampling_candidates,
                kps_space=kps_space,
                count_sketch_width=width,
                count_sketch_space=cs_space,
                sampling_order=sampling_distinct_order(
                    config.m, config.k, z, config.delta
                ),
                kps_order=kps_space_order(config.m, config.k, z),
                count_sketch_order=count_sketch_space_order(
                    config.m, config.k, z, config.n
                ),
                sampling_ok=sampling_ok,
                kps_ok=kps_ok,
            )
        )
    return rows


def shape_ratios(rows: list[Table1Row]) -> list[tuple[float, float, float, float]]:
    """Per-column measured/theory ratios, normalized to the first row.

    If the paper's orders capture the scaling shape, each column's ratio
    stays within a small constant band across ``z`` — the quantitative
    check EXPERIMENTS.md records.
    """
    def normalized(
        pairs: list[tuple[float | None, float]],
    ) -> list[float]:
        base = None
        out = []
        for measured, order in pairs:
            if measured is None:
                out.append(math.nan)
                continue
            ratio = measured / order
            if base is None:
                base = ratio
            out.append(ratio / base)
        return out

    sampling = normalized((r.sampling_space, r.sampling_order) for r in rows)
    kps = normalized((r.kps_space, r.kps_order) for r in rows)
    sketch = normalized(
        (r.count_sketch_space, r.count_sketch_order) for r in rows
    )
    return [
        (row.z, sampling[i], kps[i], sketch[i]) for i, row in enumerate(rows)
    ]


def format_report(rows: list[Table1Row], config: Table1Config) -> str:
    """Render the measured Table 1 plus the shape-ratio table."""
    main = format_table(
        [
            "z",
            "SAMPLING ctrs",
            "SAMPLING |list|",
            "KPS ctrs",
            "CS width b",
            "CS ctrs (tb+l)",
            "SAMPLING ord",
            "KPS ord",
            "CS ord",
        ],
        [
            [
                r.z,
                r.sampling_space,
                r.sampling_candidates,
                r.kps_space,
                r.count_sketch_width if r.count_sketch_width is not None else "-",
                r.count_sketch_space if r.count_sketch_space is not None else "-",
                r.sampling_order,
                r.kps_order,
                r.count_sketch_order,
            ]
            for r in rows
        ],
        title=(
            f"E1 / Table 1 — space for CANDIDATETOP(S, k={config.k}, O(k)); "
            f"m={config.m}, n={config.n}"
        ),
    )
    ratios = format_table(
        ["z", "SAMPLING meas/ord", "KPS meas/ord", "CS meas/ord"],
        [list(row) for row in shape_ratios(rows)],
        title="Shape check (ratios normalized to first row; flat ≈ shape holds)",
    )
    return main + "\n\n" + ratios


def main() -> None:
    """Run E1 at the default configuration and print the report."""
    config = Table1Config()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
