"""E7 — max-change recovery (§4.2).

Build a pair of Zipf streams with planted drift (risers boosted, fallers
cut — see :mod:`repro.streams.drift`), run the two-pass max-change
algorithm across a sweep of sketch widths, and score:

* **recall** of the true top-``k`` absolute changes, and
* **change-estimate error** — ``|n̂_Δ − Δ|`` over the true top changes.

A *per-stream top list* baseline — two SpaceSaving summaries whose union
of heavy items is differenced — is scored on the same task.  Because any
item with a large absolute change is necessarily heavy in at least one
stream, a generously-sized per-stream baseline can match the sketch on
recall; the paper's structural advantage shows up in the change
*estimates*: the difference sketch's error scales with the L2 norm of the
(small) difference vector, while the baseline differences two one-sided
per-stream estimates whose errors scale with the (large) stream norms.
"""

from __future__ import annotations

from collections.abc import Hashable

from dataclasses import dataclass

from repro.analysis.metrics import recall_at_k
from repro.baselines.space_saving import SpaceSaving
from repro.core.maxchange import MaxChangeFinder
from repro.experiments.report import format_table
from repro.streams.drift import DriftPair, make_drift_pair


@dataclass(frozen=True)
class MaxChangeConfig:
    """Workload parameters for the max-change experiment."""

    m: int = 5_000
    n: int = 50_000
    z: float = 1.0
    k: int = 10
    l: int = 40
    depth: int = 5
    widths: tuple[int, ...] = (64, 256, 1024)
    boost: float = 8.0
    num_risers: int = 5
    num_fallers: int = 5
    pair_seed: int = 31
    sketch_seeds: tuple[int, ...] = (0, 1, 2)
    baseline_capacity: int = 100


@dataclass(frozen=True)
class MaxChangeRow:
    """Scores at one sketch width (averaged over sketch seeds)."""

    width: int
    counters: int
    recall: float
    planted_recall: float
    mean_change_error: float


@dataclass(frozen=True)
class MaxChangeResult:
    """Sketch sweep rows plus the per-stream-top-list baseline scores."""

    rows: list[MaxChangeRow]
    baseline_recall: float
    baseline_counters: int
    baseline_change_error: float


def _run_finder(
    pair: DriftPair, width: int, seed: int, config: MaxChangeConfig
) -> MaxChangeFinder:
    finder = MaxChangeFinder(
        config.l, depth=config.depth, width=width, seed=seed
    )
    finder.first_pass(pair.before, pair.after)
    finder.second_pass(pair.before, pair.after)
    return finder


def _change_error(
    estimates: dict[Hashable, float],
    truth: dict[Hashable, int],
    top_items: set[Hashable],
) -> float:
    """Mean |estimated change − true change| over the true top changes.

    Items the method failed to estimate at all count with their full
    change magnitude (the worst possible estimate, zero)."""
    errors = []
    for item in top_items:
        true_change = truth[item]
        estimated = estimates.get(item, 0.0)
        errors.append(abs(estimated - true_change))
    return sum(errors) / len(errors)


def _baseline(
    pair: DriftPair, config: MaxChangeConfig
) -> dict[Hashable, float]:
    """Difference of two per-stream SpaceSaving summaries."""
    before = SpaceSaving(config.baseline_capacity)
    after = SpaceSaving(config.baseline_capacity)
    for item in pair.before:
        before.update(item)
    for item in pair.after:
        after.update(item)
    candidates = {item for item, __ in before.top(config.baseline_capacity)}
    candidates |= {item for item, __ in after.top(config.baseline_capacity)}
    changes = {
        item: after.estimate(item) - before.estimate(item)
        for item in candidates
    }
    ranked = sorted(changes.items(), key=lambda p: abs(p[1]), reverse=True)
    counters = before.counters_used() + after.counters_used()
    reported = {item for item, __ in ranked[: config.k]}
    return reported, changes, counters


def run(config: MaxChangeConfig = MaxChangeConfig()) -> MaxChangeResult:
    """Sweep sketch widths and score recall + change-estimate error."""
    pair = make_drift_pair(
        config.m,
        config.n,
        z=config.z,
        num_risers=config.num_risers,
        num_fallers=config.num_fallers,
        boost=config.boost,
        seed=config.pair_seed,
    )
    truth = pair.true_changes()
    top_items = {item for item, __ in pair.top_changes(config.k)}
    planted = set(pair.risers) | set(pair.fallers)

    rows = []
    for width in config.widths:
        recalls = []
        planted_recalls = []
        change_errors = []
        for seed in config.sketch_seeds:
            finder = _run_finder(pair, width, seed, config)
            reports = finder.report(config.k)
            reported_items = [r.item for r in reports]
            recalls.append(recall_at_k(reported_items, top_items))
            planted_recalls.append(recall_at_k(reported_items, planted))
            estimates = {
                item: finder.sketch.estimate(item) for item in top_items
            }
            change_errors.append(_change_error(estimates, truth, top_items))
        count = len(config.sketch_seeds)
        rows.append(
            MaxChangeRow(
                width=width,
                counters=config.depth * width + 2 * config.l,
                recall=sum(recalls) / count,
                planted_recall=sum(planted_recalls) / count,
                mean_change_error=sum(change_errors) / count,
            )
        )

    baseline_items, baseline_changes, baseline_counters = _baseline(
        pair, config
    )
    return MaxChangeResult(
        rows=rows,
        baseline_recall=recall_at_k(baseline_items, top_items),
        baseline_counters=baseline_counters,
        baseline_change_error=_change_error(
            baseline_changes, truth, top_items
        ),
    )


def format_report(result: MaxChangeResult, config: MaxChangeConfig) -> str:
    """Render the sweep plus the baseline line."""
    table = format_table(
        ["width b", "counters", "recall@k", "planted recall",
         "mean |est dV - dV|"],
        [
            [r.width, r.counters, r.recall, r.planted_recall,
             r.mean_change_error]
            for r in result.rows
        ],
        title=(
            f"E7 / §4.2 — max-change recovery; m={config.m}, n={config.n}, "
            f"k={config.k}, l={config.l}, boost={config.boost}"
        ),
    )
    baseline = (
        f"baseline (two SpaceSaving top lists, {result.baseline_counters} "
        f"counters): recall@k = {result.baseline_recall:.3f}, "
        f"mean |est dV - dV| = {result.baseline_change_error:.1f}"
    )
    return f"{table}\n{baseline}"


def main() -> None:
    """Run E7 at the default configuration and print the report."""
    config = MaxChangeConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
