"""X2 — extension: automatic configuration from a stream prefix.

§3.1's caveat — "one needs to know some properties of the distribution
beforehand" — is resolved operationally by
:func:`repro.analysis.fit.recommend_parameters`: observe a prefix, fit
``n_k`` and the tail second moment, extrapolate to the full length, and
apply Lemma 5/Lemma 3.  This experiment checks that trackers dimensioned
*blind* (from a 10% prefix) still meet the APPROXTOP guarantees on the
full stream, and how far the recommended width lands from the oracle
width computed with full-stream ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.fit import fit_zipf_parameter, recommend_parameters
from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import approxtop_strong_ok, approxtop_weak_ok
from repro.core.params import width_for_approxtop
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class AutoConfigConfig:
    """Workload parameters for the auto-configuration experiment."""

    m: int = 5_000
    n: int = 50_000
    k: int = 20
    epsilon: float = 0.5
    zs: tuple[float, ...] = (0.8, 1.1)
    sample_fraction: float = 0.1
    delta: float = 0.05
    depth_constant: float = 0.5
    stream_seed: int = 67
    sketch_seeds: tuple[int, ...] = (0, 1, 2)


@dataclass(frozen=True)
class AutoConfigRow:
    """Outcome for one Zipf parameter."""

    z: float
    fitted_z: float
    recommended_width: int
    oracle_width: int
    width_ratio: float
    weak_rate: float
    strong_rate: float


def run(config: AutoConfigConfig = AutoConfigConfig()) -> list[AutoConfigRow]:
    """Recommend parameters from a prefix, then verify on the full stream."""
    rows = []
    for z in config.zs:
        stream = ZipfStreamGenerator(
            config.m, z, seed=config.stream_seed
        ).generate(config.n)
        sample_length = int(config.sample_fraction * config.n)
        sample = list(stream)[:sample_length]

        params = recommend_parameters(
            sample,
            config.k,
            config.epsilon,
            full_length=config.n,
            delta=config.delta,
            depth_constant=config.depth_constant,
        )
        stats = StreamStatistics(counts=stream.counts())
        oracle_width = width_for_approxtop(
            config.k,
            config.epsilon,
            stats.nk(config.k),
            stats.tail_second_moment(config.k),
        )
        fitted_z = fit_zipf_parameter(Counter(sample))

        weak = strong = 0
        for seed in config.sketch_seeds:
            tracker = TopKTracker(
                config.k, depth=params.depth, width=params.width, seed=seed
            )
            for item in stream:
                tracker.update(item)
            reported = [item for item, __ in tracker.top()]
            weak += approxtop_weak_ok(reported, stats, config.k,
                                      config.epsilon)
            strong += approxtop_strong_ok(reported, stats, config.k,
                                          config.epsilon)
        trials = len(config.sketch_seeds)
        rows.append(
            AutoConfigRow(
                z=z,
                fitted_z=fitted_z,
                recommended_width=params.width,
                oracle_width=oracle_width,
                width_ratio=params.width / oracle_width,
                weak_rate=weak / trials,
                strong_rate=strong / trials,
            )
        )
    return rows


def format_report(rows: list[AutoConfigRow], config: AutoConfigConfig) -> str:
    """Render the auto-configuration table."""
    return format_table(
        ["z", "fitted z", "recommended b", "oracle b", "b ratio",
         "weak ok", "strong ok"],
        [
            [r.z, r.fitted_z, r.recommended_width, r.oracle_width,
             r.width_ratio, r.weak_rate, r.strong_rate]
            for r in rows
        ],
        title=(
            f"X2 — auto-configuration from a "
            f"{config.sample_fraction:.0%} prefix; m={config.m}, "
            f"n={config.n}, k={config.k}, eps={config.epsilon}"
        ),
    )


def main() -> None:
    """Run X2 at the default configuration and print the report."""
    config = AutoConfigConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
