"""E6 — the §4.1 SAMPLING space analysis.

§4.1 computes the expected number of distinct items in the SAMPLING
algorithm's sample (its space measure) under Zipfian streams, both exactly
(``Σ_q 1 − e^{−n_q·log(k/δ)/n_k}``) and as per-regime asymptotic orders
(the SAMPLING column of Table 1).  This experiment runs the sampler at the
prescribed rate and compares the measured distinct count against the exact
finite-``m`` prediction (ratio ≈ 1) and against the order formula (ratio
roughly constant across ``z``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.zipf_math import (
    sampling_distinct_order,
    sampling_expected_distinct,
)
from repro.baselines.sampling import SamplingSummary
from repro.experiments.report import format_table
from repro.streams.zipf import ZipfStreamGenerator


@dataclass(frozen=True)
class SamplingSpaceConfig:
    """Workload parameters for the sampling-space experiment."""

    m: int = 10_000
    n: int = 100_000
    k: int = 10
    zs: tuple[float, ...] = (0.3, 0.5, 0.75, 1.0, 1.5)
    delta: float = 0.05
    stream_seed: int = 29
    sampler_seeds: tuple[int, ...] = (0, 1, 2)


@dataclass(frozen=True)
class SamplingSpaceRow:
    """Measured vs predicted distinct sampled items at one ``z``."""

    z: float
    measured_distinct: float
    predicted_exact: float
    predicted_order: float
    measured_over_exact: float


def run(
    config: SamplingSpaceConfig = SamplingSpaceConfig(),
) -> list[SamplingSpaceRow]:
    """Measure distinct sampled items per ``z`` and compare to §4.1."""
    rows = []
    for z in config.zs:
        stream = ZipfStreamGenerator(
            config.m, z, seed=config.stream_seed
        ).generate(config.n)
        stats = StreamStatistics(counts=stream.counts())
        nk = stats.nk(config.k)
        distinct_counts = []
        for seed in config.sampler_seeds:
            summary = SamplingSummary.for_candidate_top(
                nk, config.k, config.delta, seed=seed
            )
            for item in stream:
                summary.update(item)
            distinct_counts.append(summary.counters_used())
        measured = sum(distinct_counts) / len(distinct_counts)
        exact = sampling_expected_distinct(
            config.m, config.k, z, config.n, config.delta
        )
        rows.append(
            SamplingSpaceRow(
                z=z,
                measured_distinct=measured,
                predicted_exact=exact,
                predicted_order=sampling_distinct_order(
                    config.m, config.k, z, config.delta
                ),
                measured_over_exact=measured / exact if exact else float("nan"),
            )
        )
    return rows


def format_report(
    rows: list[SamplingSpaceRow], config: SamplingSpaceConfig
) -> str:
    """Render the comparison table."""
    return format_table(
        ["z", "measured distinct", "exact prediction", "order formula",
         "measured/exact"],
        [
            [r.z, r.measured_distinct, r.predicted_exact, r.predicted_order,
             r.measured_over_exact]
            for r in rows
        ],
        title=(
            f"E6 / §4.1 — SAMPLING distinct items; m={config.m}, "
            f"n={config.n}, k={config.k}, delta={config.delta}"
        ),
    )


def main() -> None:
    """Run E6 at the default configuration and print the report."""
    config = SamplingSpaceConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
