"""X4 — extension: the smoothing floor of the max-percent-change finder.

The §5 open problem asks for objectives that "somehow balance absolute
and relative changes"; the :class:`~repro.core.relative_change.
RelativeChangeFinder` balances them with one knob, the smoothing floor.
This experiment sweeps the floor on a workload containing

* a **sleeper hit** (a meaningful item growing 20×, the intended catch),
* **flicker noise** (many items going 0→small, huge ratios, no substance),
* a **large absolute mover** (already-heavy item growing 1.5×),

and reports which of the three each floor setting ranks first — making
the knob's behaviour concrete: low floors chase flickers, very high
floors degrade to absolute change, the middle band finds the sleeper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relative_change import RelativeChangeFinder
from repro.experiments.report import format_table


@dataclass(frozen=True)
class FloorSweepConfig:
    """Workload parameters for the floor sweep."""

    floors: tuple[float, ...] = (1.0, 16.0, 256.0, 16_384.0)
    l: int = 30
    depth: int = 5
    width: int = 1024
    seed: int = 79
    noise_items: int = 60
    sleeper_before: int = 40
    sleeper_after: int = 800
    heavy_before: int = 8_000
    heavy_after: int = 12_000
    background_items: int = 400
    background_count: int = 50


@dataclass(frozen=True)
class FloorSweepRow:
    """Outcome at one floor value."""

    floor: float
    top_item_kind: str  # 'sleeper' | 'flicker' | 'heavy' | 'background'
    sleeper_rank: int | None  # 1-based rank in the report, None if absent


def _build_streams(
    config: FloorSweepConfig,
) -> tuple[list[str], list[str]]:
    rng = np.random.default_rng(config.seed)
    before: list[str] = []
    after: list[str] = []
    # Stable background mass.
    for index in range(config.background_items):
        item = f"bg-{index}"
        before.extend([item] * config.background_count)
        after.extend([item] * config.background_count)
    # The sleeper hit.
    before.extend(["sleeper"] * config.sleeper_before)
    after.extend(["sleeper"] * config.sleeper_after)
    # The large absolute mover.
    before.extend(["heavy"] * config.heavy_before)
    after.extend(["heavy"] * config.heavy_after)
    # Flicker noise: absent before, a burst of occurrences after — huge
    # *ratios* (up to 40x a floor of 1) with no substance.
    for index in range(config.noise_items):
        after.extend([f"flicker-{index}"] * int(rng.integers(10, 41)))
    return before, after


def _kind(item: str) -> str:
    if item == "sleeper":
        return "sleeper"
    if item == "heavy":
        return "heavy"
    if isinstance(item, str) and item.startswith("flicker"):
        return "flicker"
    return "background"


def run(config: FloorSweepConfig = FloorSweepConfig()) -> list[FloorSweepRow]:
    """Sweep the floor and classify each setting's top-ranked item."""
    before, after = _build_streams(config)
    rows = []
    for floor in config.floors:
        finder = RelativeChangeFinder(
            config.l, floor=floor, depth=config.depth, width=config.width,
            seed=config.seed,
        )
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        reports = finder.report(config.l, min_after=1)
        sleeper_rank = None
        for rank, report in enumerate(reports, start=1):
            if report.item == "sleeper":
                sleeper_rank = rank
                break
        top_kind = _kind(reports[0].item) if reports else "background"
        rows.append(
            FloorSweepRow(
                floor=floor,
                top_item_kind=top_kind,
                sleeper_rank=sleeper_rank,
            )
        )
    return rows


def format_report(rows: list[FloorSweepRow], config: FloorSweepConfig) -> str:
    """Render the floor sweep."""
    return format_table(
        ["floor", "top-ranked item kind", "sleeper rank"],
        [
            [r.floor, r.top_item_kind,
             r.sleeper_rank if r.sleeper_rank is not None else "-"]
            for r in rows
        ],
        title=(
            "X4 — max-percent-change floor sweep (sleeper vs flicker vs "
            "absolute mover)"
        ),
    )


def main() -> None:
    """Run X4 at the default configuration and print the report."""
    config = FloorSweepConfig()
    print(format_report(run(config), config))


if __name__ == "__main__":
    main()
