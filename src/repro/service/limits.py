"""Multi-tenant hardening primitives for the sketch service.

Three building blocks, all **off by default** and enabled only through
an explicit :class:`ServiceLimits`:

* :class:`TokenBucket` — the per-table ingest/query quota: a classic
  token bucket with continuous refill.  ``try_take`` is synchronous and
  atomic (the event loop never suspends inside it), so a refusal can
  never interleave with a grant — the refusal pattern for a given
  arrival schedule is deterministic, which the property tests pin down
  with an injected clock.
* :class:`WeightedFairScheduler` — weighted round-robin turn scheduling
  across table appliers.  Each applier acquires a *turn* before
  applying and receives a record budget of ``quantum x weight``; the
  budget caps how many queued batches the applier may coalesce into one
  synchronous apply call, so a hot tenant's deep queue can no longer
  monopolize the loop with one giant apply while cold tenants' ready
  batches wait.  Turns are granted in arrival order (FIFO across
  tables), so every tenant with pending work is served once per cycle.
* :class:`ServiceLimits` — the frozen, JSON-serializable bundle of every
  knob (connection cap, quota rates/bursts, fairness quantum, per-table
  weights).  A durable server pins it in ``service.json`` next to the
  table specs, so a resumed server keeps its limits unless the operator
  explicitly passes new ones (operational tuning is overridable; sketch
  parameters are not).

:class:`TableQuotaExceededError` is part of the wire-error vocabulary:
the fault barrier maps it to the ``quota_exceeded`` protocol code and
clients surface it as ``QuotaExceededError`` — an explicit, retryable
refusal, never a silent drop.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from collections.abc import Callable

__all__ = [
    "ServiceLimits",
    "TableQuotaExceededError",
    "TokenBucket",
    "WeightedFairScheduler",
]


class TableQuotaExceededError(Exception):
    """A per-table quota refused the request; nothing was enqueued.

    ``retry_after`` is the seconds until the bucket could grant the
    request, or ``None`` when it never can (the request exceeds the
    burst capacity outright and must be split).
    """

    def __init__(
        self,
        name: str,
        op_kind: str,
        needed: int,
        retry_after: float | None,
    ) -> None:
        if retry_after is None:
            hint = "split the batch below the burst capacity"
        else:
            hint = f"retry in {retry_after:.3f}s"
        super().__init__(
            f"table {name!r} {op_kind} quota exhausted "
            f"({needed} token(s) requested); {hint}"
        )
        self.name = name
        self.op_kind = op_kind
        self.needed = needed
        self.retry_after = retry_after


class TokenBucket:
    """A continuously-refilled token bucket (``rate`` tokens/second,
    capacity ``burst``).

    The bucket starts full.  All arithmetic happens inside
    :meth:`try_take` against an injectable monotonic clock, so replaying
    the same ``(elapsed, take)`` schedule yields the same grant/refusal
    pattern — quota decisions are a pure function of the arrival
    schedule, never of scheduler jitter.
    """

    __slots__ = ("_burst", "_clock", "_rate", "_stamp", "_tokens")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if not rate > 0:
            raise ValueError("rate must be positive")
        if not burst >= 1:
            raise ValueError("burst must be at least 1")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self._burst
        self._stamp = self._clock()

    @property
    def rate(self) -> float:
        """Refill rate in tokens per second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity (maximum grant size)."""
        return self._burst

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled to the current clock)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0:
            self._tokens = min(self._burst,
                               self._tokens + elapsed * self._rate)

    def try_take(self, n: int = 1) -> bool:
        """Take ``n`` tokens atomically; ``False`` leaves the bucket
        untouched (all-or-nothing, like the ingest queue itself)."""
        if n < 0:
            raise ValueError("cannot take a negative token count")
        self._refill()
        if n <= self._tokens:
            self._tokens -= n
            return True
        return False

    def retry_after(self, n: int = 1) -> float | None:
        """Seconds until ``n`` tokens could be granted; ``None`` when
        ``n`` exceeds the burst capacity (it never can be)."""
        if n > self._burst:
            return None
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate


class WeightedFairScheduler:
    """Weighted round-robin turns across table appliers.

    Appliers call :meth:`acquire` before each apply cycle and
    :meth:`release` after it.  Turns are granted FIFO across tables
    with pending work; the returned budget (``quantum x weight``
    records) caps how much the holder may coalesce into its one
    synchronous apply call.  A single batch larger than the budget
    still applies whole — batches are the atomic acknowledgement unit —
    so the budget bounds *additional* coalescing, which is where the
    monopoly came from.

    Purely loop-local: no locks are needed because every mutation runs
    between awaits on the one event loop; the only await is a waiter
    future granted by the previous turn-holder's ``release``.
    """

    def __init__(self, quantum: int) -> None:
        if quantum < 1:
            raise ValueError("quantum must be at least 1")
        self._quantum = quantum
        self._weights: dict[str, int] = {}
        self._turns: list[str] = []
        self._wakers: dict[str, asyncio.Future[None]] = {}

    @property
    def quantum(self) -> int:
        """Base record budget per turn (scaled by the table weight)."""
        return self._quantum

    def register(self, name: str, weight: int = 1) -> None:
        """Declare a table's weight (default 1)."""
        if weight < 1:
            raise ValueError("weight must be at least 1")
        self._weights[name] = weight

    def forget(self, name: str) -> None:
        """Remove a dropped table from the rotation."""
        self._weights.pop(name, None)
        self._discard(name)

    def budget(self, name: str) -> int:
        """The record budget one turn grants ``name``."""
        return self._quantum * self._weights.get(name, 1)

    async def acquire(self, name: str) -> int:
        """Wait for ``name``'s turn; returns its record budget."""
        if name not in self._turns:
            self._turns.append(name)
        try:
            while self._turns[0] != name:
                waker: asyncio.Future[None] = (
                    asyncio.get_running_loop().create_future())
                self._wakers[name] = waker
                try:
                    await waker
                finally:
                    self._wakers.pop(name, None)
        except asyncio.CancelledError:
            self._discard(name)
            raise
        return self.budget(name)

    def release(self, name: str) -> None:
        """End ``name``'s turn and wake the next table in line."""
        self._discard(name)

    def _discard(self, name: str) -> None:
        if name not in self._turns:
            return
        was_head = self._turns[0] == name
        self._turns.remove(name)
        if was_head and self._turns:
            waker = self._wakers.get(self._turns[0])
            if waker is not None and not waker.done():
                waker.set_result(None)


#: ServiceLimits fields, in canonical serialization order.
_LIMIT_FIELDS = (
    "max_connections",
    "ingest_rate",
    "ingest_burst",
    "query_rate",
    "query_burst",
    "fair_quantum",
    "weights",
)


@dataclass(frozen=True)
class ServiceLimits:
    """Every hardening knob, bundled and spec-pinnable.

    All fields default to "off"; a default-constructed instance is
    inert (``enabled`` is False) and a server built with it behaves
    exactly like one built with no limits at all.

    Args:
        max_connections: open-connection cap; excess connections get
            one ``overloaded`` error frame and are closed.
        ingest_rate: per-table ingest quota in records/second.
        ingest_burst: ingest bucket capacity in records (default: one
            second's worth of ``ingest_rate``, at least 1).
        query_rate: per-table query quota in queries/second
            (``estimate`` / ``estimate_rows`` / ``topk``).
        query_burst: query bucket capacity (default: one second's worth
            of ``query_rate``, at least 1).
        fair_quantum: base record budget per weighted-fair applier turn;
            ``None`` leaves the applier draining exactly as before.
        weights: per-table fairness weights as sorted ``(name, weight)``
            pairs; unlisted tables weigh 1.
    """

    max_connections: int | None = None
    ingest_rate: float | None = None
    ingest_burst: int | None = None
    query_rate: float | None = None
    query_burst: int | None = None
    fair_quantum: int | None = None
    weights: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        for label in ("ingest_rate", "query_rate"):
            rate = getattr(self, label)
            if rate is not None and not float(rate) > 0:
                raise ValueError(f"{label} must be positive")
        for label, rate_label in (
            ("ingest_burst", "ingest_rate"),
            ("query_burst", "query_rate"),
        ):
            burst = getattr(self, label)
            if burst is None:
                continue
            if burst < 1:
                raise ValueError(f"{label} must be at least 1")
            if getattr(self, rate_label) is None:
                raise ValueError(f"{label} requires {rate_label}")
        if self.fair_quantum is not None and self.fair_quantum < 1:
            raise ValueError("fair_quantum must be at least 1")
        seen: set[str] = set()
        for entry in self.weights:
            if (
                not isinstance(entry, tuple) or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], int)
                or isinstance(entry[1], bool)
            ):
                raise ValueError(
                    "weights must be (table_name, integer_weight) pairs")
            name, weight = entry
            if not name:
                raise ValueError("weight table names must be non-empty")
            if weight < 1:
                raise ValueError(f"weight for table {name!r} must be >= 1")
            if name in seen:
                raise ValueError(f"duplicate weight for table {name!r}")
            seen.add(name)
        # Canonical order: equal limit sets compare and serialize equal.
        object.__setattr__(self, "weights", tuple(sorted(self.weights)))

    @property
    def enabled(self) -> bool:
        """Whether any knob is actually set."""
        return any(
            getattr(self, label) not in (None, ())
            for label in _LIMIT_FIELDS
        )

    def weight_for(self, name: str) -> int:
        """The fairness weight for ``name`` (default 1)."""
        for table, weight in self.weights:
            if table == name:
                return weight
        return 1

    def ingest_bucket(
        self, *, clock: Callable[[], float] | None = None
    ) -> TokenBucket | None:
        """A fresh ingest-quota bucket, or ``None`` when unlimited."""
        if self.ingest_rate is None:
            return None
        burst = (
            float(self.ingest_burst) if self.ingest_burst is not None
            else max(1.0, self.ingest_rate)
        )
        return TokenBucket(self.ingest_rate, burst, clock=clock)

    def query_bucket(
        self, *, clock: Callable[[], float] | None = None
    ) -> TokenBucket | None:
        """A fresh query-quota bucket, or ``None`` when unlimited."""
        if self.query_rate is None:
            return None
        burst = (
            float(self.query_burst) if self.query_burst is not None
            else max(1.0, self.query_rate)
        )
        return TokenBucket(self.query_rate, burst, clock=clock)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (inverse of :meth:`from_dict`)."""
        return {
            "max_connections": self.max_connections,
            "ingest_rate": self.ingest_rate,
            "ingest_burst": self.ingest_burst,
            "query_rate": self.query_rate,
            "query_burst": self.query_burst,
            "fair_quantum": self.fair_quantum,
            "weights": {name: weight for name, weight in self.weights},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ServiceLimits:
        """Validate and rebuild limits from their manifest form."""
        if not isinstance(payload, dict):
            raise ValueError("limits must be an object")
        unknown = set(payload) - set(_LIMIT_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown limits field(s): {', '.join(sorted(unknown))}")
        kwargs: dict[str, Any] = {}
        for label in ("max_connections", "ingest_burst", "query_burst",
                      "fair_quantum"):
            value = payload.get(label)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ValueError(f"{label} must be an integer")
            kwargs[label] = value
        for label in ("ingest_rate", "query_rate"):
            value = payload.get(label)
            if value is not None:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(f"{label} must be a number")
                value = float(value)
            kwargs[label] = value
        weights = payload.get("weights", {})
        if weights is None:
            weights = {}
        if not isinstance(weights, dict):
            raise ValueError("weights must be an object of name -> weight")
        kwargs["weights"] = tuple(sorted(
            (str(name), weight) for name, weight in weights.items()
        ))
        return cls(**kwargs)
