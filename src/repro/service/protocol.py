"""Length-prefixed JSON wire protocol for the sketch service.

Frame layout (both directions)::

    +----------------+----------------------------+
    | length: u32 BE | payload: UTF-8 JSON object |
    +----------------+----------------------------+

The payload is a single JSON object serialized with ``ensure_ascii``
(the default), so lone surrogates from ``surrogateescape``-decoded
text survive as ``\\uDCxx`` escapes and every frame is plain ASCII on
the wire.  Frames larger than :data:`MAX_FRAME_BYTES` are refused on
both ends — a bounds check, not a negotiation.

Requests carry ``{"op": ..., ...}``; responses carry ``{"ok": true,
...}`` or ``{"ok": false, "error": {"code": ..., "message": ...}}``.
The full op and error vocabulary is documented in ``docs/service.md``.

Stream keys cross the wire through :func:`encode_wire_key` /
:func:`decode_wire_key`, which reuse the snapshot item codec
(``repro.store.format.encode_item``) after :func:`normalize_key`
collapses NumPy scalars to their Python equivalents — ``np.int64(7)``
and ``7`` hash identically (``encode_key``), so they must serialize
identically too.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.store.format import SnapshotFormatError, decode_item, encode_item

if TYPE_CHECKING:
    from collections.abc import Hashable

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "WireProtocolError",
    "decode_wire_key",
    "encode_wire_key",
    "error_response",
    "normalize_key",
    "ok_response",
    "pack_frame",
    "read_frame",
    "unpack_frame",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload, in bytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Request operations the server understands.
OPS = frozenset({
    "checkpoint",
    "create_table",
    "drop_table",
    "estimate",
    "ingest",
    "metrics",
    "ping",
    "shutdown",
    "stats",
    "topk",
})

#: Error codes a response may carry.
ERROR_CODES = frozenset({
    "bad_frame",
    "bad_request",
    "internal",
    "no_such_table",
    "overloaded",
    "shutting_down",
    "table_exists",
})


class WireProtocolError(Exception):
    """A frame violated the protocol (framing, size, or JSON shape)."""


def normalize_key(item: Hashable) -> Hashable:
    """Collapse a stream key to its canonical Python representation.

    NumPy scalars hash identically to their Python twins in
    ``encode_key``, so the wire must not distinguish them either:
    ``np.int64(7)`` becomes ``7``, ``np.bool_(True)`` becomes ``True``,
    ``bytearray`` becomes ``bytes``, and tuples normalize recursively.
    """
    if isinstance(item, (bool, np.bool_)):
        return bool(item)
    if isinstance(item, np.integer):
        return int(item)
    if isinstance(item, np.floating):
        return float(item)
    if isinstance(item, bytearray):
        return bytes(item)
    if isinstance(item, tuple):
        return tuple(normalize_key(part) for part in item)
    return item


def encode_wire_key(item: Hashable) -> object:
    """Encode one stream key as a JSON-representable wire value."""
    return encode_item(normalize_key(item))


def decode_wire_key(value: object) -> Hashable:
    """Invert :func:`encode_wire_key`.

    Raises:
        WireProtocolError: for values no key encoding produces.
    """
    try:
        return decode_item(value)
    except SnapshotFormatError as error:
        raise WireProtocolError(f"undecodable key: {error}") from error


def pack_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (length + JSON)."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("ascii")
    if len(body) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def unpack_frame(data: bytes) -> dict[str, Any]:
    """Parse exactly one frame from ``data`` (header + full payload)."""
    if len(data) < _LENGTH.size:
        raise WireProtocolError("truncated frame header")
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = data[_LENGTH.size:]
    if len(body) != length:
        raise WireProtocolError(
            f"frame declares {length} payload bytes but carries {len(body)}"
        )
    return _parse_body(bytes(body))


def _parse_body(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireProtocolError(f"frame payload is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise WireProtocolError("frame payload must be a JSON object")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF between frames.

    Raises:
        WireProtocolError: on truncation mid-frame, an oversized
            declared length, or a non-object payload.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireProtocolError("connection closed mid-header") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireProtocolError("connection closed mid-frame") from error
    return _parse_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    """Write one frame and drain the transport."""
    writer.write(pack_frame(message))
    await writer.drain()


def ok_response(request_id: object = None, **fields: Any) -> dict[str, Any]:
    """Build a success response, echoing the request id when present."""
    response: dict[str, Any] = {"ok": True, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id: object,
    code: str,
    message: str,
    **fields: Any,
) -> dict[str, Any]:
    """Build an error response with a stable machine-readable code."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message, **fields},
    }
    if request_id is not None:
        response["id"] = request_id
    return response
