"""Length-prefixed wire protocol for the sketch service: JSON + binary.

Frame layout (both directions)::

    +----------------+----------------------------+
    | length: u32 BE | payload                    |
    +----------------+----------------------------+

Two payload kinds share the framing, distinguished by the first payload
byte:

* **Canonical-ASCII-JSON** — the payload is a single JSON object
  serialized with ``sort_keys`` / ``ensure_ascii`` / ``allow_nan=False``
  (so equal messages are equal bytes and every frame is strict RFC 8259
  ASCII; lone surrogates from ``surrogateescape``-decoded text survive
  as ``\\uDCxx`` escapes).  A canonical JSON object always begins with
  ``{`` (0x7B).
* **Binary ingest** — the payload begins with :data:`BINARY_MAGIC`
  (0xB1, never a valid JSON start byte) and carries one bulk ingest
  request: a fixed header, the table name, a key block, and a raw
  little-endian ``int64`` weight array.  See :func:`pack_binary_ingest`
  for the exact layout.  Responses are always JSON — acks are tiny and
  uniform, so only the request hot path earns a binary encoding.

Frames larger than :data:`MAX_FRAME_BYTES` are refused on both ends —
a bounds check, not a negotiation.  What *is* negotiated is the binary
frame itself: servers advertise :data:`FEATURE_BINARY_INGEST` in the
``ping`` response and clients fall back to JSON when it is absent.

Requests carry ``{"op": ..., ...}``; responses carry ``{"ok": true,
...}`` or ``{"ok": false, "error": {"code": ..., "message": ...}}``.
The full op and error vocabulary is documented in ``docs/service.md``.

Stream keys cross the JSON wire through :func:`encode_wire_key` /
:func:`decode_wire_key`, which reuse the snapshot item codec
(``repro.store.format.encode_item``) after :func:`normalize_key`
collapses NumPy scalars to their Python equivalents — ``np.int64(7)``
and ``7`` hash identically (``encode_key``), so they must serialize
identically too.  ``normalize_key`` also *rejects* anything the sketch
key encoding cannot hash (datetime64, complex, lists, ...) with a
:class:`WireProtocolError` up front, so type errors surface at the
protocol boundary instead of leaking store internals from deep inside
``encode_item``.

Binary keys travel in one of two modes:

* **raw** — each key is its 64-bit ``encode_key`` image, shipped as a
  raw little-endian ``uint64`` array and fed straight into the
  vectorized sketch paths with no per-record decode.  Lossy by design
  (the original object never crosses the wire), which is exactly right
  for summaries that store no stream objects — and wrong for ``topk``
  tables, which the server refuses in this mode.
* **packed** — each key is a self-delimiting tagged binary encoding
  (:func:`pack_key` / :func:`unpack_key`) that round-trips the original
  object exactly, including surrogate-escaped strings, nested tuples,
  bytes, and the full Python ``int`` range.

This module is the only place binary payloads are encoded or decoded
(lint rule RS008 enforces that); everything else handles frames as
opaque bytes or parsed objects.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.store.format import SnapshotFormatError, decode_item, encode_item

if TYPE_CHECKING:
    from collections.abc import Hashable, Sequence

__all__ = [
    "BINARY_MAGIC",
    "BINARY_OP_INGEST",
    "BINARY_VERSION",
    "ERROR_CODES",
    "FEATURE_BINARY_INGEST",
    "FEATURES",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "BinaryIngest",
    "FrameTooLargeError",
    "WireProtocolError",
    "binary_ingest_capacity",
    "decode_wire_key",
    "encode_wire_key",
    "error_response",
    "normalize_key",
    "ok_response",
    "pack_binary_ingest",
    "pack_frame",
    "pack_key",
    "read_frame",
    "unpack_frame",
    "unpack_key",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload, in bytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: First payload byte of a binary frame.  Canonical JSON payloads always
#: start with ``{`` (0x7B), so one byte tags the frame kind.
BINARY_MAGIC = 0xB1

#: Version of the binary frame layout (bumped only on layout breaks).
BINARY_VERSION = 1

#: Binary opcode: bulk ingest (the only binary request so far).
BINARY_OP_INGEST = 1

#: Feature tag servers advertise in the ``ping`` response when they
#: accept binary ingest frames; clients negotiate on it.
FEATURE_BINARY_INGEST = "binary-ingest-v1"

#: Every feature the current server build advertises.
FEATURES = frozenset({FEATURE_BINARY_INGEST})

_LENGTH = struct.Struct(">I")

#: Request operations the server understands.
OPS = frozenset({
    "checkpoint",
    "create_table",
    "drop_table",
    "estimate",
    "estimate_rows",
    "ingest",
    "metrics",
    "ping",
    "shutdown",
    "stats",
    "topk",
})

#: Error codes a response may carry.
ERROR_CODES = frozenset({
    "bad_frame",
    "bad_request",
    "internal",
    "no_such_table",
    "overloaded",
    "quota_exceeded",
    "shutting_down",
    "table_exists",
})


class WireProtocolError(Exception):
    """A frame violated the protocol (framing, size, shape, or types)."""


class FrameTooLargeError(WireProtocolError):
    """The serialized payload exceeds :data:`MAX_FRAME_BYTES`.

    A distinct subclass so clients can split a batch and retry instead
    of treating the size bound like a malformed frame.
    """


def normalize_key(item: Hashable) -> Hashable:
    """Collapse a stream key to its canonical Python representation.

    NumPy scalars hash identically to their Python twins in
    ``encode_key``, so the wire must not distinguish them either:
    ``np.int64(7)`` becomes ``7``, ``np.bool_(True)`` becomes ``True``,
    ``bytearray`` becomes ``bytes``, and tuples normalize recursively.

    Raises:
        WireProtocolError: for types ``encode_key`` cannot hash
            (``np.datetime64``, ``complex``, lists, ``None``, ...), so
            unusable keys fail loudly at the protocol boundary instead
            of deep inside the snapshot item codec.
    """
    if isinstance(item, (bool, np.bool_)):
        return bool(item)
    if isinstance(item, np.integer):
        return int(item)
    if isinstance(item, np.floating):
        return float(item)
    if isinstance(item, bytearray):
        return bytes(item)
    if isinstance(item, tuple):
        return tuple(normalize_key(part) for part in item)
    if not isinstance(item, (int, str, bytes, float)):
        raise WireProtocolError(
            f"unsupported key type {type(item).__name__!r}: stream keys "
            "must be int, str, bytes, float, bool, or tuples thereof"
        )
    return item


def encode_wire_key(item: Hashable) -> object:
    """Encode one stream key as a JSON-representable wire value."""
    return encode_item(normalize_key(item))


def decode_wire_key(value: object) -> Hashable:
    """Invert :func:`encode_wire_key`.

    Raises:
        WireProtocolError: for values no key encoding produces.
    """
    try:
        return decode_item(value)
    except SnapshotFormatError as error:
        raise WireProtocolError(f"undecodable key: {error}") from error


def pack_frame(message: dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (length + JSON).

    Raises:
        FrameTooLargeError: when the payload exceeds
            :data:`MAX_FRAME_BYTES` — callers with splittable payloads
            (ingest batches) catch this and send several frames.
        WireProtocolError: for payloads canonical JSON cannot carry —
            notably non-finite floats, which ``json.dumps`` would
            otherwise emit as the non-RFC ``NaN``/``Infinity`` tokens.
    """
    try:
        body = json.dumps(
            message, sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        ).encode("ascii")
    except ValueError as error:
        raise WireProtocolError(
            "message is not representable in canonical JSON "
            f"(NaN/Infinity are not RFC 8259 values): {error}"
        ) from error
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def unpack_frame(data: bytes) -> dict[str, Any] | BinaryIngest:
    """Parse exactly one frame from ``data`` (header + full payload)."""
    if len(data) < _LENGTH.size:
        raise WireProtocolError("truncated frame header")
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    body = data[_LENGTH.size:]
    if len(body) != length:
        raise WireProtocolError(
            f"frame declares {length} payload bytes but carries {len(body)}"
        )
    return _parse_body(bytes(body))


def _reject_nonfinite(token: str) -> float:
    """``parse_constant`` hook: canonical JSON has no NaN/Infinity."""
    raise ValueError(f"non-RFC JSON token {token!r} is not canonical")


def _parse_body(body: bytes) -> dict[str, Any] | BinaryIngest:
    if body[:1] == bytes((BINARY_MAGIC,)):
        return _unpack_binary_ingest(body)
    try:
        message = json.loads(
            body.decode("utf-8"), parse_constant=_reject_nonfinite
        )
    except (UnicodeDecodeError, ValueError) as error:
        raise WireProtocolError(f"frame payload is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise WireProtocolError("frame payload must be a JSON object")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
) -> dict[str, Any] | BinaryIngest | None:
    """Read one frame; ``None`` on a clean EOF between frames.

    Raises:
        WireProtocolError: on truncation mid-frame, an oversized
            declared length, or an unparseable payload.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireProtocolError("connection closed mid-header") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireProtocolError("connection closed mid-frame") from error
    return _parse_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict[str, Any]
) -> None:
    """Write one frame and drain the transport."""
    writer.write(pack_frame(message))
    await writer.drain()


def ok_response(request_id: object = None, **fields: Any) -> dict[str, Any]:
    """Build a success response, echoing the request id when present."""
    response: dict[str, Any] = {"ok": True, **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    request_id: object,
    code: str,
    message: str,
    **fields: Any,
) -> dict[str, Any]:
    """Build an error response with a stable machine-readable code."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message, **fields},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


# -- binary key codec ---------------------------------------------------------

_KEY_I64 = 0x01     # 8-byte little-endian signed int (the common case)
_KEY_BIG = 0x02     # u32 length + little-endian signed two's complement
_KEY_STR = 0x03     # u32 length + UTF-8 (surrogatepass)
_KEY_BYTES = 0x04   # u32 length + raw bytes
_KEY_F64 = 0x05     # 8-byte IEEE-754 double, little-endian (bit-exact)
_KEY_BOOL = 0x06    # 1 byte, 0 or 1
_KEY_TUPLE = 0x07   # u32 element count + packed elements

_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _pack_key_into(out: bytearray, item: Hashable) -> None:
    """Append one *normalized* key's packed encoding to ``out``."""
    if isinstance(item, bool):
        out.append(_KEY_BOOL)
        out.append(1 if item else 0)
    elif isinstance(item, int):
        if _I64_MIN <= item <= _I64_MAX:
            out.append(_KEY_I64)
            out += _I64.pack(item)
        else:
            blob = item.to_bytes(
                (item.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(_KEY_BIG)
            out += _U32.pack(len(blob))
            out += blob
    elif isinstance(item, str):
        data = item.encode("utf-8", "surrogatepass")
        out.append(_KEY_STR)
        out += _U32.pack(len(data))
        out += data
    elif isinstance(item, bytes):
        out.append(_KEY_BYTES)
        out += _U32.pack(len(item))
        out += item
    elif isinstance(item, float):
        out.append(_KEY_F64)
        out += _F64.pack(item)
    elif isinstance(item, tuple):
        out.append(_KEY_TUPLE)
        out += _U32.pack(len(item))
        for part in item:
            _pack_key_into(out, part)
    else:  # normalize_key() already rejected everything else
        raise WireProtocolError(
            f"unsupported key type {type(item).__name__!r}"
        )


def pack_key(item: Hashable) -> bytes:
    """Encode one stream key as a self-delimiting binary blob.

    The encoding round-trips the original object exactly through
    :func:`unpack_key` — including surrogate-escaped strings, nested
    tuples, bytes, non-finite floats, and ints beyond 64 bits — and
    normalizes NumPy scalars first, so ``np.int64(7)`` and ``7`` pack
    identically (mirroring :func:`encode_wire_key` on the JSON wire).

    Raises:
        WireProtocolError: for key types ``encode_key`` cannot hash.
    """
    out = bytearray()
    _pack_key_into(out, normalize_key(item))
    return bytes(out)


def _need(buffer: bytes, offset: int, count: int) -> None:
    if offset + count > len(buffer):
        raise WireProtocolError(
            f"truncated packed key: need {count} bytes at offset {offset}, "
            f"have {len(buffer) - offset}"
        )


def unpack_key(buffer: bytes, offset: int = 0) -> tuple[Hashable, int]:
    """Decode one packed key at ``offset``; returns ``(key, next_offset)``.

    Raises:
        WireProtocolError: on truncation, unknown tags, or pathological
            nesting.
    """
    try:
        return _unpack_key_at(buffer, offset)
    except RecursionError:
        raise WireProtocolError("packed key nesting too deep") from None


def _unpack_key_at(buffer: bytes, offset: int) -> tuple[Hashable, int]:
    _need(buffer, offset, 1)
    tag = buffer[offset]
    offset += 1
    if tag == _KEY_I64:
        _need(buffer, offset, 8)
        return _I64.unpack_from(buffer, offset)[0], offset + 8
    if tag == _KEY_BIG:
        _need(buffer, offset, 4)
        (length,) = _U32.unpack_from(buffer, offset)
        offset += 4
        _need(buffer, offset, length)
        value = int.from_bytes(
            buffer[offset:offset + length], "little", signed=True
        )
        return value, offset + length
    if tag == _KEY_STR:
        _need(buffer, offset, 4)
        (length,) = _U32.unpack_from(buffer, offset)
        offset += 4
        _need(buffer, offset, length)
        try:
            text = buffer[offset:offset + length].decode(
                "utf-8", "surrogatepass"
            )
        except UnicodeDecodeError as error:
            raise WireProtocolError(
                f"packed string key is not UTF-8: {error}"
            ) from error
        return text, offset + length
    if tag == _KEY_BYTES:
        _need(buffer, offset, 4)
        (length,) = _U32.unpack_from(buffer, offset)
        offset += 4
        _need(buffer, offset, length)
        return bytes(buffer[offset:offset + length]), offset + length
    if tag == _KEY_F64:
        _need(buffer, offset, 8)
        return _F64.unpack_from(buffer, offset)[0], offset + 8
    if tag == _KEY_BOOL:
        _need(buffer, offset, 1)
        flag = buffer[offset]
        if flag not in (0, 1):
            raise WireProtocolError(f"packed bool key byte {flag} invalid")
        return bool(flag), offset + 1
    if tag == _KEY_TUPLE:
        _need(buffer, offset, 4)
        (count,) = _U32.unpack_from(buffer, offset)
        offset += 4
        parts = []
        for _ in range(count):
            part, offset = _unpack_key_at(buffer, offset)
            parts.append(part)
        return tuple(parts), offset
    raise WireProtocolError(f"unknown packed key tag 0x{tag:02x}")


# -- binary ingest frame ------------------------------------------------------

#: Fixed binary header: magic, version, opcode, flags, request id (u64),
#: table-name length (u16).
_BIN_HEAD = struct.Struct("<BBBBQH")

_FLAG_WAIT = 0x01
_FLAG_RAW_KEYS = 0x02


@dataclass(frozen=True)
class BinaryIngest:
    """One parsed binary ingest request.

    Exactly one of ``keys`` / ``items`` is set: ``keys`` carries raw
    pre-encoded ``uint64`` hashes (zero-copy view into the frame
    buffer), ``items`` the losslessly decoded stream objects.
    """

    table: str
    request_id: int
    wait: bool
    raw: bool
    keys: np.ndarray | None
    items: list[Hashable] | None
    weights: np.ndarray

    def __len__(self) -> int:
        return int(self.weights.size)


def binary_ingest_capacity(table: str, *, raw: bool = True) -> int:
    """Most records one raw-mode binary frame can carry for ``table``.

    Packed-mode frames have variable per-key size; callers split those
    greedily on the byte budget instead.
    """
    table_bytes = len(table.encode("utf-8"))
    overhead = _BIN_HEAD.size + table_bytes + _U32.size
    per_record = 16 if raw else 16  # u64 key + i64 weight
    return max(1, (MAX_FRAME_BYTES - overhead) // per_record)


def pack_binary_ingest(
    table: str,
    request_id: int,
    keys: np.ndarray | Sequence[bytes],
    weights: np.ndarray,
    *,
    raw: bool,
    wait: bool = False,
) -> bytes:
    """Serialize one binary ingest request to its on-wire bytes.

    Args:
        table: destination table name.
        request_id: echoed in the (JSON) ack; must fit in u64.
        keys: raw mode — a ``uint64`` array of ``encode_key`` images;
            packed mode — one :func:`pack_key` blob per record.
        weights: per-record ``int64`` weights (same length as ``keys``).
        raw: selects the key block layout (see the module docstring).
        wait: ask the server to apply the batch before acking.

    Raises:
        FrameTooLargeError: when the frame exceeds
            :data:`MAX_FRAME_BYTES`; split the batch and retry.
        WireProtocolError: on inconsistent array shapes or dtypes.
    """
    table_bytes = table.encode("utf-8")
    if len(table_bytes) > 0xFFFF:
        raise WireProtocolError("table name too long for a binary frame")
    weights_arr = np.ascontiguousarray(weights, dtype="<i8")
    flags = (_FLAG_WAIT if wait else 0) | (_FLAG_RAW_KEYS if raw else 0)
    if raw:
        if not isinstance(keys, np.ndarray) or keys.dtype != np.uint64:
            raise WireProtocolError(
                "raw-mode binary keys must be a uint64 ndarray"
            )
        if keys.shape != weights_arr.shape:
            raise WireProtocolError("keys and weights must match in length")
        n = int(keys.size)
        key_block = np.ascontiguousarray(keys, dtype="<u8").tobytes()
        key_prefix = b""
    else:
        blobs = list(keys)
        if len(blobs) != int(weights_arr.size):
            raise WireProtocolError("keys and weights must match in length")
        n = len(blobs)
        key_block = b"".join(blobs)
        key_prefix = _U32.pack(len(key_block))
    if n > 0xFFFFFFFF:
        raise FrameTooLargeError("too many records for one binary frame")
    body = b"".join((
        _BIN_HEAD.pack(
            BINARY_MAGIC, BINARY_VERSION, BINARY_OP_INGEST, flags,
            request_id & ((1 << 64) - 1), len(table_bytes),
        ),
        table_bytes,
        _U32.pack(n),
        key_prefix,
        key_block,
        weights_arr.tobytes(),
    ))
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"binary frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def _unpack_binary_ingest(body: bytes) -> BinaryIngest:
    """Parse one binary ingest payload (first byte already matched)."""
    if len(body) < _BIN_HEAD.size:
        raise WireProtocolError("truncated binary frame header")
    magic, version, opcode, flags, request_id, table_len = (
        _BIN_HEAD.unpack_from(body, 0)
    )
    if version != BINARY_VERSION:
        raise WireProtocolError(
            f"unsupported binary frame version {version} "
            f"(this build speaks {BINARY_VERSION})"
        )
    if opcode != BINARY_OP_INGEST:
        raise WireProtocolError(f"unknown binary opcode {opcode}")
    offset = _BIN_HEAD.size
    _need(body, offset, table_len)
    try:
        table = body[offset:offset + table_len].decode("utf-8")
    except UnicodeDecodeError as error:
        raise WireProtocolError(
            f"binary frame table name is not UTF-8: {error}"
        ) from error
    offset += table_len
    _need(body, offset, _U32.size)
    (n,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    raw = bool(flags & _FLAG_RAW_KEYS)
    keys: np.ndarray | None = None
    items: list[Hashable] | None = None
    if raw:
        _need(body, offset, 8 * n)
        keys = np.frombuffer(body, dtype="<u8", count=n, offset=offset)
        offset += 8 * n
    else:
        _need(body, offset, _U32.size)
        (key_bytes,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        _need(body, offset, key_bytes)
        block = body[offset:offset + key_bytes]
        offset += key_bytes
        items = []
        position = 0
        for index in range(n):
            try:
                item, position = unpack_key(block, position)
            except WireProtocolError as error:
                raise WireProtocolError(
                    f"binary frame key {index} is malformed: {error}"
                ) from error
            items.append(item)
        if position != len(block):
            raise WireProtocolError(
                f"binary frame key block carries {len(block) - position} "
                "trailing bytes"
            )
    _need(body, offset, 8 * n)
    weights = np.frombuffer(body, dtype="<i8", count=n, offset=offset)
    offset += 8 * n
    if offset != len(body):
        raise WireProtocolError(
            f"binary frame carries {len(body) - offset} trailing bytes"
        )
    return BinaryIngest(
        table=table,
        request_id=int(request_id),
        wait=bool(flags & _FLAG_WAIT),
        raw=raw,
        keys=keys,
        items=items,
        weights=weights,
    )
