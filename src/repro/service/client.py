"""Typed client library for the sketch service.

Three layers:

* Transports — :class:`TcpTransport` (real sockets) and
  :class:`InProcessTransport` (direct dispatch against a
  :class:`~repro.service.server.SketchServer`, round-tripping every
  message through the frame codec so tests exercise byte-level parity
  without a socket).  Both speak pre-packed frames
  (:meth:`~TcpTransport.request_bytes`) and windowed pipelining
  (:meth:`~TcpTransport.request_stream`) in addition to one-shot JSON
  requests.
* :class:`AsyncServiceClient` — the async API: one method per protocol
  op, with stream keys encoded/decoded transparently and error
  responses raised as :class:`ServiceError` (or the sharper
  :class:`OverloadedError` for backpressure).
* :class:`ServiceClient` — a synchronous facade for scripts and the
  CLI: it runs a private event loop on a daemon thread and proxies
  each call with a timeout.

Wire negotiation: with ``wire="auto"`` (the default) the client pings
the server once, and uses binary ingest frames whenever the server
advertises ``binary-ingest-v1`` — raw pre-encoded 64-bit keys for
tables that never store original items, lossless packed keys for
``topk`` tables.  ``wire="json"`` forces the canonical JSON protocol;
``wire="binary"`` raises instead of silently falling back.  Everything
except ingest always travels as JSON.

Batches that would exceed ``MAX_FRAME_BYTES`` are split into several
frames automatically (JSON and binary alike).  Ack semantics per frame
are unchanged — but a split batch is no longer all-or-nothing: an
``overloaded`` mid-split surfaces after earlier sub-batches were
acknowledged.

Backpressure contract: ``ingest`` never silently drops.  Either the
batch is acknowledged (and ``wait=True`` additionally awaits its
application), or :class:`OverloadedError` reports the full queue and
the caller decides — retry, slow down, or fail.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.hashing.vectorized import encode_keys
from repro.service.protocol import (
    FEATURE_BINARY_INGEST,
    MAX_FRAME_BYTES,
    FrameTooLargeError,
    WireProtocolError,
    binary_ingest_capacity,
    encode_wire_key,
    decode_wire_key,
    error_response,
    normalize_key,
    pack_binary_ingest,
    pack_frame,
    pack_key,
    read_frame,
    unpack_frame,
)
from repro.service.tables import TableSpec

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable, Sequence

    from repro.service.server import SketchServer

__all__ = [
    "AsyncServiceClient",
    "InProcessTransport",
    "OverloadedError",
    "QuotaExceededError",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "TcpTransport",
    "WIRE_MODES",
]

#: Ingest wire preferences a client accepts.
WIRE_MODES = ("auto", "json", "binary")

#: Default number of in-flight frames during pipelined ingest.
_DEFAULT_WINDOW = 32

class _WeightOverflow(Exception):
    """Internal: a weight exceeds int64 (binary frames cannot carry it)."""


class ServiceError(Exception):
    """The server answered with an error response."""

    def __init__(self, code: str, message: str,
                 details: dict[str, Any] | None = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class OverloadedError(ServiceError):
    """The table's ingest queue was full; the batch was not enqueued."""


class QuotaExceededError(ServiceError):
    """A per-table quota refused the request (nothing was enqueued).

    Unlike :class:`OverloadedError` — transient backpressure that
    pipelined ingest retries after a barrier — a quota refusal is
    deliberate policy, so it always propagates.  ``details`` carries
    the table, the op kind, and ``retry_after`` seconds when the
    bucket could eventually grant the request.
    """


class ServiceConnectionError(ServiceError):
    """The connection failed to open, or was lost mid-session.

    Raised instead of raw ``ConnectionRefusedError`` / ``BrokenPipeError``
    tracebacks (and instead of the wire codec's truncation errors) so
    callers can catch one typed exception for every transport failure.
    Subclasses :class:`ServiceError`, so existing ``except ServiceError``
    handlers already cover it.
    """

    def __init__(self, message: str) -> None:
        super().__init__("connection", message)


def _raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error")
    if not isinstance(error, dict):
        raise ServiceError("internal", f"malformed error response: "
                                       f"{response!r}")
    code = str(error.get("code", "internal"))
    message = str(error.get("message", ""))
    details = {k: v for k, v in error.items()
               if k not in ("code", "message")}
    if code == "overloaded":
        raise OverloadedError(code, message, details)
    if code == "quota_exceeded":
        raise QuotaExceededError(code, message, details)
    raise ServiceError(code, message, details)


def _checked_response(
    response: dict[str, Any] | Any | None,
) -> dict[str, Any]:
    """Validate that the transport handed back one JSON response."""
    if response is None:
        raise ServiceConnectionError(
            "server closed the connection before responding",
        )
    if not isinstance(response, dict):
        raise ServiceError(
            "internal",
            f"unexpected non-JSON frame from server: {type(response).__name__}",
        )
    return response


class TcpTransport:
    """One TCP connection; requests are serialized with a lock."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> TcpTransport:
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as error:
            raise ServiceConnectionError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        return cls(reader, writer)

    async def _send(self, frame: bytes) -> None:
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except OSError as error:
            raise ServiceConnectionError(
                f"connection lost while sending: {error}"
            ) from error

    async def _receive(self) -> dict[str, Any]:
        try:
            response = await read_frame(self._reader)
        except WireProtocolError as error:
            if isinstance(error.__cause__, asyncio.IncompleteReadError):
                raise ServiceConnectionError(
                    f"connection lost mid-response: {error}"
                ) from error
            raise
        except OSError as error:
            raise ServiceConnectionError(
                f"connection lost while reading: {error}"
            ) from error
        return _checked_response(response)

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one framed request and await its framed response."""
        return await self.request_bytes(pack_frame(message))

    async def request_bytes(self, frame: bytes) -> dict[str, Any]:
        """Send one pre-packed frame and await its response."""
        async with self._lock:
            await self._send(frame)
            return await self._receive()

    async def request_stream(
        self, frames: Sequence[bytes], *, window: int = _DEFAULT_WINDOW
    ) -> list[dict[str, Any]]:
        """Send ``frames`` pipelined; responses in request order.

        Up to ``window`` frames are in flight at once: a sender task
        writes ahead while this coroutine reads acks, so a slow ack
        round-trip never idles the server's applier.  The server
        dispatches one connection's frames in order, so the i-th
        response answers the i-th frame.
        """
        if window < 1:
            raise ValueError("window must be at least 1")
        responses: list[dict[str, Any]] = []
        async with self._lock:
            in_flight = asyncio.Semaphore(window)

            async def send_all() -> None:
                for frame in frames:
                    await in_flight.acquire()
                    await self._send(frame)

            sender = asyncio.get_running_loop().create_task(send_all())
            try:
                for _ in range(len(frames)):
                    responses.append(await self._receive())
                    in_flight.release()
            finally:
                if not sender.done():
                    sender.cancel()
                try:
                    await sender
                except (asyncio.CancelledError, ServiceConnectionError,
                        OSError):
                    pass
        return responses

    async def close(self) -> None:
        """Close the connection, tolerating an already-gone peer."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class InProcessTransport:
    """Dispatch directly against a server, through the frame codec.

    Every request and response is packed and unpacked exactly as it
    would be on a socket, so in-process tests cover the same byte path
    as TCP minus the kernel.
    """

    def __init__(self, server: SketchServer) -> None:
        self._server = server

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Dispatch against the server after a codec round-trip."""
        return await self.request_bytes(pack_frame(message))

    async def request_bytes(self, frame: bytes) -> dict[str, Any]:
        """Unpack, dispatch (JSON or binary), round-trip the response."""
        wire_message = unpack_frame(frame)
        if isinstance(wire_message, dict):
            response = await self._server.dispatch(wire_message)
        else:
            response = await self._server.dispatch_binary(wire_message)
        try:
            packed = pack_frame(response)
        except WireProtocolError as error:
            # Mirror the TCP writer task: an unserializable response is
            # substituted with a bad_request error carrying the same id.
            packed = pack_frame(error_response(
                response.get("id"), "bad_request",
                f"response is not representable in canonical JSON: {error}",
            ))
        return _checked_response(unpack_frame(packed))

    async def request_stream(
        self, frames: Sequence[bytes], *, window: int = _DEFAULT_WINDOW
    ) -> list[dict[str, Any]]:
        """Sequential in-process equivalent of pipelined send."""
        return [await self.request_bytes(frame) for frame in frames]

    async def close(self) -> None:
        """Nothing to release; the server is owned by the caller."""
        return None


class AsyncServiceClient:
    """Async API over a transport; one method per protocol op.

    Args:
        transport: an open transport.
        wire: ingest wire preference — ``"auto"`` negotiates binary
            frames when the server advertises them, ``"json"`` forces
            the canonical JSON protocol, ``"binary"`` refuses to fall
            back (raising :class:`ServiceError` when unsupported).
    """

    def __init__(
        self,
        transport: TcpTransport | InProcessTransport,
        *,
        wire: str = "auto",
    ) -> None:
        if wire not in WIRE_MODES:
            raise ValueError(
                f"unknown wire mode {wire!r}; choose one of "
                f"{', '.join(WIRE_MODES)}"
            )
        self._transport = transport
        self._wire = wire
        self._ids = itertools.count(1)
        self._server_features: frozenset[str] | None = None
        self._table_kinds: dict[str, str] = {}

    @classmethod
    async def connect(
        cls, host: str, port: int, *, wire: str = "auto"
    ) -> AsyncServiceClient:
        """Open a TCP connection to a running server."""
        return cls(await TcpTransport.connect(host, port), wire=wire)

    @classmethod
    def in_process(
        cls, server: SketchServer, *, wire: str = "auto"
    ) -> AsyncServiceClient:
        """Attach to a server in the same event loop (tests, benches)."""
        return cls(InProcessTransport(server), wire=wire)

    async def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        message: dict[str, Any] = {"op": op, "id": next(self._ids)}
        for key, value in fields.items():
            if value is not None:
                message[key] = value
        return _raise_for_error(await self._transport.request(message))

    async def ping(self) -> dict[str, Any]:
        """Server liveness, protocol version, and feature set."""
        response = await self._call("ping")
        features = response.get("features")
        self._server_features = frozenset(
            str(feature) for feature in features
        ) if isinstance(features, list) else frozenset()
        return response

    async def create_table(self, spec: TableSpec) -> bool:
        """Create a table; ``False`` when it already existed (same
        spec — a differing spec raises ``table_exists``)."""
        response = await self._call("create_table", spec=spec.to_dict())
        self._table_kinds[spec.name] = spec.kind
        return bool(response["created"])

    async def drop_table(self, table: str) -> int:
        """Drop a table; returns the records it had applied."""
        response = await self._call("drop_table", table=table)
        self._table_kinds.pop(table, None)
        return int(response["records_applied"])

    # -- ingest ---------------------------------------------------------------

    async def _binary_negotiated(self) -> bool:
        """Whether this client should send binary ingest frames."""
        if self._wire == "json":
            return False
        if self._server_features is None:
            await self.ping()
        assert self._server_features is not None
        supported = FEATURE_BINARY_INGEST in self._server_features
        if not supported and self._wire == "binary":
            raise ServiceError(
                "bad_request",
                "server does not advertise binary ingest "
                f"({FEATURE_BINARY_INGEST!r}); use wire='auto' or 'json'",
            )
        return supported

    async def _table_kind(self, table: str) -> str:
        """The table's summary kind (cached; one ``stats`` on a miss)."""
        kind = self._table_kinds.get(table)
        if kind is None:
            response = await self._call("stats", table=table)
            kind = str(response["table"]["spec"]["kind"])
            self._table_kinds[table] = kind
        return kind

    def _build_json_frames(
        self,
        table: str,
        pairs: list[tuple[Hashable, int]],
        *,
        wait: bool,
    ) -> list[tuple[bytes, list[tuple[Hashable, int]]]]:
        """Pack pairs into JSON ingest frames, halving on oversize.

        Ack semantics: only the final frame carries ``wait``, and the
        applier is FIFO per table, so its application implies all
        earlier sub-batches applied too.
        """
        message: dict[str, Any] = {
            "op": "ingest",
            "id": next(self._ids),
            "table": table,
            "records": [[encode_wire_key(item), count]
                        for item, count in pairs],
        }
        if wait:
            message["wait"] = True
        try:
            return [(pack_frame(message), pairs)]
        except FrameTooLargeError:
            if len(pairs) <= 1:
                raise
        middle = len(pairs) // 2
        return (
            self._build_json_frames(table, pairs[:middle], wait=False)
            + self._build_json_frames(table, pairs[middle:], wait=wait)
        )

    def _build_binary_frames(
        self,
        table: str,
        pairs: list[tuple[Hashable, int]],
        *,
        raw: bool,
        wait: bool,
    ) -> list[tuple[bytes, list[tuple[Hashable, int]]]]:
        """Pack pairs into binary ingest frames within the byte budget."""
        chunks: list[list[tuple[Hashable, int]]]
        blobs: list[list[bytes]] = []
        if raw:
            capacity = binary_ingest_capacity(table)
            chunks = [pairs[start:start + capacity]
                      for start in range(0, len(pairs), capacity)] or [[]]
        else:
            # Packed keys are variable-size: fill greedily, leaving
            # generous headroom for the fixed header and length fields.
            budget = MAX_FRAME_BYTES - 4096
            chunks = [[]]
            blobs = [[]]
            used = 0
            for item, count in pairs:
                blob = pack_key(item)
                cost = len(blob) + 8
                if chunks[-1] and used + cost > budget:
                    chunks.append([])
                    blobs.append([])
                    used = 0
                chunks[-1].append((item, count))
                blobs[-1].append(blob)
                used += cost
        frames: list[tuple[bytes, list[tuple[Hashable, int]]]] = []
        for index, chunk in enumerate(chunks):
            try:
                weights = np.array([count for _, count in chunk],
                                   dtype=np.int64)
            except OverflowError:
                raise _WeightOverflow() from None
            keys: np.ndarray | list[bytes]
            if raw:
                try:
                    keys = np.ascontiguousarray(
                        encode_keys([item for item, _ in chunk]),
                        dtype=np.uint64,
                    )
                except TypeError:
                    # Re-validate through normalize_key for the same
                    # clear boundary error the JSON wire raises.
                    for item, _ in chunk:
                        normalize_key(item)
                    raise
            else:
                keys = blobs[index]
            frames.append((
                pack_binary_ingest(
                    table,
                    next(self._ids),
                    keys,
                    weights,
                    raw=raw,
                    wait=wait and index == len(chunks) - 1,
                ),
                chunk,
            ))
        return frames

    async def _build_frames(
        self,
        table: str,
        pairs: list[tuple[Hashable, int]],
        *,
        wait: bool,
    ) -> list[tuple[bytes, list[tuple[Hashable, int]]]]:
        """Choose a wire for one batch and pack it into frames."""
        if await self._binary_negotiated():
            kind = await self._table_kind(table)
            try:
                return self._build_binary_frames(
                    table, pairs, raw=kind != "topk", wait=wait)
            except _WeightOverflow:
                # The JSON wire could carry the count, but the server's
                # counters are int64 and would refuse it anyway — fail
                # here with the same code, before anything is enqueued.
                raise ServiceError(
                    "bad_request",
                    "ingest counts must fit in int64; counters are 64-bit",
                ) from None
        return self._build_json_frames(table, pairs, wait=wait)

    async def _send_frames(
        self,
        frames: list[tuple[bytes, list[tuple[Hashable, int]]]],
        *,
        window: int = _DEFAULT_WINDOW,
    ) -> list[dict[str, Any]]:
        if len(frames) == 1:
            return [await self._transport.request_bytes(frames[0][0])]
        return await self._transport.request_stream(
            [frame for frame, _ in frames], window=window)

    async def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Send one batch of ``(item, count)`` records; returns its
        sequence number.  ``wait=True`` returns only after the batch is
        applied (read-your-writes without a separate query).

        Batches too large for one frame are split transparently (the
        returned sequence number is the final sub-batch's); the wire —
        JSON or binary — follows the client's ``wire`` preference and
        the server's advertised features.
        """
        pairs = [(item, int(count)) for item, count in records]
        frames = await self._build_frames(table, pairs, wait=wait)
        responses = await self._send_frames(frames)
        last: dict[str, Any] = {}
        for response in responses:
            last = _raise_for_error(response)
        return int(last["seq"])

    async def ingest_many(
        self,
        table: str,
        batches: Iterable[Iterable[tuple[Hashable, int]]],
        *,
        wait: bool = True,
        window: int = _DEFAULT_WINDOW,
        retry_overloaded: bool = True,
    ) -> int:
        """Pipelined bulk ingest; returns records acknowledged.

        Keeps up to ``window`` frames in flight so the server's applier
        never idles waiting on an ack round-trip.  ``wait=True`` places
        a read barrier behind the final frame, so a following query
        reflects every acknowledged record.

        With ``retry_overloaded``, batches refused by a full queue are
        re-sent afterwards with a per-batch read barrier (natural
        backpressure).  Retried batches apply *after* later-acknowledged
        ones — harmless for linear sketches (§3.2: counter addition
        commutes) but order-visible for ``topk``/``window`` tables;
        disable it there and handle :class:`OverloadedError` yourself.
        """
        prepared = [
            [(item, int(count)) for item, count in batch]
            for batch in batches
        ]
        prepared = [pairs for pairs in prepared if pairs]
        if not prepared:
            return 0
        frames: list[tuple[bytes, list[tuple[Hashable, int]]]] = []
        for index, pairs in enumerate(prepared):
            frames.extend(await self._build_frames(
                table, pairs, wait=wait and index == len(prepared) - 1))
        responses = await self._send_frames(frames, window=window)
        acknowledged = 0
        retry: list[list[tuple[Hashable, int]]] = []
        for (_, pairs), response in zip(frames, responses, strict=True):
            error = response.get("error")
            if (
                not response.get("ok")
                and retry_overloaded
                and isinstance(error, dict)
                and error.get("code") == "overloaded"
            ):
                retry.append(pairs)
                continue
            _raise_for_error(response)
            acknowledged += len(pairs)
        for pairs in retry:
            rebuilt = await self._build_frames(table, pairs, wait=True)
            for response in await self._send_frames(rebuilt, window=window):
                _raise_for_error(response)
            acknowledged += len(pairs)
        return acknowledged

    async def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: ingest plain items, each with count 1."""
        return await self.ingest(table, ((item, 1) for item in items),
                                 wait=wait)

    async def estimate(
        self, table: str, items: Sequence[Hashable]
    ) -> list[float]:
        """Frequency estimates for ``items`` over the acknowledged
        prefix (the server awaits its read barrier first)."""
        response = await self._call(
            "estimate", table=table,
            keys=[encode_wire_key(item) for item in items],
        )
        return [float(value) for value in response["estimates"]]

    async def estimate_rows(
        self, table: str, items: Sequence[Hashable]
    ) -> list[list[int]]:
        """Per-row signed counter readouts for ``items``, one
        depth-length list of ints per item.

        The raw integers whose per-row median is :meth:`estimate` —
        exposed for distributed scatter-gather: by §3.2 linearity the
        readouts of sharded sketches sum to the readouts of their merge,
        so a coordinator can add them across shards and take one median,
        bit-equal to a single merged sketch.  Linear-sketch tables only
        (``sketch``, ``vectorized``, ``topk``).
        """
        response = await self._call(
            "estimate_rows", table=table,
            keys=[encode_wire_key(item) for item in items],
        )
        return [[int(value) for value in row] for row in response["rows"]]

    async def topk(
        self, table: str, k: int | None = None
    ) -> list[tuple[Hashable, float]]:
        """The table's current top-k ``(item, count)`` pairs."""
        response = await self._call("topk", table=table, k=k)
        return [(decode_wire_key(key), float(count))
                for key, count in response["topk"]]

    async def stats(self, table: str | None = None) -> dict[str, Any]:
        """Per-table (or server-wide) counters and queue state."""
        return await self._call("stats", table=table)

    async def metrics(self, fmt: str = "prometheus") -> str:
        """The server's metrics export (``prometheus`` or ``json``)."""
        response = await self._call("metrics", format=fmt)
        return str(response["body"])

    async def checkpoint(self, table: str | None = None) -> int:
        """Force a snapshot now; returns bytes written."""
        response = await self._call("checkpoint", table=table)
        return int(response["bytes_written"])

    async def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        await self._call("shutdown")

    async def close(self) -> None:
        """Close the transport (the server keeps running)."""
        await self._transport.close()


class ServiceClient:
    """Synchronous facade: a private event loop on a daemon thread.

    Every method mirrors :class:`AsyncServiceClient` and blocks up to
    ``timeout`` seconds.  Usable as a context manager::

        with ServiceClient("127.0.0.1", 9431) as client:
            client.ingest("queries", [("deep learning", 3)], wait=True)
            print(client.estimate("queries", ["deep learning"]))
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0, wire: str = "auto") -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-service-client",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client = self._run(
                AsyncServiceClient.connect(host, port, wire=wire))
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coro: Any) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(self._timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    def ping(self) -> dict[str, Any]:
        """Server liveness, protocol version, and feature set."""
        return self._run(self._client.ping())

    def create_table(self, spec: TableSpec) -> bool:
        """Create a table; ``False`` when it already existed."""
        return bool(self._run(self._client.create_table(spec)))

    def drop_table(self, table: str) -> int:
        """Drop a table; returns the records it had applied."""
        return int(self._run(self._client.drop_table(table)))

    def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Send one batch of ``(item, count)`` records; returns its seq."""
        return int(self._run(self._client.ingest(table, list(records),
                                                 wait=wait)))

    def ingest_many(
        self,
        table: str,
        batches: Iterable[Iterable[tuple[Hashable, int]]],
        *,
        wait: bool = True,
        window: int = _DEFAULT_WINDOW,
        retry_overloaded: bool = True,
    ) -> int:
        """Pipelined bulk ingest; returns records acknowledged."""
        return int(self._run(self._client.ingest_many(
            table, [list(batch) for batch in batches],
            wait=wait, window=window, retry_overloaded=retry_overloaded,
        )))

    def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: ingest plain items, each with count 1."""
        return int(self._run(self._client.ingest_items(table, list(items),
                                                       wait=wait)))

    def estimate(self, table: str, items: Sequence[Hashable]) -> list[float]:
        """Frequency estimates over the acknowledged prefix."""
        return list(self._run(self._client.estimate(table, list(items))))

    def estimate_rows(
        self, table: str, items: Sequence[Hashable]
    ) -> list[list[int]]:
        """Per-row signed counter readouts (see the async docstring)."""
        return list(self._run(self._client.estimate_rows(table,
                                                         list(items))))

    def topk(self, table: str,
             k: int | None = None) -> list[tuple[Hashable, float]]:
        """The table's current top-k ``(item, count)`` pairs."""
        return list(self._run(self._client.topk(table, k)))

    def stats(self, table: str | None = None) -> dict[str, Any]:
        """Per-table (or server-wide) counters and queue state."""
        return dict(self._run(self._client.stats(table)))

    def metrics(self, fmt: str = "prometheus") -> str:
        """The server's metrics export (``prometheus`` or ``json``)."""
        return str(self._run(self._client.metrics(fmt)))

    def checkpoint(self, table: str | None = None) -> int:
        """Force a snapshot now; returns bytes written."""
        return int(self._run(self._client.checkpoint(table)))

    def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        self._run(self._client.shutdown())

    def close(self) -> None:
        """Close the transport and stop the private event loop."""
        try:
            self._run(self._client.close())
        finally:
            self._stop_loop()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
