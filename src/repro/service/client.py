"""Typed client library for the sketch service.

Three layers:

* Transports — :class:`TcpTransport` (real sockets) and
  :class:`InProcessTransport` (direct dispatch against a
  :class:`~repro.service.server.SketchServer`, round-tripping every
  message through the frame codec so tests exercise byte-level parity
  without a socket).
* :class:`AsyncServiceClient` — the async API: one method per protocol
  op, with stream keys encoded/decoded transparently and error
  responses raised as :class:`ServiceError` (or the sharper
  :class:`OverloadedError` for backpressure).
* :class:`ServiceClient` — a synchronous facade for scripts and the
  CLI: it runs a private event loop on a daemon thread and proxies
  each call with a timeout.

Backpressure contract: ``ingest`` never silently drops.  Either the
batch is acknowledged (and ``wait=True`` additionally awaits its
application), or :class:`OverloadedError` reports the full queue and
the caller decides — retry, slow down, or fail.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import TYPE_CHECKING, Any

from repro.service.protocol import (
    decode_wire_key,
    encode_wire_key,
    pack_frame,
    read_frame,
    unpack_frame,
    write_frame,
)
from repro.service.tables import TableSpec

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable, Sequence

    from repro.service.server import SketchServer

__all__ = [
    "AsyncServiceClient",
    "InProcessTransport",
    "OverloadedError",
    "ServiceClient",
    "ServiceError",
    "TcpTransport",
]


class ServiceError(Exception):
    """The server answered with an error response."""

    def __init__(self, code: str, message: str,
                 details: dict[str, Any] | None = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class OverloadedError(ServiceError):
    """The table's ingest queue was full; the batch was not enqueued."""


def _raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error")
    if not isinstance(error, dict):
        raise ServiceError("internal", f"malformed error response: "
                                       f"{response!r}")
    code = str(error.get("code", "internal"))
    message = str(error.get("message", ""))
    details = {k: v for k, v in error.items()
               if k not in ("code", "message")}
    if code == "overloaded":
        raise OverloadedError(code, message, details)
    raise ServiceError(code, message, details)


class TcpTransport:
    """One TCP connection; requests are serialized with a lock."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> TcpTransport:
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one framed request and await its framed response."""
        async with self._lock:
            await write_frame(self._writer, message)
            response = await read_frame(self._reader)
        if response is None:
            raise ServiceError(
                "internal",
                "server closed the connection before responding",
            )
        return response

    async def close(self) -> None:
        """Close the connection, tolerating an already-gone peer."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class InProcessTransport:
    """Dispatch directly against a server, through the frame codec.

    Every request and response is packed and unpacked exactly as it
    would be on a socket, so in-process tests cover the same byte path
    as TCP minus the kernel.
    """

    def __init__(self, server: SketchServer) -> None:
        self._server = server

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Dispatch against the server after a codec round-trip."""
        wire_message = unpack_frame(pack_frame(message))
        response = await self._server.dispatch(wire_message)
        return unpack_frame(pack_frame(response))

    async def close(self) -> None:
        """Nothing to release; the server is owned by the caller."""
        return None


class AsyncServiceClient:
    """Async API over a transport; one method per protocol op."""

    def __init__(self, transport: TcpTransport | InProcessTransport) -> None:
        self._transport = transport
        self._ids = itertools.count(1)

    @classmethod
    async def connect(cls, host: str, port: int) -> AsyncServiceClient:
        """Open a TCP connection to a running server."""
        return cls(await TcpTransport.connect(host, port))

    @classmethod
    def in_process(cls, server: SketchServer) -> AsyncServiceClient:
        """Attach to a server in the same event loop (tests, benches)."""
        return cls(InProcessTransport(server))

    async def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        message: dict[str, Any] = {"op": op, "id": next(self._ids)}
        for key, value in fields.items():
            if value is not None:
                message[key] = value
        return _raise_for_error(await self._transport.request(message))

    async def ping(self) -> dict[str, Any]:
        """Server liveness and protocol version."""
        return await self._call("ping")

    async def create_table(self, spec: TableSpec) -> bool:
        """Create a table; ``False`` when it already existed (same
        spec — a differing spec raises ``table_exists``)."""
        response = await self._call("create_table", spec=spec.to_dict())
        return bool(response["created"])

    async def drop_table(self, table: str) -> int:
        """Drop a table; returns the records it had applied."""
        response = await self._call("drop_table", table=table)
        return int(response["records_applied"])

    async def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Send one batch of ``(item, count)`` records; returns its
        sequence number.  ``wait=True`` returns only after the batch is
        applied (read-your-writes without a separate query)."""
        payload = [[encode_wire_key(item), int(count)]
                   for item, count in records]
        response = await self._call("ingest", table=table, records=payload,
                                    wait=wait or None)
        return int(response["seq"])

    async def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: ingest plain items, each with count 1."""
        return await self.ingest(table, ((item, 1) for item in items),
                                 wait=wait)

    async def estimate(
        self, table: str, items: Sequence[Hashable]
    ) -> list[float]:
        """Frequency estimates for ``items`` over the acknowledged
        prefix (the server awaits its read barrier first)."""
        response = await self._call(
            "estimate", table=table,
            keys=[encode_wire_key(item) for item in items],
        )
        return [float(value) for value in response["estimates"]]

    async def topk(
        self, table: str, k: int | None = None
    ) -> list[tuple[Hashable, float]]:
        """The table's current top-k ``(item, count)`` pairs."""
        response = await self._call("topk", table=table, k=k)
        return [(decode_wire_key(key), float(count))
                for key, count in response["topk"]]

    async def stats(self, table: str | None = None) -> dict[str, Any]:
        """Per-table (or server-wide) counters and queue state."""
        return await self._call("stats", table=table)

    async def metrics(self, fmt: str = "prometheus") -> str:
        """The server's metrics export (``prometheus`` or ``json``)."""
        response = await self._call("metrics", format=fmt)
        return str(response["body"])

    async def checkpoint(self, table: str | None = None) -> int:
        """Force a snapshot now; returns bytes written."""
        response = await self._call("checkpoint", table=table)
        return int(response["bytes_written"])

    async def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        await self._call("shutdown")

    async def close(self) -> None:
        """Close the transport (the server keeps running)."""
        await self._transport.close()


class ServiceClient:
    """Synchronous facade: a private event loop on a daemon thread.

    Every method mirrors :class:`AsyncServiceClient` and blocks up to
    ``timeout`` seconds.  Usable as a context manager::

        with ServiceClient("127.0.0.1", 9431) as client:
            client.ingest("queries", [("deep learning", 3)], wait=True)
            print(client.estimate("queries", ["deep learning"]))
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-service-client",
            daemon=True,
        )
        self._thread.start()
        try:
            self._client = self._run(AsyncServiceClient.connect(host, port))
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coro: Any) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(self._timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    def ping(self) -> dict[str, Any]:
        """Server liveness and protocol version."""
        return self._run(self._client.ping())

    def create_table(self, spec: TableSpec) -> bool:
        """Create a table; ``False`` when it already existed."""
        return bool(self._run(self._client.create_table(spec)))

    def drop_table(self, table: str) -> int:
        """Drop a table; returns the records it had applied."""
        return int(self._run(self._client.drop_table(table)))

    def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Send one batch of ``(item, count)`` records; returns its seq."""
        return int(self._run(self._client.ingest(table, list(records),
                                                 wait=wait)))

    def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: ingest plain items, each with count 1."""
        return int(self._run(self._client.ingest_items(table, list(items),
                                                       wait=wait)))

    def estimate(self, table: str, items: Sequence[Hashable]) -> list[float]:
        """Frequency estimates over the acknowledged prefix."""
        return list(self._run(self._client.estimate(table, list(items))))

    def topk(self, table: str,
             k: int | None = None) -> list[tuple[Hashable, float]]:
        """The table's current top-k ``(item, count)`` pairs."""
        return list(self._run(self._client.topk(table, k)))

    def stats(self, table: str | None = None) -> dict[str, Any]:
        """Per-table (or server-wide) counters and queue state."""
        return dict(self._run(self._client.stats(table)))

    def metrics(self, fmt: str = "prometheus") -> str:
        """The server's metrics export (``prometheus`` or ``json``)."""
        return str(self._run(self._client.metrics(fmt)))

    def checkpoint(self, table: str | None = None) -> int:
        """Force a snapshot now; returns bytes written."""
        return int(self._run(self._client.checkpoint(table)))

    def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        self._run(self._client.shutdown())

    def close(self) -> None:
        """Close the transport and stop the private event loop."""
        try:
            self._run(self._client.close())
        finally:
            self._stop_loop()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
