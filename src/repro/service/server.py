"""The asyncio sketch server: live tables, wire dispatch, durability.

:class:`SketchServer` owns a set of :class:`~repro.service.tables.ServiceTable`
instances and answers protocol requests either over TCP
(:meth:`~SketchServer.start` / :func:`asyncio.start_server`) or directly
through :meth:`~SketchServer.dispatch` (the in-process transport used by
tests and benchmarks — byte-level parity is exercised by round-tripping
every message through the frame codec on the client side).

Exactness contract: an ``estimate`` / ``topk`` / ``stats`` response
reflects *exactly* the records acknowledged before the query arrived —
queries await the table's read barrier, so a mid-stream answer equals
the offline summary fed the same prefix.  Ingestion never blocks on
queries; it only ever fails fast with an explicit ``overloaded`` error
when a bounded queue is full.

Durability: with a ``checkpoint_dir``, every table is wrapped in a
:class:`~repro.store.CheckpointManager`; a ``service.json`` manifest
pins the table specs so a resumed server refuses silently-different
parameters (same posture as ``ShardCheckpointStore``).  Graceful stop
drains acknowledged batches, then snapshots every table — a SIGTERM'd
server resumed from its directory is bit-for-bit the state of an
uninterrupted run over the same acknowledged records.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.observability.export import to_json, to_prometheus
from repro.observability.registry import MetricsRegistry, use_registry
from repro.service.protocol import (
    FEATURES,
    OPS,
    PROTOCOL_VERSION,
    BinaryIngest,
    WireProtocolError,
    decode_wire_key,
    encode_wire_key,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.service.tables import ServiceTable, TableOverloadedError, TableSpec
from repro.store.checkpoint import CheckpointManager, CheckpointMismatchError
from repro.store.format import SNAPSHOT_SUFFIX, StoreError, atomic_write_bytes

if TYPE_CHECKING:
    from collections.abc import Awaitable, Callable, Hashable, Iterable, Sequence

    import numpy as np

__all__ = ["MANIFEST_NAME", "SketchServer"]

#: Manifest filename inside a service checkpoint directory.
MANIFEST_NAME = "service.json"

_MANIFEST_VERSION = 1

#: Per-connection bound on responses awaiting the writer task.  Sized to
#: comfortably cover a client's pipelining window; a slow reader
#: backpressures the connection loop instead of growing without bound.
_RESPONSE_QUEUE_SIZE = 128


class _BadRequest(Exception):
    """Internal: a request failed validation (maps to ``bad_request``)."""


class _ServerMetrics:
    """Server-wide metric handles, captured once at construction."""

    __slots__ = (
        "connections_open",
        "connections_total",
        "errors",
        "request_seconds",
        "requests",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.requests = registry.counter("service_requests_total")
        self.errors = registry.counter("service_request_errors_total")
        self.request_seconds = registry.histogram("service_request_seconds")
        self.connections_open = registry.gauge("service_open_connections")
        self.connections_total = registry.counter(
            "service_connections_total")


class SketchServer:
    """A live sketch set behind the length-prefixed JSON protocol.

    Args:
        specs: tables to create (or resume) at construction.  More can
            be added at runtime via the ``create_table`` op.
        queue_capacity: per-table bound on pending ingest batches.
        max_coalesce: per-table cap on batches merged per apply call.
        checkpoint_dir: durability directory; when set, every table
            checkpoints through a :class:`CheckpointManager` and the
            spec manifest is pinned in ``service.json``.
        checkpoint_every_items: checkpoint a table after this many
            applied records (with ``checkpoint_dir``).
        checkpoint_every_seconds: checkpoint a table when this much
            wall-clock time has passed (default 30 s when a directory
            is given but neither trigger is).
        registry: metrics registry; defaults to a private
            :class:`MetricsRegistry` (the ``metrics`` op exports it).
        drain_timeout: upper bound, per table, on waiting for
            acknowledged batches to apply during :meth:`stop`.
    """

    def __init__(
        self,
        specs: Iterable[TableSpec] = (),
        *,
        queue_capacity: int = 256,
        max_coalesce: int = 64,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every_items: int | None = None,
        checkpoint_every_seconds: float | None = None,
        registry: MetricsRegistry | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._metrics = _ServerMetrics(self._registry)
        self._queue_capacity = queue_capacity
        self._max_coalesce = max_coalesce
        self._drain_timeout = drain_timeout
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._every_items = checkpoint_every_items
        self._every_seconds = checkpoint_every_seconds
        if (
            self._checkpoint_dir is not None
            and checkpoint_every_items is None
            and checkpoint_every_seconds is None
        ):
            self._every_seconds = 30.0
        self._tables: dict[str, ServiceTable] = {}
        self._appliers: dict[str, asyncio.Task[None]] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.Server | None = None
        self._accepting = True
        self._stop_task: asyncio.Task[None] | None = None
        self._stopped = asyncio.Event()
        self._manifest_lock = asyncio.Lock()

        manifest_specs = self._read_manifest()
        requested: dict[str, TableSpec] = {}
        for spec in specs:
            if spec.name in requested:
                raise ValueError(f"duplicate table name {spec.name!r}")
            requested[spec.name] = spec
        for name, spec in requested.items():
            pinned = manifest_specs.get(name)
            if pinned is not None and pinned != spec:
                raise CheckpointMismatchError(
                    f"table {name!r} was checkpointed with different "
                    f"parameters ({pinned.to_dict()}); resume with the "
                    "original spec or use a fresh directory"
                )
        merged = {**manifest_specs, **requested}
        for spec in merged.values():
            self._add_table(spec)
        if self._checkpoint_dir is not None:
            self._write_manifest()

    # -- table management -----------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The server's metrics registry."""
        return self._registry

    @property
    def tables(self) -> dict[str, ServiceTable]:
        """Live tables by name (read-only view by convention)."""
        return self._tables

    @property
    def accepting(self) -> bool:
        """Whether ingest / create ops are still accepted."""
        return self._accepting

    def _table_path(self, name: str) -> Path:
        assert self._checkpoint_dir is not None
        return self._checkpoint_dir / f"{name}{SNAPSHOT_SUFFIX}"

    def _read_manifest(self) -> dict[str, TableSpec]:
        if self._checkpoint_dir is None:
            return {}
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        path = self._checkpoint_dir / MANIFEST_NAME
        if not path.exists():
            return {}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{path} is not a valid service manifest: {error}"
            ) from error
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != _MANIFEST_VERSION
            or not isinstance(manifest.get("tables"), dict)
        ):
            raise StoreError(f"{path} is not a version-1 service manifest")
        specs: dict[str, TableSpec] = {}
        for name, payload in manifest["tables"].items():
            try:
                spec = TableSpec.from_dict(payload)
            except ValueError as error:
                raise StoreError(
                    f"{path} pins an invalid spec for table "
                    f"{name!r}: {error}"
                ) from error
            if spec.name != name:
                raise StoreError(
                    f"{path} maps key {name!r} to spec named "
                    f"{spec.name!r}; the manifest is inconsistent"
                )
            specs[name] = spec
        return specs

    def _write_manifest(self) -> None:
        if self._checkpoint_dir is None:
            return
        manifest = {
            "version": _MANIFEST_VERSION,
            "tables": {
                name: table.spec.to_dict()
                for name, table in sorted(self._tables.items())
            },
        }
        atomic_write_bytes(
            self._checkpoint_dir / MANIFEST_NAME,
            json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8"),
        )

    def _add_table(self, spec: TableSpec) -> ServiceTable:
        """Build (or resume) one table; summaries capture the server
        registry for their own instrumentation."""
        manager: CheckpointManager | None = None
        with use_registry(self._registry):
            if self._checkpoint_dir is not None:
                path = self._table_path(spec.name)
                if path.exists():
                    manager = CheckpointManager.resume(
                        path,
                        every_items=self._every_items,
                        every_seconds=self._every_seconds,
                    )
                    if not spec.matches_summary(manager.summary):
                        raise CheckpointMismatchError(
                            f"checkpoint {path} holds a "
                            f"{type(manager.summary).__name__}, but table "
                            f"{spec.name!r} is declared {spec.kind!r}"
                        )
                else:
                    manager = CheckpointManager(
                        spec.build(),
                        path,
                        every_items=self._every_items,
                        every_seconds=self._every_seconds,
                    )
            table = ServiceTable(
                spec,
                self._registry,
                queue_capacity=self._queue_capacity,
                max_coalesce=self._max_coalesce,
                manager=manager,
            )
        self._tables[spec.name] = table
        self._spawn_applier(spec.name)
        return table

    def _spawn_applier(self, name: str) -> None:
        """Start the table's applier task if a loop is running."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # started lazily on first dispatch / start()
        if name not in self._appliers:
            self._appliers[name] = loop.create_task(
                self._tables[name].run_applier(),
                name=f"repro-applier-{name}",
            )

    def _ensure_appliers(self) -> None:
        for name in self._tables:
            self._spawn_applier(name)

    # -- lifecycle ------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the TCP listener; returns the bound (host, port)."""
        self._ensure_appliers()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    def request_stop(self) -> None:
        """Schedule a graceful stop (signal-handler safe)."""
        if self._stop_task is None:
            loop = asyncio.get_running_loop()
            self._stop_task = loop.create_task(self.stop())

    async def wait_stopped(self) -> None:
        """Block until a requested stop has completed."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, snapshot, close.

        Idempotent; concurrent callers await the same completion.
        """
        if self._stopped.is_set():
            return
        if self._stop_task is not None and not self._stop_task.done():
            current = asyncio.current_task()
            if current is not self._stop_task:
                await self._stopped.wait()
                return
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for table in self._tables.values():
            try:
                await asyncio.wait_for(
                    table.wait_applied(), timeout=self._drain_timeout
                )
            except (TimeoutError, asyncio.TimeoutError):  # 3.10 alias split
                pass  # snapshot whatever has been applied
        for task in self._appliers.values():
            task.cancel()
        if self._appliers:
            await asyncio.gather(
                *self._appliers.values(), return_exceptions=True
            )
        self._appliers.clear()
        if self._checkpoint_dir is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._flush_all_tables)
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    def _flush_all_tables(self) -> None:
        """Final snapshots (appliers are stopped; state is quiescent)."""
        for table in self._tables.values():
            if table.manager is not None:
                table.manager.flush()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read loop feeding a dedicated writer task.

        Responses flow through a bounded queue drained by
        :meth:`_write_responses`, so reading the next frame never waits
        on the previous ack's ``drain()`` — that pipelining is what lets
        a client keep the applier busy with in-flight binary batches.
        Requests on one connection are still dispatched in order, and
        responses leave in dispatch order, so per-connection FIFO
        semantics are unchanged.
        """
        self._writers.add(writer)
        self._metrics.connections_total.inc()
        self._metrics.connections_open.inc()
        responses: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue(
            maxsize=_RESPONSE_QUEUE_SIZE)
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(responses, writer))
        try:
            while not writer_task.done():
                try:
                    message = await read_frame(reader)
                except WireProtocolError as error:
                    await responses.put(
                        error_response(None, "bad_frame", str(error)))
                    break
                if message is None:
                    break
                if isinstance(message, BinaryIngest):
                    await responses.put(await self.dispatch_binary(message))
                    continue
                await responses.put(await self.dispatch(message))
                if message.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Cancellation-safe teardown: flush the writer if possible,
            # but never let a cancelled handler leak the task or skip
            # the metric/socket cleanup below.
            try:
                responses.put_nowait(None)  # sentinel: flush and exit
            except asyncio.QueueFull:
                writer_task.cancel()
            try:
                await writer_task
            except asyncio.CancelledError:
                writer_task.cancel()
            self._writers.discard(writer)
            self._metrics.connections_open.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    async def _write_responses(
        self,
        responses: asyncio.Queue[dict[str, Any] | None],
        writer: asyncio.StreamWriter,
    ) -> None:
        """Drain the response queue to the socket until the sentinel.

        Keeps consuming after a write failure (discarding responses) so
        the read loop's bounded ``put`` can never deadlock against a
        dead peer.  A response the canonical codec cannot serialize —
        e.g. a ``topk`` listing a non-finite float key that arrived via
        the lossless binary path — is replaced by a ``bad_request``
        error carrying the same request id, never by a protocol
        violation on the wire.
        """
        alive = True
        while True:
            response = await responses.get()
            if response is None:
                return
            if not alive:
                continue
            try:
                await write_frame(writer, response)
            except WireProtocolError as error:
                self._metrics.errors.inc()
                fallback = error_response(
                    response.get("id"), "bad_request",
                    f"response is not representable in canonical JSON: "
                    f"{error}",
                )
                try:
                    await write_frame(writer, fallback)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    alive = False
            except (ConnectionResetError, BrokenPipeError, OSError):
                alive = False

    # -- dispatch -------------------------------------------------------------

    async def dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Answer one request message (shared by TCP and in-process)."""
        request_id = message.get("id")
        op = message.get("op")
        if not isinstance(op, str) or op not in OPS:
            self._metrics.requests.inc()
            self._metrics.errors.inc()
            return error_response(
                request_id, "bad_request",
                f"unknown op {op!r}; expected one of "
                f"{', '.join(sorted(OPS))}",
            )
        return await self._answer(
            request_id, lambda: self._dispatch_op(op, message))

    async def dispatch_binary(self, frame: BinaryIngest) -> dict[str, Any]:
        """Answer one binary ingest frame (responses are always JSON)."""
        return await self._answer(
            frame.request_id, lambda: self._binary_ingest(frame))

    async def _answer(
        self,
        request_id: object,
        runner: Callable[[], Awaitable[dict[str, Any]]],
    ) -> dict[str, Any]:
        """Run one op under the shared fault barrier and error mapping."""
        self._ensure_appliers()
        self._metrics.requests.inc()
        start = time.perf_counter()
        try:
            try:
                response = await runner()
            except _NoSuchTable as error:
                response = error_response(
                    request_id, "no_such_table", str(error))
            except (_BadRequest, WireProtocolError) as error:
                response = error_response(
                    request_id, "bad_request", str(error))
            except TableOverloadedError as error:
                response = error_response(
                    request_id, "overloaded", str(error),
                    queue_depth=error.depth, capacity=error.capacity,
                )
            except Exception as error:  # fault barrier per request
                response = error_response(
                    request_id, "internal",
                    f"{type(error).__name__}: {error}",
                )
        finally:
            self._metrics.request_seconds.observe(
                time.perf_counter() - start)
        if not response.get("ok"):
            self._metrics.errors.inc()
        return response

    async def _dispatch_op(
        self, op: str, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        if op == "ping":
            return ok_response(
                request_id,
                version=PROTOCOL_VERSION,
                features=sorted(FEATURES),
                tables=len(self._tables),
                accepting=self._accepting,
            )
        if op == "create_table":
            return await self._op_create_table(message)
        if op == "drop_table":
            return await self._op_drop_table(message)
        if op == "ingest":
            return await self._op_ingest(message)
        if op == "estimate":
            return await self._op_estimate(message)
        if op == "estimate_rows":
            return await self._op_estimate_rows(message)
        if op == "topk":
            return await self._op_topk(message)
        if op == "stats":
            return await self._op_stats(message)
        if op == "metrics":
            return self._op_metrics(message)
        if op == "checkpoint":
            return await self._op_checkpoint(message)
        # op == "shutdown": ack first; the connection loop closes after.
        self.request_stop()
        return ok_response(request_id, stopping=True)

    def _require_table(self, message: dict[str, Any]) -> ServiceTable:
        name = message.get("table")
        if not isinstance(name, str):
            raise _BadRequest("request requires a 'table' name")
        table = self._tables.get(name)
        if table is None:
            raise _NoSuchTable(name)
        return table

    async def _op_create_table(
        self, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        if not self._accepting:
            return error_response(
                request_id, "shutting_down", "server is shutting down")
        try:
            spec = TableSpec.from_dict(message.get("spec") or {})
        except (ValueError, TypeError) as error:
            raise _BadRequest(f"invalid table spec: {error}") from error
        existing = self._tables.get(spec.name)
        if existing is not None:
            if existing.spec == spec:
                return ok_response(request_id, created=False,
                                   table=spec.name)
            return error_response(
                request_id, "table_exists",
                f"table {spec.name!r} already exists with a different "
                "spec; drop it first or pick another name",
            )
        async with self._manifest_lock:
            try:
                self._add_table(spec)
            except (CheckpointMismatchError, StoreError) as error:
                return error_response(request_id, "internal", str(error))
            if self._checkpoint_dir is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self._write_manifest)
        return ok_response(request_id, created=True, table=spec.name)

    async def _op_drop_table(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        name = table.spec.name
        async with self._manifest_lock:
            await table.wait_applied()
            applier = self._appliers.pop(name, None)
            if applier is not None:
                applier.cancel()
                await asyncio.gather(applier, return_exceptions=True)
            del self._tables[name]
            if self._checkpoint_dir is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self._discard_table_files,
                                           name)
        return ok_response(request_id, dropped=True, table=name,
                           records_applied=table.records_applied)

    def _discard_table_files(self, name: str) -> None:
        path = self._table_path(name)
        if path.exists():
            path.unlink()
        self._write_manifest()

    async def _op_ingest(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        if not self._accepting:
            return error_response(
                request_id, "shutting_down",
                "server is shutting down; ingest refused",
            )
        records = message.get("records")
        if not isinstance(records, list):
            raise _BadRequest("'records' must be a list of [key, count]")
        items: list[Hashable] = []
        counts: list[int] = []
        allow_negative = table.spec.allows_negative_counts
        for index, record in enumerate(records):
            if not isinstance(record, list) or len(record) != 2:
                raise _BadRequest(
                    f"record {index} is not a [key, count] pair")
            key, count = record
            if not isinstance(count, int) or isinstance(count, bool):
                raise _BadRequest(
                    f"record {index} has a non-integer count {count!r}")
            if count == 0:
                raise _BadRequest(f"record {index} has a zero count")
            if not -(2**63) <= count < 2**63:
                # JSON carries arbitrary-precision ints, the counters do
                # not; past this boundary the count could only crash the
                # applier (and hang every read barrier behind it).
                raise _BadRequest(
                    f"record {index} has a count outside int64; "
                    "counters are 64-bit"
                )
            if count < 0 and not allow_negative:
                raise _BadRequest(
                    f"record {index} has a negative count; "
                    f"{table.spec.kind!r} tables are insert-only"
                )
            items.append(decode_wire_key(key))
            counts.append(count)
        seq = table.try_enqueue(items, counts)
        if message.get("wait"):
            await table.wait_applied(seq)
        return ok_response(request_id, queued=len(items), seq=seq,
                           applied=bool(message.get("wait")))

    async def _binary_ingest(self, frame: BinaryIngest) -> dict[str, Any]:
        """Apply one binary ingest frame through the zero-copy path.

        Raw-mode keys are 64-bit ``encode_key`` images: hash-identical
        to the original objects for every summary that hashes its input
        (``encode_key(int) == int mod 2**64``), but useless to a
        ``topk`` table, which must store the original items — those
        must use packed keys, so the mismatch is a ``bad_request``, not
        a silently wrong summary.
        """
        request_id = frame.request_id
        table = self._tables.get(frame.table)
        if table is None:
            raise _NoSuchTable(frame.table)
        if not self._accepting:
            return error_response(
                request_id, "shutting_down",
                "server is shutting down; ingest refused",
            )
        weights = frame.weights
        if weights.size:
            if bool((weights == 0).any()):
                raise _BadRequest("binary batch has a record with a "
                                  "zero count")
            if not table.spec.allows_negative_counts and bool(
                (weights < 0).any()
            ):
                raise _BadRequest(
                    "binary batch has a record with a negative count; "
                    f"{table.spec.kind!r} tables are insert-only"
                )
        items: np.ndarray | Sequence[Hashable]
        if frame.raw:
            if table.spec.kind == "topk":
                raise _BadRequest(
                    f"table {frame.table!r} is 'topk' and stores original "
                    "items; raw pre-encoded keys are lossy — send packed "
                    "keys or use the JSON protocol"
                )
            assert frame.keys is not None
            items = frame.keys
        else:
            assert frame.items is not None
            items = frame.items
        seq = table.try_enqueue(items, weights)
        if frame.wait:
            await table.wait_applied(seq)
        return ok_response(request_id, queued=len(frame), seq=seq,
                           applied=frame.wait)

    async def _op_estimate(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise _BadRequest("'keys' must be a list of wire-encoded keys")
        items = [decode_wire_key(key) for key in keys]
        await table.wait_applied()
        estimates = [float(table.summary.estimate(item)) for item in items]
        return ok_response(request_id, estimates=estimates)

    async def _op_estimate_rows(
        self, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise _BadRequest("'keys' must be a list of wire-encoded keys")
        items = [decode_wire_key(key) for key in keys]
        await table.wait_applied()
        summary = table.summary
        sketch = summary.sketch if isinstance(summary, TopKTracker) else summary
        rows: list[list[int]]
        if isinstance(sketch, VectorizedCountSketch):
            rows = [[int(v) for v in column]
                    for column in sketch.row_values_batch(items).T]
        elif isinstance(sketch, CountSketch):
            rows = [sketch.row_values(item) for item in items]
        else:
            raise _BadRequest(
                f"table {table.spec.name!r} is {table.spec.kind!r}; "
                "'estimate_rows' requires a linear sketch table "
                "(sketch, vectorized, or topk)"
            )
        return ok_response(request_id, rows=rows)

    async def _op_topk(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        if table.spec.kind != "topk":
            raise _BadRequest(
                f"table {table.spec.name!r} is {table.spec.kind!r}; "
                "'topk' requires a topk table"
            )
        k = message.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool)
                              or k < 1):
            raise _BadRequest("'k' must be a positive integer")
        await table.wait_applied()
        top = table.summary.top(k)
        return ok_response(
            request_id,
            topk=[[encode_wire_key(item), float(count)]
                  for item, count in top],
        )

    async def _op_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        if message.get("table") is not None:
            table = self._require_table(message)
            await table.wait_applied()
            return ok_response(request_id, table=table.stats())
        tables: dict[str, Any] = {}
        for name in sorted(self._tables):
            table = self._tables[name]
            await table.wait_applied()
            tables[name] = table.stats()
        return ok_response(
            request_id,
            server={
                "protocol_version": PROTOCOL_VERSION,
                "accepting": self._accepting,
                "tables": len(self._tables),
                "checkpoint_dir": (
                    str(self._checkpoint_dir)
                    if self._checkpoint_dir is not None else None
                ),
            },
            tables=tables,
        )

    def _op_metrics(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        fmt = message.get("format", "prometheus")
        if fmt == "prometheus":
            body = to_prometheus(self._registry)
        elif fmt == "json":
            body = to_json(self._registry)
        else:
            raise _BadRequest(
                f"unknown metrics format {fmt!r}; "
                "use 'prometheus' or 'json'"
            )
        return ok_response(request_id, format=fmt, body=body)

    async def _op_checkpoint(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        if self._checkpoint_dir is None:
            raise _BadRequest(
                "server has no checkpoint directory; start it with "
                "--checkpoint-dir to enable durability"
            )
        if message.get("table") is not None:
            targets = [self._require_table(message)]
        else:
            targets = [self._tables[name] for name in sorted(self._tables)]
        written = 0
        for table in targets:
            await table.wait_applied()
            # Flush runs on the loop thread on purpose: appliers mutate
            # summaries only between awaits, so serialization sees a
            # consistent record-boundary state.
            written += table.checkpoint_now()
        return ok_response(request_id, tables=len(targets),
                           bytes_written=written)


class _NoSuchTable(_BadRequest):
    """Internal: unknown table name (maps to ``no_such_table``)."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"no such table {name!r}; create it first with create_table")
        self.name = name
