"""The asyncio sketch server: live tables, wire dispatch, durability.

:class:`SketchServer` owns a set of :class:`~repro.service.tables.ServiceTable`
instances and answers protocol requests either over TCP
(:meth:`~SketchServer.start` / :func:`asyncio.start_server`) or directly
through :meth:`~SketchServer.dispatch` (the in-process transport used by
tests and benchmarks — byte-level parity is exercised by round-tripping
every message through the frame codec on the client side).

Exactness contract: an ``estimate`` / ``topk`` / ``stats`` response
reflects *exactly* the records acknowledged before the query arrived —
queries await the table's read barrier, so a mid-stream answer equals
the offline summary fed the same prefix.  Ingestion never blocks on
queries; it only ever fails fast with an explicit ``overloaded`` error
when a bounded queue is full.

Durability: with a ``checkpoint_dir``, every table is wrapped in a
:class:`~repro.store.CheckpointManager`; a ``service.json`` manifest
pins the table specs so a resumed server refuses silently-different
parameters (same posture as ``ShardCheckpointStore``).  Graceful stop
drains acknowledged batches, then snapshots every table — a SIGTERM'd
server resumed from its directory is bit-for-bit the state of an
uninterrupted run over the same acknowledged records.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.observability.export import to_json, to_prometheus
from repro.observability.registry import MetricsRegistry, use_registry
from repro.service.protocol import (
    FEATURES,
    OPS,
    PROTOCOL_VERSION,
    BinaryIngest,
    WireProtocolError,
    decode_wire_key,
    encode_wire_key,
    error_response,
    ok_response,
    read_frame,
    write_frame,
)
from repro.cache.policy import TinyLFUCache
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.service.limits import (
    ServiceLimits,
    TableQuotaExceededError,
    WeightedFairScheduler,
)
from repro.service.tables import ServiceTable, TableOverloadedError, TableSpec
from repro.store.checkpoint import CheckpointManager, CheckpointMismatchError
from repro.store.format import SNAPSHOT_SUFFIX, StoreError, atomic_write_bytes

if TYPE_CHECKING:
    from collections.abc import Awaitable, Callable, Hashable, Iterable, Sequence

    import numpy as np

__all__ = ["MANIFEST_NAME", "SketchServer"]

#: Manifest filename inside a service checkpoint directory.
MANIFEST_NAME = "service.json"

_MANIFEST_VERSION = 1

#: Per-connection bound on responses awaiting the writer task.  Sized to
#: comfortably cover a client's pipelining window; a slow reader
#: backpressures the connection loop instead of growing without bound.
_RESPONSE_QUEUE_SIZE = 128


class _BadRequest(Exception):
    """Internal: a request failed validation (maps to ``bad_request``)."""


class _ServerMetrics:
    """Server-wide metric handles, captured once at construction."""

    __slots__ = (
        "connections_open",
        "connections_total",
        "errors",
        "request_seconds",
        "requests",
        "shed_connections",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.requests = registry.counter("service_requests_total")
        self.errors = registry.counter("service_request_errors_total")
        self.request_seconds = registry.histogram("service_request_seconds")
        self.connections_open = registry.gauge("service_open_connections")
        self.connections_total = registry.counter(
            "service_connections_total")
        self.shed_connections = registry.counter(
            "service_shed_connections_total")


class _EstimateCache:
    """Read-through TinyLFU front for the ``estimate`` path (opt-in).

    Entries are keyed ``(table_name, item)`` and tagged with the
    table's ``enqueued_seq`` at compute time.  Any ingest touching the
    table bumps that sequence, so every cached entry of the table goes
    stale at once — a lookup under a newer sequence recomputes, which
    preserves the read-your-acknowledged-writes contract bit-for-bit.
    Residency is decided by the W-TinyLFU admission policy; the value
    map is pruned lazily against policy residency, so it stays within a
    small constant factor of the configured capacity.
    """

    __slots__ = ("_capacity", "_entries", "_policy", "hits", "misses")

    def __init__(self, capacity: int, registry: MetricsRegistry) -> None:
        if capacity < 2:
            raise ValueError("estimate cache capacity must be at least 2")
        self._capacity = capacity
        with use_registry(registry):
            self._policy = TinyLFUCache(capacity)
        self._entries: dict[tuple[str, Hashable], tuple[int, float]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(
        self, table: ServiceTable, items: Sequence[Hashable]
    ) -> list[float]:
        """Estimates for ``items``, served from cache where fresh.

        Runs synchronously after the caller's read barrier: the applier
        only mutates summaries between awaits, so the version captured
        here cannot move before every item is answered.
        """
        version = table.enqueued_seq
        name = table.spec.name
        out: list[float] = []
        for item in items:
            key = (name, item)
            resident = self._policy.request(key)
            entry = self._entries.get(key) if resident else None
            if entry is not None and entry[0] == version:
                self.hits += 1
                out.append(entry[1])
                continue
            self.misses += 1
            value = float(table.summary.estimate(item))
            if self._policy.contains(key):
                self._entries[key] = (version, value)
            out.append(value)
        if len(self._entries) > 2 * self._capacity:
            self._prune()
        return out

    def _prune(self) -> None:
        policy = self._policy
        self._entries = {
            key: entry for key, entry in self._entries.items()
            if policy.contains(key)
        }

    def drop_table(self, name: str) -> None:
        """Purge a dropped table's entries (its sequence restarts at 0,
        so stale values could otherwise masquerade as fresh)."""
        self._entries = {
            key: entry for key, entry in self._entries.items()
            if key[0] != name
        }

    def stats(self) -> dict[str, Any]:
        """Hit-ratio payload for the ``stats`` op."""
        requests = self.hits + self.misses
        return {
            "capacity": self._capacity,
            "entries": len(self._entries),
            "resident": len(self._policy),
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": (
                round(self.hits / requests, 6) if requests else 0.0
            ),
        }


class SketchServer:
    """A live sketch set behind the length-prefixed JSON protocol.

    Args:
        specs: tables to create (or resume) at construction.  More can
            be added at runtime via the ``create_table`` op.
        queue_capacity: per-table bound on pending ingest batches.
        max_coalesce: per-table cap on batches merged per apply call.
        checkpoint_dir: durability directory; when set, every table
            checkpoints through a :class:`CheckpointManager` and the
            spec manifest is pinned in ``service.json``.
        checkpoint_every_items: checkpoint a table after this many
            applied records (with ``checkpoint_dir``).
        checkpoint_every_seconds: checkpoint a table when this much
            wall-clock time has passed (default 30 s when a directory
            is given but neither trigger is).
        registry: metrics registry; defaults to a private
            :class:`MetricsRegistry` (the ``metrics`` op exports it).
        drain_timeout: upper bound, per table, on waiting for
            acknowledged batches to apply during :meth:`stop`.
        limits: multi-tenant hardening knobs (quotas, fairness,
            connection cap); all off by default.  With a
            ``checkpoint_dir``, limits are pinned in ``service.json``
            and a resumed server adopts the pinned set unless new
            limits are passed explicitly (explicit limits win and
            re-pin the manifest — operational tuning is overridable,
            unlike sketch parameters).
        estimate_cache: opt-in TinyLFU cache capacity for the
            ``estimate`` path; entries invalidate on any ingest
            touching their table, so answers stay bit-equal to the
            uncached path.  ``None`` (the default) disables it.
    """

    def __init__(
        self,
        specs: Iterable[TableSpec] = (),
        *,
        queue_capacity: int = 256,
        max_coalesce: int = 64,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every_items: int | None = None,
        checkpoint_every_seconds: float | None = None,
        registry: MetricsRegistry | None = None,
        drain_timeout: float = 30.0,
        limits: ServiceLimits | None = None,
        estimate_cache: int | None = None,
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._metrics = _ServerMetrics(self._registry)
        self._queue_capacity = queue_capacity
        self._max_coalesce = max_coalesce
        self._drain_timeout = drain_timeout
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._every_items = checkpoint_every_items
        self._every_seconds = checkpoint_every_seconds
        if (
            self._checkpoint_dir is not None
            and checkpoint_every_items is None
            and checkpoint_every_seconds is None
        ):
            self._every_seconds = 30.0
        self._tables: dict[str, ServiceTable] = {}
        self._appliers: dict[str, asyncio.Task[None]] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.Server | None = None
        self._accepting = True
        self._stop_task: asyncio.Task[None] | None = None
        self._stopped = asyncio.Event()
        self._manifest_lock = asyncio.Lock()

        manifest_specs, pinned_limits = self._read_manifest()
        if limits is None and pinned_limits is not None:
            limits = pinned_limits  # resumed servers keep their limits
        self._limits = limits if limits is not None else ServiceLimits()
        self._scheduler = (
            WeightedFairScheduler(self._limits.fair_quantum)
            if self._limits.fair_quantum is not None else None
        )
        self._estimate_cache = (
            _EstimateCache(estimate_cache, self._registry)
            if estimate_cache is not None else None
        )
        requested: dict[str, TableSpec] = {}
        for spec in specs:
            if spec.name in requested:
                raise ValueError(f"duplicate table name {spec.name!r}")
            requested[spec.name] = spec
        for name, spec in requested.items():
            pinned = manifest_specs.get(name)
            if pinned is not None and pinned != spec:
                raise CheckpointMismatchError(
                    f"table {name!r} was checkpointed with different "
                    f"parameters ({pinned.to_dict()}); resume with the "
                    "original spec or use a fresh directory"
                )
        merged = {**manifest_specs, **requested}
        for spec in merged.values():
            self._add_table(spec)
        if self._checkpoint_dir is not None:
            self._write_manifest()

    # -- table management -----------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The server's metrics registry."""
        return self._registry

    @property
    def tables(self) -> dict[str, ServiceTable]:
        """Live tables by name (read-only view by convention)."""
        return self._tables

    @property
    def accepting(self) -> bool:
        """Whether ingest / create ops are still accepted."""
        return self._accepting

    @property
    def limits(self) -> ServiceLimits:
        """The active hardening limits (inert when none were set)."""
        return self._limits

    def _table_path(self, name: str) -> Path:
        assert self._checkpoint_dir is not None
        return self._checkpoint_dir / f"{name}{SNAPSHOT_SUFFIX}"

    def _read_manifest(
        self,
    ) -> tuple[dict[str, TableSpec], ServiceLimits | None]:
        if self._checkpoint_dir is None:
            return {}, None
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        path = self._checkpoint_dir / MANIFEST_NAME
        if not path.exists():
            return {}, None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{path} is not a valid service manifest: {error}"
            ) from error
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != _MANIFEST_VERSION
            or not isinstance(manifest.get("tables"), dict)
        ):
            raise StoreError(f"{path} is not a version-1 service manifest")
        specs: dict[str, TableSpec] = {}
        for name, payload in manifest["tables"].items():
            try:
                spec = TableSpec.from_dict(payload)
            except ValueError as error:
                raise StoreError(
                    f"{path} pins an invalid spec for table "
                    f"{name!r}: {error}"
                ) from error
            if spec.name != name:
                raise StoreError(
                    f"{path} maps key {name!r} to spec named "
                    f"{spec.name!r}; the manifest is inconsistent"
                )
            specs[name] = spec
        pinned_limits: ServiceLimits | None = None
        if manifest.get("limits") is not None:
            try:
                pinned_limits = ServiceLimits.from_dict(manifest["limits"])
            except ValueError as error:
                raise StoreError(
                    f"{path} pins invalid service limits: {error}"
                ) from error
        return specs, pinned_limits

    def _write_manifest(self) -> None:
        if self._checkpoint_dir is None:
            return
        manifest: dict[str, Any] = {
            "version": _MANIFEST_VERSION,
            "tables": {
                name: table.spec.to_dict()
                for name, table in sorted(self._tables.items())
            },
        }
        if self._limits.enabled:
            manifest["limits"] = self._limits.to_dict()
        atomic_write_bytes(
            self._checkpoint_dir / MANIFEST_NAME,
            json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8"),
        )

    def _add_table(self, spec: TableSpec) -> ServiceTable:
        """Build (or resume) one table; summaries capture the server
        registry for their own instrumentation."""
        manager: CheckpointManager | None = None
        with use_registry(self._registry):
            if self._checkpoint_dir is not None:
                path = self._table_path(spec.name)
                if path.exists():
                    manager = CheckpointManager.resume(
                        path,
                        every_items=self._every_items,
                        every_seconds=self._every_seconds,
                    )
                    if not spec.matches_summary(manager.summary):
                        raise CheckpointMismatchError(
                            f"checkpoint {path} holds a "
                            f"{type(manager.summary).__name__}, but table "
                            f"{spec.name!r} is declared {spec.kind!r}"
                        )
                else:
                    manager = CheckpointManager(
                        spec.build(),
                        path,
                        every_items=self._every_items,
                        every_seconds=self._every_seconds,
                    )
            table = ServiceTable(
                spec,
                self._registry,
                queue_capacity=self._queue_capacity,
                max_coalesce=self._max_coalesce,
                manager=manager,
                ingest_quota=self._limits.ingest_bucket(),
                query_quota=self._limits.query_bucket(),
                scheduler=self._scheduler,
            )
        if self._scheduler is not None:
            self._scheduler.register(
                spec.name, self._limits.weight_for(spec.name))
        self._tables[spec.name] = table
        self._spawn_applier(spec.name)
        return table

    def _spawn_applier(self, name: str) -> None:
        """Start the table's applier task if a loop is running."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # started lazily on first dispatch / start()
        if name not in self._appliers:
            self._appliers[name] = loop.create_task(
                self._tables[name].run_applier(),
                name=f"repro-applier-{name}",
            )

    def _ensure_appliers(self) -> None:
        for name in self._tables:
            self._spawn_applier(name)

    # -- lifecycle ------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the TCP listener; returns the bound (host, port)."""
        self._ensure_appliers()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sockname = self._server.sockets[0].getsockname()
        return str(sockname[0]), int(sockname[1])

    def request_stop(self) -> None:
        """Schedule a graceful stop (signal-handler safe)."""
        if self._stop_task is None:
            loop = asyncio.get_running_loop()
            self._stop_task = loop.create_task(self.stop())

    async def wait_stopped(self) -> None:
        """Block until a requested stop has completed."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: refuse new work, drain, snapshot, close.

        Idempotent; concurrent callers await the same completion.
        """
        if self._stopped.is_set():
            return
        if self._stop_task is not None and not self._stop_task.done():
            current = asyncio.current_task()
            if current is not self._stop_task:
                await self._stopped.wait()
                return
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for table in self._tables.values():
            try:
                await asyncio.wait_for(
                    table.wait_applied(), timeout=self._drain_timeout
                )
            except (TimeoutError, asyncio.TimeoutError):  # 3.10 alias split
                pass  # snapshot whatever has been applied
        for task in self._appliers.values():
            task.cancel()
        if self._appliers:
            await asyncio.gather(
                *self._appliers.values(), return_exceptions=True
            )
        self._appliers.clear()
        if self._checkpoint_dir is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._flush_all_tables)
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    def _flush_all_tables(self) -> None:
        """Final snapshots (appliers are stopped; state is quiescent)."""
        for table in self._tables.values():
            if table.manager is not None:
                table.manager.flush()

    # -- connection handling --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read loop feeding a dedicated writer task.

        Responses flow through a bounded queue drained by
        :meth:`_write_responses`, so reading the next frame never waits
        on the previous ack's ``drain()`` — that pipelining is what lets
        a client keep the applier busy with in-flight binary batches.
        Requests on one connection are still dispatched in order, and
        responses leave in dispatch order, so per-connection FIFO
        semantics are unchanged.
        """
        limit = self._limits.max_connections
        if limit is not None and len(self._writers) >= limit:
            await self._shed_connection(writer, limit)
            return
        self._writers.add(writer)
        self._metrics.connections_total.inc()
        self._metrics.connections_open.inc()
        responses: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue(
            maxsize=_RESPONSE_QUEUE_SIZE)
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(responses, writer))
        try:
            while not writer_task.done():
                try:
                    message = await read_frame(reader)
                except WireProtocolError as error:
                    await responses.put(
                        error_response(None, "bad_frame", str(error)))
                    break
                if message is None:
                    break
                if isinstance(message, BinaryIngest):
                    await responses.put(await self.dispatch_binary(message))
                    continue
                await responses.put(await self.dispatch(message))
                if message.get("op") == "shutdown":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Teardown must be unconditional: a peer vanishing
            # mid-pipeline (or a cancelled handler) leaves the writer
            # task holding queued acks for a dead socket.  Reap the
            # task on *every* path — including it having died on an
            # unexpected exception — and never skip the metric/socket
            # cleanup, so one connection's failure cannot taint the
            # writer set or the open-connections gauge other
            # connections (and the shed check above) depend on.
            try:
                try:
                    responses.put_nowait(None)  # sentinel: flush and exit
                except asyncio.QueueFull:
                    # A full queue means acks for a peer that stopped
                    # reading; drop them with the task.
                    writer_task.cancel()
                try:
                    await writer_task
                except asyncio.CancelledError:
                    # Either the task was cancelled just above, or this
                    # handler is itself being cancelled; make sure the
                    # task is cancelled too, then continue cleanup.
                    writer_task.cancel()
                except Exception:
                    # The writer task died unexpectedly; its queued
                    # acks are gone (the peer is too), but cleanup —
                    # and every other connection — must proceed.
                    pass
            finally:
                self._writers.discard(writer)
                self._metrics.connections_open.dec()
                writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError,
                    BrokenPipeError, OSError):
                pass

    async def _shed_connection(
        self, writer: asyncio.StreamWriter, limit: int
    ) -> None:
        """Refuse a connection beyond ``max_connections``.

        The documented contract: the server writes exactly one
        ``overloaded`` error frame (no request id — no request was
        read) and closes.  A client's first request on the shed
        connection therefore fails with an explicit
        ``OverloadedError``, never a bare reset.
        """
        self._metrics.shed_connections.inc()
        try:
            await write_frame(writer, error_response(
                None, "overloaded",
                f"connection limit reached ({limit} open); retry later "
                "or against another replica",
                open_connections=limit,
            ))
        except (ConnectionResetError, BrokenPipeError, OSError,
                WireProtocolError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _write_responses(
        self,
        responses: asyncio.Queue[dict[str, Any] | None],
        writer: asyncio.StreamWriter,
    ) -> None:
        """Drain the response queue to the socket until the sentinel.

        Keeps consuming after a write failure (discarding responses) so
        the read loop's bounded ``put`` can never deadlock against a
        dead peer.  A response the canonical codec cannot serialize —
        e.g. a ``topk`` listing a non-finite float key that arrived via
        the lossless binary path — is replaced by a ``bad_request``
        error carrying the same request id, never by a protocol
        violation on the wire.
        """
        alive = True
        while True:
            response = await responses.get()
            if response is None:
                return
            if not alive:
                continue
            try:
                await write_frame(writer, response)
            except WireProtocolError as error:
                self._metrics.errors.inc()
                fallback = error_response(
                    response.get("id"), "bad_request",
                    f"response is not representable in canonical JSON: "
                    f"{error}",
                )
                try:
                    await write_frame(writer, fallback)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    alive = False
            except (ConnectionResetError, BrokenPipeError, OSError):
                alive = False

    # -- dispatch -------------------------------------------------------------

    async def dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Answer one request message (shared by TCP and in-process)."""
        request_id = message.get("id")
        op = message.get("op")
        if not isinstance(op, str) or op not in OPS:
            self._metrics.requests.inc()
            self._metrics.errors.inc()
            return error_response(
                request_id, "bad_request",
                f"unknown op {op!r}; expected one of "
                f"{', '.join(sorted(OPS))}",
            )
        return await self._answer(
            request_id, lambda: self._dispatch_op(op, message))

    async def dispatch_binary(self, frame: BinaryIngest) -> dict[str, Any]:
        """Answer one binary ingest frame (responses are always JSON)."""
        return await self._answer(
            frame.request_id, lambda: self._binary_ingest(frame))

    async def _answer(
        self,
        request_id: object,
        runner: Callable[[], Awaitable[dict[str, Any]]],
    ) -> dict[str, Any]:
        """Run one op under the shared fault barrier and error mapping."""
        self._ensure_appliers()
        self._metrics.requests.inc()
        start = time.perf_counter()
        try:
            try:
                response = await runner()
            except _NoSuchTable as error:
                response = error_response(
                    request_id, "no_such_table", str(error))
            except (_BadRequest, WireProtocolError) as error:
                response = error_response(
                    request_id, "bad_request", str(error))
            except TableOverloadedError as error:
                response = error_response(
                    request_id, "overloaded", str(error),
                    queue_depth=error.depth, capacity=error.capacity,
                )
            except TableQuotaExceededError as error:
                fields: dict[str, Any] = {
                    "table": error.name, "op_kind": error.op_kind,
                }
                if error.retry_after is not None:
                    fields["retry_after"] = round(error.retry_after, 6)
                response = error_response(
                    request_id, "quota_exceeded", str(error), **fields)
            except Exception as error:  # fault barrier per request
                response = error_response(
                    request_id, "internal",
                    f"{type(error).__name__}: {error}",
                )
        finally:
            self._metrics.request_seconds.observe(
                time.perf_counter() - start)
        if not response.get("ok"):
            self._metrics.errors.inc()
        return response

    async def _dispatch_op(
        self, op: str, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        if op == "ping":
            return ok_response(
                request_id,
                version=PROTOCOL_VERSION,
                features=sorted(FEATURES),
                tables=len(self._tables),
                accepting=self._accepting,
            )
        if op == "create_table":
            return await self._op_create_table(message)
        if op == "drop_table":
            return await self._op_drop_table(message)
        if op == "ingest":
            return await self._op_ingest(message)
        if op == "estimate":
            return await self._op_estimate(message)
        if op == "estimate_rows":
            return await self._op_estimate_rows(message)
        if op == "topk":
            return await self._op_topk(message)
        if op == "stats":
            return await self._op_stats(message)
        if op == "metrics":
            return self._op_metrics(message)
        if op == "checkpoint":
            return await self._op_checkpoint(message)
        # op == "shutdown": ack first; the connection loop closes after.
        self.request_stop()
        return ok_response(request_id, stopping=True)

    def _require_table(self, message: dict[str, Any]) -> ServiceTable:
        name = message.get("table")
        if not isinstance(name, str):
            raise _BadRequest("request requires a 'table' name")
        table = self._tables.get(name)
        if table is None:
            raise _NoSuchTable(name)
        return table

    async def _op_create_table(
        self, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        if not self._accepting:
            return error_response(
                request_id, "shutting_down", "server is shutting down")
        try:
            spec = TableSpec.from_dict(message.get("spec") or {})
        except (ValueError, TypeError) as error:
            raise _BadRequest(f"invalid table spec: {error}") from error
        existing = self._tables.get(spec.name)
        if existing is not None:
            if existing.spec == spec:
                return ok_response(request_id, created=False,
                                   table=spec.name)
            return error_response(
                request_id, "table_exists",
                f"table {spec.name!r} already exists with a different "
                "spec; drop it first or pick another name",
            )
        async with self._manifest_lock:
            try:
                self._add_table(spec)
            except (CheckpointMismatchError, StoreError) as error:
                return error_response(request_id, "internal", str(error))
            if self._checkpoint_dir is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self._write_manifest)
        return ok_response(request_id, created=True, table=spec.name)

    async def _op_drop_table(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        name = table.spec.name
        async with self._manifest_lock:
            await table.wait_applied()
            applier = self._appliers.pop(name, None)
            if applier is not None:
                applier.cancel()
                await asyncio.gather(applier, return_exceptions=True)
            del self._tables[name]
            if self._scheduler is not None:
                self._scheduler.forget(name)
            if self._estimate_cache is not None:
                self._estimate_cache.drop_table(name)
            if self._checkpoint_dir is not None:
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, self._discard_table_files,
                                           name)
        return ok_response(request_id, dropped=True, table=name,
                           records_applied=table.records_applied)

    def _discard_table_files(self, name: str) -> None:
        path = self._table_path(name)
        if path.exists():
            path.unlink()
        self._write_manifest()

    async def _op_ingest(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        if not self._accepting:
            return error_response(
                request_id, "shutting_down",
                "server is shutting down; ingest refused",
            )
        records = message.get("records")
        if not isinstance(records, list):
            raise _BadRequest("'records' must be a list of [key, count]")
        items: list[Hashable] = []
        counts: list[int] = []
        allow_negative = table.spec.allows_negative_counts
        for index, record in enumerate(records):
            if not isinstance(record, list) or len(record) != 2:
                raise _BadRequest(
                    f"record {index} is not a [key, count] pair")
            key, count = record
            if not isinstance(count, int) or isinstance(count, bool):
                raise _BadRequest(
                    f"record {index} has a non-integer count {count!r}")
            if count == 0:
                raise _BadRequest(f"record {index} has a zero count")
            if not -(2**63) <= count < 2**63:
                # JSON carries arbitrary-precision ints, the counters do
                # not; past this boundary the count could only crash the
                # applier (and hang every read barrier behind it).
                raise _BadRequest(
                    f"record {index} has a count outside int64; "
                    "counters are 64-bit"
                )
            if count < 0 and not allow_negative:
                raise _BadRequest(
                    f"record {index} has a negative count; "
                    f"{table.spec.kind!r} tables are insert-only"
                )
            items.append(decode_wire_key(key))
            counts.append(count)
        seq = table.try_enqueue(items, counts)
        if message.get("wait"):
            await table.wait_applied(seq)
        return ok_response(request_id, queued=len(items), seq=seq,
                           applied=bool(message.get("wait")))

    async def _binary_ingest(self, frame: BinaryIngest) -> dict[str, Any]:
        """Apply one binary ingest frame through the zero-copy path.

        Raw-mode keys are 64-bit ``encode_key`` images: hash-identical
        to the original objects for every summary that hashes its input
        (``encode_key(int) == int mod 2**64``), but useless to a
        ``topk`` table, which must store the original items — those
        must use packed keys, so the mismatch is a ``bad_request``, not
        a silently wrong summary.
        """
        request_id = frame.request_id
        table = self._tables.get(frame.table)
        if table is None:
            raise _NoSuchTable(frame.table)
        if not self._accepting:
            return error_response(
                request_id, "shutting_down",
                "server is shutting down; ingest refused",
            )
        weights = frame.weights
        if weights.size:
            if bool((weights == 0).any()):
                raise _BadRequest("binary batch has a record with a "
                                  "zero count")
            if not table.spec.allows_negative_counts and bool(
                (weights < 0).any()
            ):
                raise _BadRequest(
                    "binary batch has a record with a negative count; "
                    f"{table.spec.kind!r} tables are insert-only"
                )
        items: np.ndarray | Sequence[Hashable]
        if frame.raw:
            if table.spec.kind == "topk":
                raise _BadRequest(
                    f"table {frame.table!r} is 'topk' and stores original "
                    "items; raw pre-encoded keys are lossy — send packed "
                    "keys or use the JSON protocol"
                )
            assert frame.keys is not None
            items = frame.keys
        else:
            assert frame.items is not None
            items = frame.items
        seq = table.try_enqueue(items, weights)
        if frame.wait:
            await table.wait_applied(seq)
        return ok_response(request_id, queued=len(frame), seq=seq,
                           applied=frame.wait)

    async def _op_estimate(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise _BadRequest("'keys' must be a list of wire-encoded keys")
        items = [decode_wire_key(key) for key in keys]
        table.charge_query()
        await table.wait_applied()
        if self._estimate_cache is not None:
            estimates = self._estimate_cache.lookup(table, items)
        else:
            estimates = [float(table.summary.estimate(item))
                         for item in items]
        return ok_response(request_id, estimates=estimates)

    async def _op_estimate_rows(
        self, message: dict[str, Any]
    ) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        keys = message.get("keys")
        if not isinstance(keys, list):
            raise _BadRequest("'keys' must be a list of wire-encoded keys")
        items = [decode_wire_key(key) for key in keys]
        table.charge_query()
        await table.wait_applied()
        summary = table.summary
        sketch = summary.sketch if isinstance(summary, TopKTracker) else summary
        rows: list[list[int]]
        if isinstance(sketch, VectorizedCountSketch):
            rows = [[int(v) for v in column]
                    for column in sketch.row_values_batch(items).T]
        elif isinstance(sketch, CountSketch):
            rows = [sketch.row_values(item) for item in items]
        else:
            raise _BadRequest(
                f"table {table.spec.name!r} is {table.spec.kind!r}; "
                "'estimate_rows' requires a linear sketch table "
                "(sketch, vectorized, or topk)"
            )
        return ok_response(request_id, rows=rows)

    async def _op_topk(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        table = self._require_table(message)
        if table.spec.kind != "topk":
            raise _BadRequest(
                f"table {table.spec.name!r} is {table.spec.kind!r}; "
                "'topk' requires a topk table"
            )
        k = message.get("k")
        if k is not None and (not isinstance(k, int) or isinstance(k, bool)
                              or k < 1):
            raise _BadRequest("'k' must be a positive integer")
        table.charge_query()
        await table.wait_applied()
        top = table.summary.top(k)
        return ok_response(
            request_id,
            topk=[[encode_wire_key(item), float(count)]
                  for item, count in top],
        )

    async def _op_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        if message.get("table") is not None:
            table = self._require_table(message)
            await table.wait_applied()
            return ok_response(request_id, table=table.stats())
        tables: dict[str, Any] = {}
        for name in sorted(self._tables):
            table = self._tables[name]
            await table.wait_applied()
            tables[name] = table.stats()
        server: dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "accepting": self._accepting,
            "tables": len(self._tables),
            "checkpoint_dir": (
                str(self._checkpoint_dir)
                if self._checkpoint_dir is not None else None
            ),
        }
        if self._limits.enabled:
            server["limits"] = self._limits.to_dict()
        if self._estimate_cache is not None:
            server["estimate_cache"] = self._estimate_cache.stats()
        return ok_response(request_id, server=server, tables=tables)

    def _op_metrics(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        fmt = message.get("format", "prometheus")
        if fmt == "prometheus":
            body = to_prometheus(self._registry)
        elif fmt == "json":
            body = to_json(self._registry)
        else:
            raise _BadRequest(
                f"unknown metrics format {fmt!r}; "
                "use 'prometheus' or 'json'"
            )
        return ok_response(request_id, format=fmt, body=body)

    async def _op_checkpoint(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = message.get("id")
        if self._checkpoint_dir is None:
            raise _BadRequest(
                "server has no checkpoint directory; start it with "
                "--checkpoint-dir to enable durability"
            )
        if message.get("table") is not None:
            targets = [self._require_table(message)]
        else:
            targets = [self._tables[name] for name in sorted(self._tables)]
        written = 0
        for table in targets:
            await table.wait_applied()
            # Flush runs on the loop thread on purpose: appliers mutate
            # summaries only between awaits, so serialization sees a
            # consistent record-boundary state.
            written += table.checkpoint_now()
        return ok_response(request_id, tables=len(targets),
                           bytes_written=written)


class _NoSuchTable(_BadRequest):
    """Internal: unknown table name (maps to ``no_such_table``)."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"no such table {name!r}; create it first with create_table")
        self.name = name
