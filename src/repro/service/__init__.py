"""Online serving for Count Sketch summaries.

The paper's motivating feeds — search-query logs (§1), router packet
flows — are live streams queried *while* ingestion continues.  This
package is that shape: a long-running asyncio server owning named
"tables" (dense / vectorized / top-k / jumping-window summaries),
absorbing batched ingest over a length-prefixed JSON protocol, and
answering ``estimate`` / ``topk`` / ``stats`` concurrently with exact
read-your-acknowledged-writes semantics.

Entry points:

* :class:`SketchServer` — the server core (TCP or in-process).
* :class:`AsyncServiceClient` / :class:`ServiceClient` — the typed
  client library (async core, sync facade).
* :class:`TableSpec` — declarative table descriptions, pinned in the
  durability manifest.
* CLI: ``repro serve`` / ``repro query``.

See ``docs/service.md`` for the protocol specification, backpressure
semantics, and durability guarantees.
"""

from repro.service.client import (
    AsyncServiceClient,
    InProcessTransport,
    OverloadedError,
    QuotaExceededError,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    TcpTransport,
)
from repro.service.limits import (
    ServiceLimits,
    TableQuotaExceededError,
    TokenBucket,
    WeightedFairScheduler,
)
from repro.service.protocol import (
    FEATURE_BINARY_INGEST,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BinaryIngest,
    FrameTooLargeError,
    WireProtocolError,
    decode_wire_key,
    encode_wire_key,
    normalize_key,
    pack_binary_ingest,
    pack_frame,
    pack_key,
    read_frame,
    unpack_frame,
    unpack_key,
    write_frame,
)
from repro.service.server import MANIFEST_NAME, SketchServer
from repro.service.tables import (
    TABLE_KINDS,
    ServiceTable,
    TableOverloadedError,
    TableSpec,
)

__all__ = [
    "FEATURE_BINARY_INGEST",
    "MANIFEST_NAME",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "TABLE_KINDS",
    "AsyncServiceClient",
    "BinaryIngest",
    "FrameTooLargeError",
    "InProcessTransport",
    "OverloadedError",
    "QuotaExceededError",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceLimits",
    "ServiceTable",
    "SketchServer",
    "TableOverloadedError",
    "TableQuotaExceededError",
    "TableSpec",
    "TcpTransport",
    "TokenBucket",
    "WeightedFairScheduler",
    "WireProtocolError",
    "decode_wire_key",
    "encode_wire_key",
    "normalize_key",
    "pack_binary_ingest",
    "pack_frame",
    "pack_key",
    "read_frame",
    "unpack_frame",
    "unpack_key",
    "write_frame",
]
