"""Table specs and live tables for the sketch service.

A *table* is one named summary owned by a running
:class:`~repro.service.server.SketchServer`:

* :class:`TableSpec` — the immutable, JSON-serializable description of
  a table (kind + sketch parameters).  Specs are pinned in the service
  manifest so a resumed server refuses to reinterpret old snapshots
  under different parameters.
* :class:`ServiceTable` — the runtime object: the summary itself, a
  bounded ingest queue, the applier coroutine that drains it in
  micro-batches, a read barrier so queries see exactly the prefix
  acknowledged so far, and per-table metric handles.

Concurrency model: everything runs on one event loop.  Ingest requests
validate, enqueue, and return; the applier task applies batches between
awaits.  Queries await the read barrier (``applied_seq >= seq at query
arrival``), then read the summary directly — safe because applies and
reads interleave only at await points, never mid-update.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.service.limits import (
    TableQuotaExceededError,
    TokenBucket,
    WeightedFairScheduler,
)
from repro.store.checkpoint import CheckpointManager, apply_update_batch

if TYPE_CHECKING:
    from collections.abc import Hashable, Sequence

    from repro.observability.registry import MetricsRegistry
    from repro.store.codec import Snapshotable

__all__ = [
    "TABLE_KINDS",
    "ServiceTable",
    "TableOverloadedError",
    "TableSpec",
]

#: Summary kinds a table may select.
TABLE_KINDS = ("sketch", "vectorized", "topk", "window")

_KIND_TYPES: dict[str, type] = {
    "sketch": CountSketch,
    "vectorized": VectorizedCountSketch,
    "topk": TopKTracker,
    "window": JumpingWindowSketch,
}

#: Table names double as snapshot filenames and metric-name segments.
_NAME_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_-]{0,63}$")


class TableOverloadedError(Exception):
    """The table's ingest queue is full; the batch was NOT enqueued."""

    def __init__(self, name: str, depth: int, capacity: int) -> None:
        super().__init__(
            f"table {name!r} ingest queue is full "
            f"({depth}/{capacity} batches); retry after a query "
            "barrier or slow the producer"
        )
        self.name = name
        self.depth = depth
        self.capacity = capacity


@dataclass(frozen=True)
class TableSpec:
    """Immutable description of one service table.

    ``k`` applies to ``topk`` tables only; ``window`` / ``buckets`` to
    ``window`` tables only.  Irrelevant fields keep their defaults so
    specs compare and serialize canonically.
    """

    name: str
    kind: str = "sketch"
    depth: int = 5
    width: int = 512
    seed: int = 0
    k: int = 10
    window: int = 4096
    buckets: int = 8

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"invalid table name {self.name!r}: use 1-64 characters "
                "from [A-Za-z0-9_-], not starting with '-'"
            )
        if self.kind not in TABLE_KINDS:
            raise ValueError(
                f"unknown table kind {self.kind!r}; "
                f"choose one of {', '.join(TABLE_KINDS)}"
            )
        for label in ("depth", "width", "k", "window", "buckets"):
            value = getattr(self, label)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{label} must be an integer")
            if value < 1:
                raise ValueError(f"{label} must be at least 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an integer")

    def build(self) -> Snapshotable:
        """Construct a fresh, empty summary for this spec."""
        if self.kind == "sketch":
            return CountSketch(self.depth, self.width, seed=self.seed)
        if self.kind == "vectorized":
            return VectorizedCountSketch(self.depth, self.width,
                                         seed=self.seed)
        if self.kind == "topk":
            return TopKTracker(self.k, depth=self.depth, width=self.width,
                               seed=self.seed)
        return JumpingWindowSketch(self.window, buckets=self.buckets,
                                   depth=self.depth, width=self.width,
                                   seed=self.seed)

    def matches_summary(self, summary: Snapshotable) -> bool:
        """Whether a restored summary is of this spec's kind."""
        return type(summary) is _KIND_TYPES[self.kind]

    @property
    def allows_negative_counts(self) -> bool:
        """Turnstile deletions are linear-sketch-only (§3.2); top-k
        admission and window rotation are insert-ordered."""
        return self.kind in ("sketch", "vectorized")

    def to_dict(self) -> dict[str, Any]:
        """JSON-representable form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "depth": self.depth,
            "width": self.width,
            "seed": self.seed,
            "k": self.k,
            "window": self.window,
            "buckets": self.buckets,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> TableSpec:
        """Validate and build a spec from its wire/manifest form."""
        if not isinstance(payload, dict):
            raise ValueError("table spec must be an object")
        unknown = set(payload) - {
            "name", "kind", "depth", "width", "seed", "k", "window",
            "buckets",
        }
        if unknown:
            raise ValueError(
                f"unknown table spec field(s): {', '.join(sorted(unknown))}"
            )
        if "name" not in payload:
            raise ValueError("table spec requires a name")
        name = payload["name"]
        if not isinstance(name, str):
            raise ValueError("table name must be a string")
        kwargs: dict[str, Any] = {"name": name}
        for label in ("kind",):
            if label in payload:
                value = payload[label]
                if not isinstance(value, str):
                    raise ValueError(f"{label} must be a string")
                kwargs[label] = value
        for label in ("depth", "width", "seed", "k", "window", "buckets"):
            if label in payload:
                kwargs[label] = payload[label]
        return cls(**kwargs)


class _TableMetrics:
    """Per-table metric handles, captured once at table construction."""

    __slots__ = (
        "applied_batches",
        "applied_records",
        "apply_seconds",
        "fair_turns",
        "ingested_batches",
        "ingested_records",
        "overloads",
        "queue_depth",
        "quota_ingest_refusals",
        "quota_query_refusals",
    )

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        prefix = f"service_table_{name}"
        self.ingested_records = registry.counter(
            f"{prefix}_ingested_records_total")
        self.ingested_batches = registry.counter(
            f"{prefix}_ingested_batches_total")
        self.applied_records = registry.counter(
            f"{prefix}_applied_records_total")
        self.applied_batches = registry.counter(
            f"{prefix}_applied_batches_total")
        self.overloads = registry.counter(f"{prefix}_overloads_total")
        self.queue_depth = registry.gauge(f"{prefix}_queue_depth")
        self.apply_seconds = registry.histogram(f"{prefix}_apply_seconds")
        self.quota_ingest_refusals = registry.counter(
            f"service_quota_{name}_ingest_refusals_total")
        self.quota_query_refusals = registry.counter(
            f"service_quota_{name}_query_refusals_total")
        self.fair_turns = registry.counter(
            f"service_quota_{name}_fair_turns_total")


@dataclass
class _Batch:
    """One acknowledged ingest batch, awaiting application.

    ``items`` is either decoded stream objects (JSON / packed-binary
    ingest) or a ``uint64`` ndarray of pre-encoded keys (raw-binary
    ingest); ``counts`` is an ``int64`` ndarray exactly when ``items``
    is an ndarray.
    """

    seq: int
    items: list[Hashable] | np.ndarray
    counts: list[int] | np.ndarray


def _merge_runs(
    batches: list[_Batch],
) -> list[tuple[list[Hashable] | np.ndarray, list[int] | np.ndarray]]:
    """Coalesce consecutive same-representation batches into apply units.

    Merging only adjacent batches keeps the applied record order equal
    to the acknowledged order even when ndarray (binary) and list
    (JSON) ingest interleave on one table.
    """
    if len(batches) == 1:
        return [(batches[0].items, batches[0].counts)]
    runs: list[tuple[bool, list[_Batch]]] = []
    for batch in batches:
        is_array = isinstance(batch.items, np.ndarray)
        if runs and runs[-1][0] == is_array:
            runs[-1][1].append(batch)
        else:
            runs.append((is_array, [batch]))
    merged: list[
        tuple[list[Hashable] | np.ndarray, list[int] | np.ndarray]
    ] = []
    for is_array, run in runs:
        if len(run) == 1:
            merged.append((run[0].items, run[0].counts))
        elif is_array:
            merged.append((
                np.concatenate([batch.items for batch in run]),
                np.concatenate([batch.counts for batch in run]),
            ))
        else:
            items: list[Hashable] = []
            counts: list[int] = []
            for batch in run:
                items.extend(batch.items)
                counts.extend(batch.counts)
            merged.append((items, counts))
    return merged


class ServiceTable:
    """One live summary plus its ingest queue and read barrier.

    Args:
        spec: the table's pinned description.
        registry: metrics registry (handles captured here, per RS003).
        queue_capacity: maximum pending ingest batches before
            :meth:`try_enqueue` raises :class:`TableOverloadedError`.
        max_coalesce: upper bound on batches merged into one apply call.
        manager: optional checkpoint manager wrapping the summary; when
            present it owns durability and the records-applied count.
        summary: pre-built summary (used on resume); defaults to
            ``spec.build()``.
        records_applied: stream records already reflected in ``summary``
            (resume); ignored when ``manager`` is given (the manager's
            ``items_consumed`` is authoritative).
        ingest_quota: optional per-table ingest token bucket; an empty
            bucket turns :meth:`try_enqueue` into an explicit
            :class:`TableQuotaExceededError` refusal.
        query_quota: optional per-table query token bucket charged by
            :meth:`charge_query` before every data-plane query.
        scheduler: optional weighted-fair turn scheduler shared across
            the server's appliers; ``None`` drains exactly as before.
    """

    def __init__(
        self,
        spec: TableSpec,
        registry: MetricsRegistry,
        *,
        queue_capacity: int = 256,
        max_coalesce: int = 64,
        manager: CheckpointManager | None = None,
        summary: Snapshotable | None = None,
        records_applied: int = 0,
        ingest_quota: TokenBucket | None = None,
        query_quota: TokenBucket | None = None,
        scheduler: WeightedFairScheduler | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if max_coalesce < 1:
            raise ValueError("max_coalesce must be at least 1")
        self.spec = spec
        if manager is not None:
            self.summary = manager.summary
        elif summary is not None:
            self.summary = summary
        else:
            self.summary = spec.build()
        if not spec.matches_summary(self.summary):
            raise ValueError(
                f"table {spec.name!r} expects a {spec.kind!r} summary, "
                f"got {type(self.summary).__name__}"
            )
        self._manager = manager
        self._queue: asyncio.Queue[_Batch] = asyncio.Queue(
            maxsize=queue_capacity)
        self._capacity = queue_capacity
        self._max_coalesce = max_coalesce
        self._enqueued_seq = 0
        self._applied_seq = 0
        self._records_applied = (
            manager.items_consumed if manager is not None else records_applied
        )
        self._applied = asyncio.Condition()
        self._paused = asyncio.Event()
        self._paused.set()  # set == running; clear == paused
        self._ingest_quota = ingest_quota
        self._query_quota = query_quota
        self._scheduler = scheduler
        self._metrics = _TableMetrics(registry, spec.name)

    # -- ingest side ----------------------------------------------------------

    @property
    def enqueued_seq(self) -> int:
        """Sequence number of the newest acknowledged batch."""
        return self._enqueued_seq

    @property
    def applied_seq(self) -> int:
        """Sequence number of the newest applied batch."""
        return self._applied_seq

    @property
    def records_applied(self) -> int:
        """Stream records reflected in the summary (incl. resumed)."""
        return self._records_applied

    @property
    def queue_depth(self) -> int:
        """Pending (acknowledged, unapplied) batches."""
        return self._queue.qsize()

    @property
    def manager(self) -> CheckpointManager | None:
        """The checkpoint manager, when durability is configured."""
        return self._manager

    def try_enqueue(
        self,
        items: Sequence[Hashable] | np.ndarray,
        counts: Sequence[int] | np.ndarray,
    ) -> int:
        """Enqueue one validated batch; returns its sequence number.

        All-or-nothing: on overload the batch is rejected whole and
        :class:`TableOverloadedError` carries the queue state — callers
        surface it as an explicit ``overloaded`` response, never a
        silent drop.

        NumPy arrays are enqueued as-is (the raw-binary zero-copy path:
        a ``uint64`` key array plus its ``int64`` weights); list inputs
        are copied defensively as before.
        """
        if len(items) != len(counts):
            raise ValueError("items and counts must have the same length")
        if self._ingest_quota is not None and not (
            self._ingest_quota.try_take(len(items))
        ):
            self._metrics.quota_ingest_refusals.inc()
            raise TableQuotaExceededError(
                self.spec.name, "ingest", len(items),
                self._ingest_quota.retry_after(len(items)),
            )
        kept_items: list[Hashable] | np.ndarray
        kept_counts: list[int] | np.ndarray
        if isinstance(items, np.ndarray):
            kept_items = items
            kept_counts = np.ascontiguousarray(counts, dtype=np.int64)
        else:
            kept_items = list(items)
            kept_counts = (
                counts.tolist() if isinstance(counts, np.ndarray)
                else list(counts)
            )
        batch = _Batch(self._enqueued_seq + 1, kept_items, kept_counts)
        try:
            self._queue.put_nowait(batch)
        except asyncio.QueueFull:
            self._metrics.overloads.inc()
            raise TableOverloadedError(
                self.spec.name, self._queue.qsize(), self._capacity
            ) from None
        self._enqueued_seq = batch.seq
        self._metrics.ingested_batches.inc()
        self._metrics.ingested_records.inc(len(batch.items))
        self._metrics.queue_depth.set(self._queue.qsize())
        return batch.seq

    def charge_query(self) -> None:
        """Charge one query against the table's query quota, if any.

        Called by the server *before* the read barrier, so a refused
        query costs no applier work and the refusal pattern depends
        only on the arrival schedule.
        """
        if self._query_quota is not None and not self._query_quota.try_take(1):
            self._metrics.quota_query_refusals.inc()
            raise TableQuotaExceededError(
                self.spec.name, "query", 1,
                self._query_quota.retry_after(1),
            )

    # -- applier side ---------------------------------------------------------

    async def run_applier(self) -> None:
        """Drain the queue forever, applying micro-batches in order.

        Runs as one task per table; cancelled at shutdown after a drain
        barrier, so cancellation never loses acknowledged records.

        With a fair scheduler, every apply cycle first acquires a
        weighted turn; its record budget caps coalescing so one hot
        table cannot glue its whole deep queue into a single
        loop-blocking apply while other tables' ready batches wait.
        The first batch always applies whole even when it alone
        exceeds the budget (batches are the atomic ack unit).
        """
        while True:
            batch = await self._queue.get()
            await self._paused.wait()
            budget: int | None = None
            if self._scheduler is not None:
                budget = await self._scheduler.acquire(self.spec.name)
                self._metrics.fair_turns.inc()
            try:
                batches = [batch]
                records = len(batch.items)
                while (
                    len(batches) < self._max_coalesce
                    and not self._queue.empty()
                    and (budget is None or records < budget)
                ):
                    extra = self._queue.get_nowait()
                    records += len(extra.items)
                    batches.append(extra)
                self._apply(batches)
            finally:
                if self._scheduler is not None:
                    self._scheduler.release(self.spec.name)
            for _ in batches:
                self._queue.task_done()
            async with self._applied:
                self._applied_seq = batches[-1].seq
                self._applied.notify_all()

    def _apply(self, batches: list[_Batch]) -> None:
        """Apply coalesced batches synchronously (between awaits).

        Consecutive batches of like representation merge before the
        apply call — ndarray runs concatenate (one vectorized call, no
        per-record boxing), list runs extend.  Runs are applied in
        arrival order, so order-sensitive summaries see the exact
        acknowledged sequence.
        """
        start = time.perf_counter()
        applied = 0
        for items, counts in _merge_runs(batches):
            if self._manager is not None:
                self._manager.update_batch(items, counts)
            else:
                apply_update_batch(self.summary, items, counts)
            applied += len(items)
        self._records_applied += applied
        self._metrics.apply_seconds.observe(time.perf_counter() - start)
        self._metrics.applied_batches.inc(len(batches))
        self._metrics.applied_records.inc(applied)
        self._metrics.queue_depth.set(self._queue.qsize())

    async def wait_applied(self, seq: int | None = None) -> None:
        """Block until batch ``seq`` (default: newest acknowledged) has
        been applied — the read barrier behind every query."""
        target = self._enqueued_seq if seq is None else seq
        async with self._applied:
            await self._applied.wait_for(lambda: self._applied_seq >= target)

    def pause(self) -> None:
        """Suspend the applier after its current batch (operational
        control; queued batches stay acknowledged)."""
        self._paused.clear()

    def resume(self) -> None:
        """Resume a paused applier."""
        self._paused.set()

    @property
    def paused(self) -> bool:
        """Whether the applier is suspended."""
        return not self._paused.is_set()

    def checkpoint_now(self) -> int:
        """Force a snapshot of the current state; returns bytes written.

        Runs synchronously on the loop thread: appliers only mutate the
        summary between awaits, so the serialized bytes are a consistent
        record-boundary state.
        """
        if self._manager is None:
            raise ValueError(
                f"table {self.spec.name!r} has no checkpoint directory"
            )
        return self._manager.flush()

    def stats(self) -> dict[str, Any]:
        """Queryable per-table state for the ``stats`` op."""
        payload: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "records_applied": self._records_applied,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._capacity,
            "applied_seq": self._applied_seq,
            "enqueued_seq": self._enqueued_seq,
            "paused": self.paused,
        }
        if self._ingest_quota is not None:
            payload["ingest_quota"] = {
                "rate": self._ingest_quota.rate,
                "burst": self._ingest_quota.burst,
            }
        if self._query_quota is not None:
            payload["query_quota"] = {
                "rate": self._query_quota.rate,
                "burst": self._query_quota.burst,
            }
        total_weight = getattr(self.summary, "total_weight", None)
        if total_weight is not None:
            payload["total_weight"] = int(total_weight)
        items_seen = getattr(self.summary, "items_seen", None)
        if items_seen is not None:
            payload["items_seen"] = int(items_seen)
        if self._manager is not None:
            payload["checkpoints_written"] = (
                self._manager.checkpoints_written)
            payload["checkpoint_path"] = str(self._manager.path)
        return payload
