"""Production traffic simulation for the service tier.

The paper's motivating deployment — a search engine sketching its live
query log (§1) — never sees a polite benchmark loop: it sees many
tenants with Zipf-skewed keys, bursty arrivals, and a read/write mix
that shifts under load.  This package replays that shape against a
live :class:`~repro.service.server.SketchServer` (or a
``repro.cluster`` fleet) and freezes the outcome — saturation
throughput, tail latency, shed counts, per-tenant fairness, and
bit-exactness of estimates under fire — into a
:class:`~repro.traffic.runner.TrafficReport`.

Entry points:

* :class:`WorkloadSpec` / :class:`WorkloadModel` — seeded workload
  description and per-client deterministic op streams.
* :class:`TrafficRunner` / :func:`run_traffic` — concurrent load
  generation, open- and closed-loop.
* CLI: ``repro traffic``; benchmark: ``benchmarks/bench_traffic.py``.

See ``docs/traffic.md`` for workload semantics and the multi-tenant
hardening knobs (quotas, weighted-fair draining, connection limits)
this harness exercises.
"""

from repro.traffic.runner import (
    TrafficReport,
    TrafficRunner,
    percentile,
    run_traffic,
)
from repro.traffic.workload import (
    ARRIVAL_MODES,
    TrafficOp,
    WorkloadModel,
    WorkloadSpec,
)

__all__ = [
    "ARRIVAL_MODES",
    "TrafficOp",
    "TrafficReport",
    "TrafficRunner",
    "WorkloadModel",
    "WorkloadSpec",
    "percentile",
    "run_traffic",
]
