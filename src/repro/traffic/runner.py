"""Load generation against a live service or cluster target.

The runner drives many concurrent :class:`WorkloadModel` clients over
one asyncio event loop against anything exposing the async service
surface — :class:`~repro.service.client.AsyncServiceClient` and
:class:`~repro.cluster.coordinator.ClusterCoordinator` both qualify —
and freezes what happened into a :class:`TrafficReport`:

* saturation throughput and nearest-rank p50/p99/p999 latency per op
  kind;
* error counts by wire code (``overloaded``, ``quota_exceeded``, …) —
  refusals are *recorded*, never retried, so the report shows exactly
  what the server shed;
* per-tenant throughput and the min/max fairness ratio across tenants;
* an optional mid-load **probe**: a dedicated table ingested with
  ``wait=True`` and queried while the workload hammers the other
  tables, asserting estimates stay bit-equal to an offline summary fed
  the same records (§3.2 linearity end-to-end);
* an optional **verification** pass: after the run drains, per-table
  ``records_applied`` deltas must equal the records the runner saw
  acknowledged — an acknowledged write is never silently dropped.
"""

from __future__ import annotations

import asyncio
import inspect
import math
import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.service.client import (
    OverloadedError,
    QuotaExceededError,
    ServiceError,
)
from repro.service.tables import TableSpec
from repro.store.checkpoint import apply_update_batch
from repro.traffic.workload import TrafficOp, WorkloadModel, WorkloadSpec

__all__ = [
    "TrafficReport",
    "TrafficRunner",
    "percentile",
    "run_traffic",
]

#: Records the probe feeds its dedicated table before querying.
_PROBE_RECORDS = 256

#: Distinct keys the probe compares against the offline mirror.
_PROBE_KEYS = 64

#: Probe ingest retries when per-table quotas refuse the batch.
_PROBE_RETRIES = 8

#: Records per probe ingest batch (kept under typical quota bursts).
_PROBE_CHUNK = 32


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in ``[0, 1]``).

    Returns ``0.0`` for an empty sample set — absent data reads as
    zero latency rather than crashing a report mid-run.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _summarize(samples: list[float]) -> dict[str, float]:
    """Latency summary (milliseconds) for one op kind."""
    if not samples:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                "p99_ms": 0.0, "p999_ms": 0.0, "max_ms": 0.0}
    return {
        "count": len(samples),
        "mean_ms": sum(samples) / len(samples),
        "p50_ms": percentile(samples, 0.50),
        "p99_ms": percentile(samples, 0.99),
        "p999_ms": percentile(samples, 0.999),
        "max_ms": max(samples),
    }


@dataclass(frozen=True)
class TrafficReport:
    """Frozen outcome of one traffic run.

    ``fairness_ratio`` is min/max successful-op throughput across
    tenants that received any traffic (``1.0`` for a single tenant):
    a value near 1 means the fair scheduler kept the cold tenants
    served while a hot tenant spiked.
    """

    spec: WorkloadSpec
    clients: int
    duration: float
    ops: dict[str, int]
    errors: dict[str, int]
    records_sent: int
    records_acknowledged: int
    latency: dict[str, dict[str, float]]
    per_tenant_ops: dict[str, int]
    per_tenant_records: dict[str, int]
    per_tenant_sent: dict[str, int]
    fairness_ratio: float
    throughput: float
    skipped: int
    probe: dict[str, Any] | None
    verification: dict[str, Any] | None

    @property
    def total_ops(self) -> int:
        """Successful operations across all kinds."""
        return sum(self.ops.values())

    @property
    def total_errors(self) -> int:
        """Refused or failed operations across all codes."""
        return sum(self.errors.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (workload spec inlined)."""
        return {
            "spec": self.spec.to_dict(),
            "clients": self.clients,
            "duration_seconds": self.duration,
            "ops": dict(self.ops),
            "errors": dict(self.errors),
            "records_sent": self.records_sent,
            "records_acknowledged": self.records_acknowledged,
            "latency": {kind: dict(stats)
                        for kind, stats in self.latency.items()},
            "per_tenant_ops": dict(self.per_tenant_ops),
            "per_tenant_records": dict(self.per_tenant_records),
            "per_tenant_sent": dict(self.per_tenant_sent),
            "fairness_ratio": self.fairness_ratio,
            "throughput_ops_per_s": self.throughput,
            "skipped": self.skipped,
            "probe": self.probe,
            "verification": self.verification,
        }


@dataclass
class _RunStats:
    """Mutable tallies shared by every worker (single event loop —
    workers only touch these between awaits, so no locking)."""

    ops: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    latency: dict[str, list[float]] = field(default_factory=dict)
    tenant_ops: dict[str, int] = field(default_factory=dict)
    tenant_records: dict[str, int] = field(default_factory=dict)
    tenant_sent: dict[str, int] = field(default_factory=dict)
    records_sent: int = 0
    records_acknowledged: int = 0
    skipped: int = 0


def _records_applied(payload: dict[str, Any]) -> int:
    """``records_applied`` from a service or cluster stats payload."""
    if "table" in payload:
        return int(payload["table"]["records_applied"])
    if "shards" in payload:
        return sum(
            int(shard["table"]["records_applied"])
            for shard in payload["shards"]
        )
    raise ValueError("unrecognized stats payload shape")


class TrafficRunner:
    """Drive one :class:`WorkloadSpec` with ``clients`` concurrent
    connections for ``duration`` seconds.

    ``connect`` is called once per client (plus once for admin work)
    and must return — directly or as an awaitable — an object with the
    async service surface (``create_table`` / ``ingest`` / ``estimate``
    / ``stats`` / ``close``).  ``max_inflight`` bounds per-client
    outstanding ops in the open-loop modes; arrivals past the cap are
    counted in ``report.skipped``, never silently dropped.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        clients: int = 4,
        duration: float = 2.0,
        max_inflight: int = 64,
    ) -> None:
        if clients < 1:
            raise ValueError("clients must be at least 1")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._spec = spec
        self._clients = clients
        self._duration = duration
        self._max_inflight = max_inflight

    async def _connect(
        self, connect: Callable[[], Any]
    ) -> Any:
        client = connect()
        if inspect.isawaitable(client):
            client = await client
        return client

    async def _setup(self, admin: Any) -> dict[str, int]:
        """Create the tenant tables; returns the pre-run applied
        baseline per table (tables may outlive earlier runs)."""
        baseline: dict[str, int] = {}
        for name in self._spec.table_names():
            try:
                await admin.create_table(self._spec.table_spec(name))
            except ServiceError as error:
                if error.code != "table_exists":
                    raise
            payload = await admin.stats(name)
            baseline[name] = _records_applied(payload)
        return baseline

    async def _do_op(self, client: Any, op: TrafficOp,
                     stats: _RunStats) -> None:
        start = time.monotonic()
        if op.kind == "ingest":
            stats.records_sent += len(op.records)
            stats.tenant_sent[op.table] = (
                stats.tenant_sent.get(op.table, 0) + len(op.records))
        try:
            if op.kind == "ingest":
                await client.ingest(op.table, op.records)
            else:
                await client.estimate(op.table, list(op.items))
        except QuotaExceededError:
            stats.errors["quota_exceeded"] = (
                stats.errors.get("quota_exceeded", 0) + 1)
            return
        except OverloadedError:
            stats.errors["overloaded"] = (
                stats.errors.get("overloaded", 0) + 1)
            return
        except ServiceError as error:
            stats.errors[error.code] = stats.errors.get(error.code, 0) + 1
            return
        except (ConnectionError, OSError):
            stats.errors["connection"] = stats.errors.get("connection", 0) + 1
            return
        elapsed_ms = (time.monotonic() - start) * 1e3
        stats.ops[op.kind] = stats.ops.get(op.kind, 0) + 1
        stats.latency.setdefault(op.kind, []).append(elapsed_ms)
        stats.tenant_ops[op.table] = stats.tenant_ops.get(op.table, 0) + 1
        if op.kind == "ingest":
            stats.records_acknowledged += len(op.records)
            stats.tenant_records[op.table] = (
                stats.tenant_records.get(op.table, 0) + len(op.records))

    async def _worker(self, client: Any, model: WorkloadModel,
                      deadline: float, stats: _RunStats) -> None:
        closed_loop = self._spec.arrival == "closed"
        inflight: set[asyncio.Task[None]] = set()
        try:
            while True:
                gap = model.next_gap()
                now = time.monotonic()
                if now >= deadline:
                    break
                if gap > 0:
                    await asyncio.sleep(min(gap, deadline - now))
                    if time.monotonic() >= deadline:
                        break
                op = model.next_op()
                if closed_loop:
                    await self._do_op(client, op, stats)
                elif len(inflight) >= self._max_inflight:
                    stats.skipped += 1
                else:
                    task = asyncio.ensure_future(
                        self._do_op(client, op, stats))
                    inflight.add(task)
                    task.add_done_callback(inflight.discard)
        finally:
            if inflight:
                await asyncio.gather(*inflight)

    async def _run_probe(self, client: Any) -> dict[str, Any]:
        """Mid-load exactness probe on a dedicated table.

        Feeds seeded records with ``wait=True`` (the read barrier),
        queries, and compares bit-for-bit against an offline summary
        fed the same records — while the workload saturates the other
        tables.  Quota refusals back off ``retry_after`` and retry:
        the probe measures exactness, not quota policy.
        """
        spec = self._spec
        name = f"{spec.table_prefix}_probe"
        table_spec = TableSpec(name=name, kind=spec.table_kind,
                               depth=spec.depth, width=spec.width,
                               seed=spec.seed)
        try:
            await client.drop_table(name)
        except ServiceError as error:
            if error.code != "no_such_table":
                raise
        await client.create_table(table_spec)
        rng = random.Random(f"{spec.seed}:probe")
        universe = spec.tenants * spec.keys_per_tenant
        records = [(rng.randrange(universe), 1)
                   for _ in range(_PROBE_RECORDS)]
        # Chunked so each batch fits under modest quota bursts; every
        # chunk carries the read barrier (a probe measures exactness,
        # not ingest speed).
        for start in range(0, len(records), _PROBE_CHUNK):
            chunk = records[start:start + _PROBE_CHUNK]
            for attempt in range(_PROBE_RETRIES + 1):
                try:
                    await client.ingest(name, chunk, wait=True)
                    break
                except QuotaExceededError as error:
                    if attempt == _PROBE_RETRIES:
                        raise
                    retry_after = error.details.get("retry_after")
                    await asyncio.sleep(
                        float(retry_after)
                        if retry_after is not None else 0.05)
        mirror = table_spec.build()
        apply_update_batch(mirror, [item for item, _ in records],
                          [count for _, count in records])
        present = list(dict.fromkeys(item for item, _ in records))
        absent = [universe + index for index in range(8)]
        keys = present[:_PROBE_KEYS] + absent
        expected = [float(mirror.estimate(key)) for key in keys]
        observed: list[float] = []
        for attempt in range(_PROBE_RETRIES + 1):
            try:
                observed = await client.estimate(name, keys)
                break
            except QuotaExceededError as error:
                if attempt == _PROBE_RETRIES:
                    raise
                retry_after = error.details.get("retry_after")
                await asyncio.sleep(
                    float(retry_after) if retry_after is not None else 0.05)
        exact = sum(1 for got, want in zip(observed, expected, strict=True)
                    if got == want)
        await client.drop_table(name)
        return {
            "table": name,
            "records": len(records),
            "keys_checked": len(keys),
            "keys_exact": exact,
            "bit_equal": exact == len(keys),
        }

    async def _verify(self, admin: Any, baseline: dict[str, int],
                      stats: _RunStats) -> dict[str, Any]:
        """Acknowledged records must all have been applied (``stats``
        runs behind the read barrier, so applied is final)."""
        per_table: dict[str, dict[str, int]] = {}
        clean = True
        for name in self._spec.table_names():
            payload = await admin.stats(name)
            applied = _records_applied(payload) - baseline.get(name, 0)
            acknowledged = stats.tenant_records.get(name, 0)
            per_table[name] = {
                "acknowledged": acknowledged,
                "applied": applied,
            }
            if applied != acknowledged:
                clean = False
        return {"tables": per_table, "no_silent_drops": clean}

    async def run(
        self,
        connect: Callable[[], Any],
        *,
        setup: bool = True,
        probe: bool = True,
        verify: bool = True,
    ) -> TrafficReport:
        """Execute the workload; returns the frozen report.

        ``setup=False`` assumes the tenant tables already exist (the
        applied baseline is still captured so verification works).
        """
        admin = await self._connect(connect)
        try:
            if setup:
                baseline = await self._setup(admin)
            else:
                baseline = {
                    name: _records_applied(await admin.stats(name))
                    for name in self._spec.table_names()
                }
            workers = [
                await self._connect(connect) for _ in range(self._clients)
            ]
            stats = _RunStats()
            started = time.monotonic()
            deadline = started + self._duration
            try:
                tasks = [
                    asyncio.ensure_future(self._worker(
                        workers[index], WorkloadModel(self._spec, index),
                        deadline, stats))
                    for index in range(self._clients)
                ]
                probe_task = (
                    asyncio.ensure_future(self._run_probe(admin))
                    if probe else None
                )
                await asyncio.gather(*tasks)
                probe_result = (
                    await probe_task if probe_task is not None else None
                )
            finally:
                for worker in workers:
                    await worker.close()
            duration = time.monotonic() - started
            verification = (
                await self._verify(admin, baseline, stats)
                if verify else None
            )
        finally:
            await admin.close()
        tenant_counts = [
            count for count in stats.tenant_ops.values() if count > 0
        ]
        if len(tenant_counts) > 1:
            fairness = min(tenant_counts) / max(tenant_counts)
        else:
            fairness = 1.0
        return TrafficReport(
            spec=self._spec,
            clients=self._clients,
            duration=duration,
            ops=dict(stats.ops),
            errors=dict(stats.errors),
            records_sent=stats.records_sent,
            records_acknowledged=stats.records_acknowledged,
            latency={kind: _summarize(samples)
                     for kind, samples in stats.latency.items()},
            per_tenant_ops=dict(stats.tenant_ops),
            per_tenant_records=dict(stats.tenant_records),
            per_tenant_sent=dict(stats.tenant_sent),
            fairness_ratio=fairness,
            throughput=(sum(stats.ops.values()) / duration
                        if duration > 0 else 0.0),
            skipped=stats.skipped,
            probe=probe_result,
            verification=verification,
        )


async def run_traffic(
    connect: Callable[[], Any],
    spec: WorkloadSpec,
    *,
    clients: int = 4,
    duration: float = 2.0,
    max_inflight: int = 64,
    setup: bool = True,
    probe: bool = True,
    verify: bool = True,
) -> TrafficReport:
    """One-call convenience wrapper around :class:`TrafficRunner`."""
    runner = TrafficRunner(spec, clients=clients, duration=duration,
                           max_inflight=max_inflight)
    return await runner.run(connect, setup=setup, probe=probe,
                            verify=verify)
