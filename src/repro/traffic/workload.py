"""Seeded workload models for the traffic harness.

A workload is a population of tenants (one service table each) whose
keys follow the paper's Zipfian popularity law (§4.1, ``n_q ∝ 1/q^z``):
``zipf_key`` skews key popularity *within* a tenant, ``zipf_tenant``
skews traffic *across* tenants (``z = 0`` is uniform; crank it up to
model one hot tenant crowding out the rest).  Operations are a seeded
mix of batched ingest and point-estimate queries, spaced by one of
three arrival processes:

* ``closed`` — each client fires its next op as soon as the previous
  one completes (closed loop; throughput is whatever the server
  sustains).
* ``poisson`` — open loop: exponential gaps at ``rate`` ops/s per
  client, independent of server latency.
* ``burst`` — open loop alternating half-periods of ``rate ×
  burst_factor`` and ``rate / burst_factor`` (mean gap follows the
  phase), modelling diurnal spikes compressed into seconds.

Everything is deterministic given ``seed``: client ``i`` draws from
``random.Random(f"{seed}:{i}")``, so two runs against the same server
replay identical op sequences (arrival *gaps* are deterministic too;
only the interleaving against the live server varies).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, NamedTuple

from repro.service.tables import TABLE_KINDS, TableSpec
from repro.streams.zipf import zipf_weights

__all__ = [
    "ARRIVAL_MODES",
    "TrafficOp",
    "WorkloadModel",
    "WorkloadSpec",
]

#: Arrival processes a workload may select.
ARRIVAL_MODES = ("closed", "poisson", "burst")

#: Canonical serialization order for :meth:`WorkloadSpec.to_dict`.
_SPEC_FIELDS = (
    "tenants",
    "keys_per_tenant",
    "zipf_key",
    "zipf_tenant",
    "query_fraction",
    "batch_size",
    "query_items",
    "arrival",
    "rate",
    "burst_factor",
    "burst_period",
    "seed",
    "table_prefix",
    "table_kind",
    "depth",
    "width",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Immutable description of one traffic workload.

    ``rate`` is per-client ops/s and only meaningful for the open-loop
    arrivals (``poisson`` / ``burst``); ``closed`` ignores it.  Tenant
    ``i`` owns table ``f"{table_prefix}{i}"`` and the key range
    ``[i * keys_per_tenant, (i + 1) * keys_per_tenant)``, so tenants
    never share keys and per-tenant exactness checks stay independent.
    """

    tenants: int = 4
    keys_per_tenant: int = 512
    zipf_key: float = 1.1
    zipf_tenant: float = 0.0
    query_fraction: float = 0.2
    batch_size: int = 32
    query_items: int = 8
    arrival: str = "closed"
    rate: float = 0.0
    burst_factor: float = 4.0
    burst_period: float = 1.0
    seed: int = 0
    table_prefix: str = "tenant"
    table_kind: str = "sketch"
    depth: int = 5
    width: int = 256

    def __post_init__(self) -> None:
        for label in ("tenants", "keys_per_tenant", "batch_size",
                      "query_items", "depth", "width"):
            value = getattr(self, label)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{label} must be an integer")
            if value < 1:
                raise ValueError(f"{label} must be at least 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("seed must be an integer")
        for label in ("zipf_key", "zipf_tenant"):
            value = getattr(self, label)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{label} must be a number")
            if value < 0:
                raise ValueError(f"{label} must be nonnegative")
        if not isinstance(self.query_fraction, (int, float)) or isinstance(
                self.query_fraction, bool):
            raise ValueError("query_fraction must be a number")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ValueError("query_fraction must be in [0, 1]")
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.arrival!r}; "
                f"choose one of {', '.join(ARRIVAL_MODES)}"
            )
        if not isinstance(self.rate, (int, float)) or isinstance(
                self.rate, bool):
            raise ValueError("rate must be a number")
        if self.rate < 0:
            raise ValueError("rate must be nonnegative")
        if self.arrival != "closed" and self.rate <= 0:
            raise ValueError(
                f"arrival {self.arrival!r} needs a positive per-client rate"
            )
        if not isinstance(self.burst_factor, (int, float)) or isinstance(
                self.burst_factor, bool):
            raise ValueError("burst_factor must be a number")
        if self.burst_factor < 1:
            raise ValueError("burst_factor must be at least 1")
        if not isinstance(self.burst_period, (int, float)) or isinstance(
                self.burst_period, bool):
            raise ValueError("burst_period must be a number")
        if self.burst_period <= 0:
            raise ValueError("burst_period must be positive")
        if self.table_kind not in TABLE_KINDS:
            raise ValueError(
                f"unknown table kind {self.table_kind!r}; "
                f"choose one of {', '.join(TABLE_KINDS)}"
            )
        # Validate the prefix by building the first table's spec.
        TableSpec(name=f"{self.table_prefix}0")

    def table_names(self) -> tuple[str, ...]:
        """Tenant table names in tenant order."""
        return tuple(
            f"{self.table_prefix}{index}" for index in range(self.tenants)
        )

    def table_spec(self, name: str) -> TableSpec:
        """The :class:`TableSpec` every workload table is created with."""
        return TableSpec(name=name, kind=self.table_kind,
                         depth=self.depth, width=self.width, seed=self.seed)

    def key_for(self, tenant: int, rank: int) -> int:
        """The integer key for ``rank`` within ``tenant``'s range."""
        return tenant * self.keys_per_tenant + rank

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form (fixed field order)."""
        return {label: getattr(self, label) for label in _SPEC_FIELDS}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> WorkloadSpec:
        """Inverse of :meth:`to_dict`; unknown keys are refused."""
        unknown = sorted(set(payload) - set(_SPEC_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown workload field(s): {', '.join(unknown)}"
            )
        return cls(**payload)


class TrafficOp(NamedTuple):
    """One sampled operation: a batched ingest or a point-estimate."""

    kind: str  # "ingest" | "estimate"
    tenant: int
    table: str
    records: tuple[tuple[int, int], ...]  # empty for estimate ops
    items: tuple[int, ...]  # empty for ingest ops


def _cumulative(weights: Any) -> list[float]:
    """Normalized cumulative distribution over ``weights``."""
    total = float(weights.sum())
    cdf: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += float(weight)
        cdf.append(acc / total)
    cdf[-1] = 1.0
    return cdf


class WorkloadModel:
    """Deterministic per-client op stream for one :class:`WorkloadSpec`.

    Client ``client_index`` owns its own ``random.Random`` seeded from
    ``f"{spec.seed}:{client_index}"`` — clients never share generator
    state, so adding a client never perturbs another client's sequence.
    """

    __slots__ = ("_key_cdf", "_rng", "_spec", "_tenant_cdf", "_vtime")

    def __init__(self, spec: WorkloadSpec, client_index: int) -> None:
        if client_index < 0:
            raise ValueError("client_index must be nonnegative")
        self._spec = spec
        self._rng = random.Random(f"{spec.seed}:{client_index}")
        self._key_cdf = _cumulative(
            zipf_weights(spec.keys_per_tenant, spec.zipf_key))
        self._tenant_cdf = _cumulative(
            zipf_weights(spec.tenants, spec.zipf_tenant))
        self._vtime = 0.0

    @property
    def spec(self) -> WorkloadSpec:
        """The workload this model samples from."""
        return self._spec

    def _sample_rank(self, cdf: list[float]) -> int:
        return bisect_left(cdf, self._rng.random())

    def next_op(self) -> TrafficOp:
        """Sample the client's next operation."""
        spec = self._spec
        tenant = self._sample_rank(self._tenant_cdf)
        table = f"{spec.table_prefix}{tenant}"
        if self._rng.random() < spec.query_fraction:
            items = tuple(
                spec.key_for(tenant, self._sample_rank(self._key_cdf))
                for _ in range(spec.query_items)
            )
            return TrafficOp("estimate", tenant, table, (), items)
        records = tuple(
            (spec.key_for(tenant, self._sample_rank(self._key_cdf)), 1)
            for _ in range(spec.batch_size)
        )
        return TrafficOp("ingest", tenant, table, records, ())

    def next_gap(self) -> float:
        """Seconds to wait before firing the next op (0 when closed-loop).

        Burst phase boundaries follow the model's own virtual clock (the
        sum of gaps drawn so far), not wall time, so the phase sequence
        is deterministic under any server latency.
        """
        spec = self._spec
        if spec.arrival == "closed":
            return 0.0
        if spec.arrival == "poisson":
            return self._rng.expovariate(spec.rate)
        half = spec.burst_period / 2.0
        in_spike = (self._vtime % spec.burst_period) < half
        lam = (spec.rate * spec.burst_factor if in_spike
               else spec.rate / spec.burst_factor)
        gap = self._rng.expovariate(lam)
        self._vtime += gap
        return gap
