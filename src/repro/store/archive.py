"""A temporal archive of epoch sketches sharing one hash family.

The §3.2 linearity argument is not just a merge trick — it is a *query
language over time*.  If every epoch (hour, day, week) of a stream is
sketched with the **same** ``(depth, width, seed)``, then for any two
epochs ``i < j``:

* ``epoch(j) - epoch(i)`` is exactly the sketch of the difference
  vector, so ``.estimate(q)`` is the §4.2 estimated change — the archive
  answers "what changed most between any two periods?" *historically*,
  long after the raw streams are gone (:meth:`SketchArchive.diff`
  returns the same estimates :class:`~repro.core.maxchange.
  MaxChangeFinder` would compute from the raw streams).
* the sum of ``epoch(i..j)`` is exactly the sketch of the concatenated
  period, so range queries ("this month") are one merge away.

Range merges use dyadic decomposition in the style of Hokusai-type
time-aggregated sketch stores: ``[start, end)`` splits into at most
``2·log₂ n`` aligned power-of-two intervals, and each aligned interval's
merged sketch is computed once and cached on disk (``dyadic/``), so
repeated range queries touch ``O(log n)`` files instead of ``O(n)``.

On disk the archive is a directory of ordinary snapshot files plus a
manifest pinning the shared hash parameters — every file remains
readable by :func:`repro.store.load` and the ``repro store`` CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.store.codec import load_with_meta, save
from repro.store.format import (
    SNAPSHOT_SUFFIX,
    StoreError,
    atomic_write_bytes,
    decode_item,
    encode_item,
)

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable

__all__ = ["ArchiveDiffEntry", "SketchArchive"]


class ArchiveDiffEntry:
    """One candidate from an archive diff, ranked by ``|estimated_change|``.

    ``estimated_change`` approximates ``n_q(epoch_b) − n_q(epoch_a)``; it
    is exactly the pass-1 estimate the two-pass §4.2 algorithm computes,
    because both subtract the same hash-compatible sketches.
    """

    __slots__ = ("item", "estimated_change", "estimate_before",
                 "estimate_after")

    def __init__(self, item: Hashable, estimated_change: float,
                 estimate_before: float, estimate_after: float) -> None:
        self.item = item
        self.estimated_change = estimated_change
        self.estimate_before = estimate_before
        self.estimate_after = estimate_after

    @property
    def abs_change(self) -> float:
        """The magnitude the diff ranks by."""
        return abs(self.estimated_change)

    def __repr__(self) -> str:
        return (
            f"ArchiveDiffEntry(item={self.item!r}, "
            f"estimated_change={self.estimated_change})"
        )


class SketchArchive:
    """An append-only, on-disk sequence of hash-compatible epoch sketches.

    Args:
        directory: archive root (created if missing).
        depth: sketch rows — required when creating a new archive,
            optional (but verified) when opening an existing one.
        width: counters per row — same rule as ``depth``.
        seed: shared hash seed for every epoch.

    Layout::

        <directory>/
            manifest.json               # {depth, width, seed, epochs}
            epochs/epoch-00000000.rcs   # one snapshot per epoch
            ...
            dyadic/merge-<start>-<length>.rcs   # cached range merges
    """

    MANIFEST_NAME = "manifest.json"

    def __init__(
        self,
        directory: str | Path,
        *,
        depth: int | None = None,
        width: int | None = None,
        seed: int = 0,
    ) -> None:
        self._directory = Path(directory)
        self._epoch_dir = self._directory / "epochs"
        self._dyadic_dir = self._directory / "dyadic"
        manifest = self._read_manifest()
        if manifest is None:
            if depth is None or width is None:
                raise ValueError(
                    "creating a new archive requires depth and width"
                )
            self._depth = depth
            self._width = width
            self._seed = seed
            self._epochs = 0
            self._epoch_dir.mkdir(parents=True, exist_ok=True)
            self._dyadic_dir.mkdir(parents=True, exist_ok=True)
            self._write_manifest()
        else:
            self._depth = manifest["depth"]
            self._width = manifest["width"]
            self._seed = manifest["seed"]
            self._epochs = manifest["epochs"]
            for name, given in (
                ("depth", depth), ("width", width),
                ("seed", seed if seed != 0 else None),
            ):
                stored = getattr(self, f"_{name}")
                if given is not None and given != stored:
                    raise StoreError(
                        f"archive {self._directory} was created with "
                        f"{name}={stored}, not {given}: epochs only "
                        "subtract exactly under one shared hash family"
                    )
            self._epoch_dir.mkdir(parents=True, exist_ok=True)
            self._dyadic_dir.mkdir(parents=True, exist_ok=True)

    # -- manifest -------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self._directory / self.MANIFEST_NAME

    def _read_manifest(self) -> dict[str, Any] | None:
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{path} is not a valid archive manifest: {error}"
            ) from error
        if not isinstance(manifest, dict) or not all(
            key in manifest for key in ("depth", "width", "seed", "epochs")
        ):
            raise StoreError(
                f"{path} is missing archive manifest fields"
            )
        return manifest

    def _write_manifest(self) -> None:
        atomic_write_bytes(
            self._manifest_path(),
            json.dumps(
                {
                    "depth": self._depth,
                    "width": self._width,
                    "seed": self._seed,
                    "epochs": self._epochs,
                },
                sort_keys=True,
                indent=2,
            ).encode("utf-8"),
        )

    # -- properties -----------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The archive root."""
        return self._directory

    @property
    def depth(self) -> int:
        """Sketch rows shared by every epoch."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per row shared by every epoch."""
        return self._width

    @property
    def seed(self) -> int:
        """The shared hash seed."""
        return self._seed

    def __len__(self) -> int:
        return self._epochs

    # -- appending epochs -----------------------------------------------------

    def new_epoch_sketch(self) -> CountSketch:
        """An empty sketch with the archive's shared hash parameters."""
        return CountSketch(self._depth, self._width, seed=self._seed)

    def _epoch_path(self, index: int) -> Path:
        return self._epoch_dir / f"epoch-{index:08d}{SNAPSHOT_SUFFIX}"

    def append(
        self,
        sketch: CountSketch,
        *,
        candidates: Iterable[Hashable] = (),
    ) -> int:
        """Store ``sketch`` as the next epoch; returns its index.

        ``candidates`` (typically the epoch's heavy hitters) are recorded
        in the snapshot meta — they are the default probe set for
        :meth:`diff`, which can only rank items somebody names.

        Raises:
            ValueError: when ``sketch`` does not share the archive's hash
                family — storing it would poison every cross-epoch query.
        """
        reference = self.new_epoch_sketch()
        if not reference.compatible_with(sketch):
            raise ValueError(
                "epoch sketch is not compatible with this archive: build "
                f"it with (depth={self._depth}, width={self._width}, "
                f"seed={self._seed}), e.g. via new_epoch_sketch()"
            )
        index = self._epochs
        save(
            sketch,
            self._epoch_path(index),
            meta={
                "epoch": index,
                "candidates": [encode_item(item) for item in candidates],
            },
        )
        self._epochs += 1
        self._write_manifest()
        return index

    def append_stream(
        self,
        stream: Iterable[Hashable],
        *,
        track_candidates: int = 32,
    ) -> int:
        """Sketch ``stream`` as one epoch and append it.

        The epoch's approximate top ``track_candidates`` items (tracked
        with the §3.2 APPROXTOP loop over the same sketch) are stored as
        the epoch's candidate list.
        """
        if track_candidates < 1:
            raise ValueError("track_candidates must be at least 1")
        tracker = TopKTracker(track_candidates,
                              sketch=self.new_epoch_sketch())
        for item in stream:
            tracker.update(item)
        return self.append(
            tracker.sketch,
            candidates=[item for item, __ in tracker.top()],
        )

    # -- reading epochs -------------------------------------------------------

    def _check_epoch(self, index: int) -> None:
        if not 0 <= index < self._epochs:
            raise IndexError(
                f"epoch {index} out of range: archive holds "
                f"{self._epochs} epoch(s)"
            )

    def epoch(self, index: int) -> CountSketch:
        """Load the sketch of epoch ``index``."""
        sketch, __ = self._load_epoch(index)
        return sketch

    def _load_epoch(self, index: int) -> tuple[CountSketch, dict[str, Any]]:
        self._check_epoch(index)
        sketch, meta = load_with_meta(self._epoch_path(index))
        if not isinstance(sketch, CountSketch):
            raise StoreError(
                f"epoch file {self._epoch_path(index).name} does not hold "
                "a dense Count Sketch"
            )
        return sketch, meta

    def candidates(self, index: int) -> list[Hashable]:
        """The candidate items recorded with epoch ``index``."""
        __, meta = self._load_epoch(index)
        stored = meta.get("candidates", [])
        if not isinstance(stored, list):
            raise StoreError("epoch candidate list is malformed")
        return [decode_item(value) for value in stored]

    # -- range merges (dyadic decomposition) ----------------------------------

    @staticmethod
    def _dyadic_intervals(start: int, end: int) -> list[tuple[int, int]]:
        """Split ``[start, end)`` into maximal aligned dyadic intervals.

        Each piece is ``[s, s + 2^j)`` with ``2^j | s``; there are at
        most ``2·log₂(end)`` of them.  Greedy from the left: take the
        largest aligned power of two that fits.
        """
        intervals = []
        while start < end:
            remaining = end - start
            fit = 1 << (remaining.bit_length() - 1)  # largest 2^j <= remaining
            align = start & -start  # largest 2^j dividing start (0 -> any)
            length = fit if align == 0 else min(align, fit)
            intervals.append((start, length))
            start += length
        return intervals

    def _dyadic_path(self, start: int, length: int) -> Path:
        return (
            self._dyadic_dir
            / f"merge-{start:08d}-{length:08d}{SNAPSHOT_SUFFIX}"
        )

    def _dyadic_sketch(self, start: int, length: int) -> CountSketch:
        """The merged sketch of ``[start, start + length)``, cached.

        Length-1 intervals are the epoch files themselves; longer
        (always power-of-two, aligned) intervals merge their two halves
        recursively, writing each level to ``dyadic/`` so subsequent
        range queries reuse it.
        """
        if length == 1:
            return self.epoch(start)
        path = self._dyadic_path(start, length)
        if path.exists():
            cached = load_with_meta(path)[0]
            if isinstance(cached, CountSketch):
                return cached
            raise StoreError(f"{path.name} does not hold a dense sketch")
        half = length // 2
        merged = self._dyadic_sketch(start, half)
        merged = merged + self._dyadic_sketch(start + half, half)
        save(merged, path, meta={"start": start, "length": length})
        return merged

    def range_sketch(self, start: int, end: int) -> CountSketch:
        """The exact sketch of epochs ``[start, end)`` concatenated.

        Exact by linearity: summing hash-compatible epoch sketches gives
        the sketch of the combined stream, so estimates over a range are
        as if one sketch had seen the whole period.
        """
        self._check_epoch(start)
        if not start < end <= self._epochs:
            raise IndexError(
                f"range [{start}, {end}) is not a nonempty span within "
                f"{self._epochs} epoch(s)"
            )
        merged: CountSketch | None = None
        for piece_start, piece_length in self._dyadic_intervals(start, end):
            piece = self._dyadic_sketch(piece_start, piece_length)
            merged = piece if merged is None else merged + piece
        assert merged is not None  # the range is nonempty
        return merged

    # -- historical max-change ------------------------------------------------

    def diff(
        self,
        epoch_a: int,
        epoch_b: int,
        *,
        k: int = 10,
        items: Iterable[Hashable] | None = None,
    ) -> list[ArchiveDiffEntry]:
        """The ``k`` items with the largest estimated change between epochs.

        Subtracts the stored sketches (§3.2) and ranks candidates by
        ``|estimate|`` under the difference sketch — the identical
        quantity the two-pass max-change algorithm's pass 1 computes,
        evaluated years later without the raw streams.

        Args:
            epoch_a: the "before" epoch index.
            epoch_b: the "after" epoch index.
            k: how many items to report.
            items: candidate items to score; defaults to the union of
                the two epochs' stored candidate lists.
        """
        if k < 0:
            raise ValueError("k must be nonnegative")
        before, meta_a = self._load_epoch(epoch_a)
        after, meta_b = self._load_epoch(epoch_b)
        if items is None:
            probe: dict[Hashable, None] = {}
            for meta in (meta_a, meta_b):
                stored = meta.get("candidates", [])
                if not isinstance(stored, list):
                    raise StoreError("epoch candidate list is malformed")
                for value in stored:
                    probe.setdefault(decode_item(value))
            candidates: list[Hashable] = list(probe)
        else:
            seen: dict[Hashable, None] = {}
            for item in items:
                seen.setdefault(item)
            candidates = list(seen)
        difference = after - before
        entries = [
            ArchiveDiffEntry(
                item=item,
                estimated_change=difference.estimate(item),
                estimate_before=before.estimate(item),
                estimate_after=after.estimate(item),
            )
            for item in candidates
        ]
        entries.sort(key=lambda e: (-e.abs_change, repr(e.item)))
        return entries[:k]

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary of the archive (for the CLI)."""
        epoch_weights = []
        for index in range(self._epochs):
            sketch, __ = self._load_epoch(index)
            epoch_weights.append(sketch.total_weight)
        return {
            "directory": str(self._directory),
            "depth": self._depth,
            "width": self._width,
            "seed": self._seed,
            "epochs": self._epochs,
            "epoch_weights": epoch_weights,
            "cached_dyadic_merges": sum(
                1 for __ in self._dyadic_dir.glob(f"*{SNAPSHOT_SUFFIX}")
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SketchArchive({str(self._directory)!r}, depth={self._depth}, "
            f"width={self._width}, seed={self._seed}, "
            f"epochs={self._epochs})"
        )
