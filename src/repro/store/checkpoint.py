"""Checkpoint/resume for long-running ingestion.

Two cooperating pieces:

* :class:`CheckpointManager` wraps any snapshotable summary during
  serial ingestion and persists it every ``N`` items and/or ``T``
  seconds.  The snapshot records how many stream records the summary has
  consumed, so a killed process can :meth:`~CheckpointManager.resume`,
  skip the consumed prefix of the (replayable) stream, and continue —
  the final state is bit-for-bit identical to an uninterrupted run,
  because snapshots are exact and checkpoints land on record boundaries.

* :class:`ShardCheckpointStore` is the parallel engine's durable
  directory: a manifest pinning the shared sketch parameters plus one
  snapshot per absorbed shard.  Restore rebuilds each shard and folds it
  back through the compatibility-checked ``merge`` API (§3.2 linearity
  makes the order irrelevant), after which ingestion continues with the
  not-yet-covered chunks only.

Every file write is atomic (:func:`repro.store.format.atomic_write_bytes`),
so a crash mid-checkpoint can only lose the newest checkpoint, never
corrupt an older one.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.observability.registry import MetricsRegistry, get_registry
from repro.store.codec import load_with_meta, save
from repro.store.format import (
    SNAPSHOT_SUFFIX,
    StoreError,
    atomic_write_bytes,
    decode_item,
    encode_item,
)

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable, Iterator, Sequence

    from repro.store.codec import Snapshotable

__all__ = [
    "CheckpointManager",
    "CheckpointMismatchError",
    "ShardCheckpointStore",
    "apply_update_batch",
]


def apply_update_batch(
    summary: Snapshotable,
    items: Sequence[Hashable],
    counts: Sequence[int],
) -> None:
    """Apply parallel record lists ``(items[i], counts[i])`` in stream order.

    Summaries exposing a vectorized ``update_batch`` (the NumPy backend)
    absorb the whole batch in one call; everything else gets an in-order
    scalar loop, preserving order-sensitive semantics (top-k heap
    admission, jumping-window rotation).  Either way the result is
    exactly the state an item-at-a-time feed would have produced.

    A ``uint64`` ndarray of pre-encoded keys (the binary wire path) is
    handed to ``update_batch`` as-is — boxing it into a list would cost
    more than the wire decode it just avoided.
    """
    if len(items) != len(counts):
        raise ValueError("items and counts must have the same length")
    batch = getattr(summary, "update_batch", None)
    if batch is not None:
        if len(items):
            if isinstance(items, np.ndarray):
                batch(items, np.asarray(counts, dtype=np.int64))
            else:
                batch(list(items), np.asarray(counts, dtype=np.int64))
        return
    if isinstance(items, np.ndarray):
        # Scalar summaries get Python ints: a NumPy scalar hashes the
        # same but would taint running totals in snapshot headers.
        items = items.tolist()
    if isinstance(counts, np.ndarray):
        counts = counts.tolist()
    for item, count in zip(items, counts, strict=True):
        summary.update(item, count)


class CheckpointMismatchError(StoreError):
    """A checkpoint directory's manifest disagrees with the requested run."""


class _CheckpointMetrics:
    """Metric handles captured once per manager when collection is on."""

    __slots__ = ("checkpoints", "seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.checkpoints = registry.counter("store_checkpoints_total")
        self.seconds = registry.histogram("store_checkpoint_seconds")


class CheckpointManager:
    """Feed a summary while periodically snapshotting it to disk.

    Args:
        summary: any snapshotable summary (it keeps working on the
            caller's instance; the manager only adds persistence).
        path: snapshot destination (conventionally ``*.rcs``).
        every_items: checkpoint after this many stream records (update
            calls), if set.
        every_seconds: checkpoint when this much wall-clock time has
            passed since the last one, if set.  Checked on record
            boundaries, so a checkpoint never splits an update.
        items_consumed: stream records already reflected in ``summary``
            (used by :meth:`resume`; new runs leave it at 0).

    At least one of ``every_items`` / ``every_seconds`` is required —
    a manager that never checkpoints is a bug, not a configuration.
    """

    def __init__(
        self,
        summary: Snapshotable,
        path: str | Path,
        *,
        every_items: int | None = None,
        every_seconds: float | None = None,
        items_consumed: int = 0,
    ) -> None:
        if every_items is None and every_seconds is None:
            raise ValueError(
                "set every_items and/or every_seconds; a manager that "
                "never checkpoints would provide no durability"
            )
        if every_items is not None and every_items < 1:
            raise ValueError("every_items must be at least 1")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError("every_seconds must be positive")
        if items_consumed < 0:
            raise ValueError("items_consumed cannot be negative")
        self._summary = summary
        self._path = Path(path)
        self._every_items = every_items
        self._every_seconds = every_seconds
        self._items_consumed = items_consumed
        self._items_at_checkpoint = items_consumed
        self._last_checkpoint_time = time.monotonic()
        self._checkpoints_written = 0
        registry = get_registry()
        self._metrics = (
            _CheckpointMetrics(registry) if registry.enabled else None
        )

    @property
    def summary(self) -> Snapshotable:
        """The wrapped summary (shared with the caller, not a copy)."""
        return self._summary

    @property
    def path(self) -> Path:
        """The snapshot destination."""
        return self._path

    @property
    def items_consumed(self) -> int:
        """Stream records reflected in the summary so far."""
        return self._items_consumed

    @property
    def checkpoints_written(self) -> int:
        """Snapshots persisted by this manager (including :meth:`flush`)."""
        return self._checkpoints_written

    def update(self, item: Hashable, count: int = 1) -> None:
        """Apply one stream record, then checkpoint if a trigger fired."""
        self._summary.update(item, count)
        self._items_consumed += 1
        if self._due():
            self.flush()

    def update_batch(
        self,
        items: Sequence[Hashable],
        counts: Sequence[int],
    ) -> None:
        """Apply a micro-batch of records, then checkpoint if due.

        The batch is absorbed through :func:`apply_update_batch` (one
        vectorized call when the summary supports it, an in-order loop
        otherwise) and counts as ``len(items)`` stream records.  The
        due-check runs once at the batch end, so checkpoints always land
        on batch boundaries — which are record boundaries — keeping the
        resume contract exact.
        """
        if len(items) != len(counts):
            raise ValueError("items and counts must have the same length")
        if len(items) == 0:  # `not items` is ambiguous for ndarrays
            return
        apply_update_batch(self._summary, items, counts)
        self._items_consumed += len(items)
        if self._due():
            self.flush()

    def extend(self, stream: Iterable[Hashable]) -> None:
        """Apply each record of ``stream`` with checkpointing, then a
        final :meth:`flush` so the snapshot always covers the full
        stream."""
        for item in stream:
            self.update(item)
        self.flush()

    def _due(self) -> bool:
        if (
            self._every_items is not None
            and self._items_consumed - self._items_at_checkpoint
            >= self._every_items
        ):
            return True
        return (
            self._every_seconds is not None
            and time.monotonic() - self._last_checkpoint_time
            >= self._every_seconds
        )

    def flush(self) -> int:
        """Snapshot now (atomic); returns bytes written."""
        start = time.perf_counter()
        written = save(
            self._summary,
            self._path,
            meta={"items_consumed": self._items_consumed},
        )
        if self._metrics is not None:
            self._metrics.checkpoints.inc()
            self._metrics.seconds.observe(time.perf_counter() - start)
        self._items_at_checkpoint = self._items_consumed
        self._last_checkpoint_time = time.monotonic()
        self._checkpoints_written += 1
        return written

    @classmethod
    def resume(
        cls,
        path: str | Path,
        *,
        every_items: int | None = None,
        every_seconds: float | None = None,
    ) -> CheckpointManager:
        """Rebuild a manager from its last checkpoint.

        The returned manager's :attr:`items_consumed` tells the caller
        how many records of the replayed stream to skip (e.g. with
        ``itertools.islice``) before feeding the rest.
        """
        summary, meta = load_with_meta(path)
        consumed = meta.get("items_consumed")
        if not isinstance(consumed, int) or consumed < 0:
            raise StoreError(
                f"{path} is not a checkpoint: its snapshot meta lacks a "
                "valid items_consumed count"
            )
        return cls(
            summary,
            path,
            every_items=every_items,
            every_seconds=every_seconds,
            items_consumed=consumed,
        )


_SHARD_NAME = re.compile(r"^shard-(\d{8})" + re.escape(SNAPSHOT_SUFFIX) + "$")


class ShardCheckpointStore:
    """A directory of per-shard snapshots for resumable parallel ingest.

    Layout::

        <directory>/
            manifest.json          # pinned run parameters
            shard-00000000.rcs     # one snapshot per absorbed chunk
            shard-00000001.rcs
            ...

    The manifest pins everything that must not change between the
    original run and a resume — backend, depth, width, seed, chunk size,
    candidate count — because shards only merge exactly when the hash
    family and the chunk boundaries are identical.
    """

    MANIFEST_NAME = "manifest.json"

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._directory

    def _manifest_path(self) -> Path:
        return self._directory / self.MANIFEST_NAME

    def read_manifest(self) -> dict[str, Any] | None:
        """The stored run parameters, or ``None`` for a fresh directory."""
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(
                f"{path} is not a valid checkpoint manifest: {error}"
            ) from error
        if not isinstance(manifest, dict):
            raise StoreError(f"{path} must contain a JSON object")
        return manifest

    def ensure_manifest(self, params: dict[str, Any]) -> None:
        """Pin ``params``, or verify them against an existing manifest.

        Raises:
            CheckpointMismatchError: when the directory was written by a
                run with different parameters — resuming would silently
                merge incompatible shards, so it is refused loudly.
        """
        existing = self.read_manifest()
        if existing is None:
            atomic_write_bytes(
                self._manifest_path(),
                json.dumps(params, sort_keys=True, indent=2).encode("utf-8"),
            )
            return
        if existing != params:
            differing = sorted(
                key
                for key in set(existing) | set(params)
                if existing.get(key) != params.get(key)
            )
            detail = "; ".join(
                f"{key}: manifest records {existing.get(key)!r}, "
                f"this run wants {params.get(key)!r}"
                for key in differing
            )
            raise CheckpointMismatchError(
                f"checkpoint directory {self._directory} was written with "
                f"different parameters ({detail}); resume with the "
                "original settings or use a fresh directory"
            )

    def shard_path(self, index: int) -> Path:
        """The snapshot path for chunk ``index``."""
        if index < 0:
            raise ValueError("shard index cannot be negative")
        return self._directory / f"shard-{index:08d}{SNAPSHOT_SUFFIX}"

    def save_shard(
        self,
        index: int,
        sketch: Snapshotable,
        *,
        items: int,
        candidates: Iterable[Hashable] = (),
    ) -> int:
        """Persist one absorbed shard atomically; returns bytes written.

        ``candidates`` (the shard's top-k candidate items, when running
        in top-k mode) ride in the snapshot meta and come back decoded
        from :meth:`load_shards`.
        """
        meta: dict[str, Any] = {
            "chunk_index": index,
            "items": items,
            "candidates": [encode_item(item) for item in candidates],
        }
        return save(sketch, self.shard_path(index), meta=meta)

    def covered_indices(self) -> list[int]:
        """Chunk indices with a persisted shard, ascending."""
        indices = []
        for entry in self._directory.iterdir():
            match = _SHARD_NAME.match(entry.name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices)

    def load_shards(
        self,
    ) -> Iterator[tuple[int, Snapshotable, dict[str, Any]]]:
        """Yield ``(chunk_index, sketch, meta)`` per shard, ascending.

        Raises:
            StoreError: when a shard's recorded ``chunk_index`` disagrees
                with its filename (a sign of hand-edited files).
        """
        for index in self.covered_indices():
            sketch, meta = load_with_meta(self.shard_path(index))
            if meta.get("chunk_index") != index:
                raise StoreError(
                    f"shard file {self.shard_path(index).name} records "
                    f"chunk_index={meta.get('chunk_index')!r}; the "
                    "checkpoint directory is inconsistent"
                )
            stored = meta.get("candidates", [])
            if not isinstance(stored, list):
                raise StoreError("shard candidate list is malformed")
            meta = dict(meta)
            meta["candidates"] = [decode_item(value) for value in stored]
            yield index, sketch, meta

    def clear(self) -> None:
        """Delete the manifest and every shard (after a completed run)."""
        for index in self.covered_indices():
            self.shard_path(index).unlink()
        manifest = self._manifest_path()
        if manifest.exists():
            manifest.unlink()
