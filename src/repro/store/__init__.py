"""Durable snapshots, checkpoint/resume, and the temporal sketch archive.

The persistence layer for every summary type in the repo:

* :func:`save` / :func:`load` — exact, CRC-checked, atomically-written
  binary snapshots (``.rcs`` files) of sketches, trackers, and windows.
* :class:`CheckpointManager` / :class:`ShardCheckpointStore` — periodic
  checkpointing during (serial or sharded) ingestion, with bit-for-bit
  resume after a crash.
* :class:`SketchArchive` — an on-disk sequence of epoch sketches sharing
  one hash family, supporting historical max-change between any two
  epochs and exact dyadic-interval range merges (§3.2 linearity).

See ``docs/persistence.md`` for the format specification and worked
examples.
"""

from repro.store.archive import ArchiveDiffEntry, SketchArchive
from repro.store.checkpoint import (
    CheckpointManager,
    CheckpointMismatchError,
    ShardCheckpointStore,
    apply_update_batch,
)
from repro.store.codec import (
    Snapshotable,
    dumps,
    inspect,
    load,
    load_with_meta,
    loads,
    save,
)
from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    SNAPSHOT_SUFFIX,
    SnapshotFormatError,
    StoreError,
    UnsupportedVersionError,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "ArchiveDiffEntry",
    "CheckpointManager",
    "CheckpointMismatchError",
    "ShardCheckpointStore",
    "SketchArchive",
    "SnapshotFormatError",
    "Snapshotable",
    "StoreError",
    "UnsupportedVersionError",
    "apply_update_batch",
    "dumps",
    "inspect",
    "load",
    "load_with_meta",
    "loads",
    "save",
]
