"""The versioned binary snapshot container: framing, checksums, atomics.

Every durable sketch snapshot this library writes is one **frame**:

| offset | size | field |
|---|---|---|
| 0 | 8 | magic ``b"RCSKETCH"`` |
| 8 | 2 | format version (``u16`` LE, currently 1) |
| 10 | 2 | summary type code (``u16`` LE, see ``TYPE_NAMES``) |
| 12 | 4 | header length ``H`` (``u32`` LE) |
| 16 | 4 | CRC32 of the header bytes (``u32`` LE) |
| 20 | H | header: canonical UTF-8 JSON (sorted keys) |
| 20+H | 8 | payload length ``P`` (``u64`` LE) |
| 28+H | 4 | CRC32 of the payload bytes (``u32`` LE) |
| 32+H | P | payload: little-endian ``int64`` counter blocks |

The header carries everything small and structural — dimensions, seed,
polynomial hash coefficients, heap entries — as JSON, so the format can
grow fields without a version bump.  The payload carries the counter
arrays as raw ``<i8`` bytes (the dominant cost at production widths),
never boxed through Python ints.  Both sections are CRC32-checked so a
truncated or bit-flipped file is rejected with
:class:`SnapshotFormatError` instead of resurrecting a corrupt sketch.

Writes are atomic: the frame lands in a temporary sibling file, is
fsynced, and is renamed over the destination (``os.replace``), so a
crash mid-write leaves either the old snapshot or the new one — never a
torn file.  This is what makes checkpoint files trustworthy for
crash-recovery (:mod:`repro.store.checkpoint`).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from collections.abc import Hashable
from pathlib import Path
from typing import Any

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SNAPSHOT_SUFFIX",
    "TYPE_CODES",
    "TYPE_NAMES",
    "SnapshotFormatError",
    "StoreError",
    "UnsupportedVersionError",
    "atomic_write_bytes",
    "decode_frame",
    "decode_item",
    "encode_frame",
    "encode_item",
]

#: Magic prefix identifying a repro sketch snapshot.
MAGIC = b"RCSKETCH"

#: Current (and only) frame format version.
FORMAT_VERSION = 1

#: Conventional file extension for snapshot files.
SNAPSHOT_SUFFIX = ".rcs"

#: Summary type codes (``u16`` in the frame prologue).  Codes are part of
#: the on-disk format: never renumber, only append.
TYPE_CODES = {
    "dense": 1,
    "sparse": 2,
    "vectorized": 3,
    "topk": 4,
    "window": 5,
}

#: Reverse map: code -> stable type name.
TYPE_NAMES = {code: name for name, code in TYPE_CODES.items()}

_PROLOGUE = struct.Struct("<8sHHII")  # magic, version, type, hlen, hcrc
_PAYLOAD_PREFIX = struct.Struct("<QI")  # plen, pcrc


class StoreError(Exception):
    """Base class for every :mod:`repro.store` failure."""


class SnapshotFormatError(StoreError):
    """The file is not a valid snapshot (bad magic, truncation, CRC)."""


class UnsupportedVersionError(StoreError):
    """The snapshot declares a format version this code cannot read."""


def encode_frame(type_code: int, header: dict[str, Any],
                 payload: bytes) -> bytes:
    """Assemble one snapshot frame from its parts.

    The header is serialized as canonical JSON (sorted keys, no
    whitespace), which makes byte-identical snapshots a deterministic
    function of the summary state — the property the golden-fixture
    format-stability gate checks.
    """
    if type_code not in TYPE_NAMES:
        raise ValueError(f"unknown snapshot type code {type_code}")
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return b"".join(
        (
            _PROLOGUE.pack(
                MAGIC,
                FORMAT_VERSION,
                type_code,
                len(header_bytes),
                zlib.crc32(header_bytes),
            ),
            header_bytes,
            _PAYLOAD_PREFIX.pack(len(payload), zlib.crc32(payload)),
            payload,
        )
    )


def decode_frame(data: bytes) -> tuple[int, dict[str, Any], bytes]:
    """Split and verify one frame; returns ``(type_code, header, payload)``.

    Raises:
        SnapshotFormatError: on bad magic, truncation, trailing garbage,
            a CRC mismatch, or an unknown type code.
        UnsupportedVersionError: when the frame's version is newer than
            this reader.
    """
    if len(data) < _PROLOGUE.size:
        raise SnapshotFormatError(
            f"file too short for a snapshot prologue "
            f"({len(data)} < {_PROLOGUE.size} bytes)"
        )
    magic, version, type_code, header_len, header_crc = _PROLOGUE.unpack_from(
        data
    )
    if magic != MAGIC:
        raise SnapshotFormatError(
            f"bad magic {magic!r}: not a repro sketch snapshot"
        )
    if version != FORMAT_VERSION:
        raise UnsupportedVersionError(
            f"snapshot format version {version} is not supported "
            f"(this reader understands version {FORMAT_VERSION})"
        )
    if type_code not in TYPE_NAMES:
        raise SnapshotFormatError(f"unknown snapshot type code {type_code}")
    header_start = _PROLOGUE.size
    header_end = header_start + header_len
    if len(data) < header_end + _PAYLOAD_PREFIX.size:
        raise SnapshotFormatError("snapshot truncated inside the header")
    header_bytes = data[header_start:header_end]
    if zlib.crc32(header_bytes) != header_crc:
        raise SnapshotFormatError(
            "header CRC mismatch: the snapshot is corrupt"
        )
    payload_len, payload_crc = _PAYLOAD_PREFIX.unpack_from(data, header_end)
    payload_start = header_end + _PAYLOAD_PREFIX.size
    payload_end = payload_start + payload_len
    if len(data) < payload_end:
        raise SnapshotFormatError("snapshot truncated inside the payload")
    if len(data) > payload_end:
        raise SnapshotFormatError(
            f"{len(data) - payload_end} trailing byte(s) after the payload"
        )
    payload = data[payload_start:payload_end]
    if zlib.crc32(payload) != payload_crc:
        raise SnapshotFormatError(
            "payload CRC mismatch: the snapshot is corrupt"
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotFormatError(
            f"snapshot header is not valid JSON: {error}"
        ) from error
    if not isinstance(header, dict):
        raise SnapshotFormatError("snapshot header must be a JSON object")
    return type_code, header, payload


def atomic_write_bytes(path: str | Path, data: bytes) -> int:
    """Write ``data`` to ``path`` atomically; returns the bytes written.

    The data goes to a temporary file in the destination directory, is
    flushed and fsynced, and is renamed over ``path``; on POSIX the
    directory entry is fsynced too, so the rename itself survives a
    crash.  Readers therefore never observe a partial file.
    """
    path = Path(path)
    parent = path.parent
    descriptor, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=parent
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with _suppress_oserror():
            os.unlink(tmp_name)
        raise
    if hasattr(os, "O_DIRECTORY"):  # POSIX: persist the rename itself
        with _suppress_oserror():
            dir_fd = os.open(parent, os.O_RDONLY | os.O_DIRECTORY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    return len(data)


class _suppress_oserror:
    """Tiny ``contextlib.suppress(OSError)`` without the import."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        return exc_type is not None and issubclass(
            exc_type, OSError  # type: ignore[arg-type]
        )


# -- item coding -------------------------------------------------------------
#
# Heap members and candidate lists store the original stream items, which
# may be any type repro.hashing.encode supports.  They ride in the JSON
# header with two escape wrappers for the types JSON lacks; plain JSON
# scalars (str/int/float/bool) pass through unchanged.

def encode_item(item: Hashable) -> object:
    """Convert a stream item to a JSON-representable value.

    Raises:
        TypeError: for item types the sketch key encoding does not
            support either (so anything sketchable is snapshotable).
    """
    if isinstance(item, tuple):
        return {"__tuple__": [encode_item(part) for part in item]}
    if isinstance(item, (bytes, bytearray)):
        return {"__bytes__": bytes(item).hex()}
    if isinstance(item, (str, int, float, bool)):
        return item
    raise TypeError(
        f"cannot snapshot item of type {type(item).__name__!r}; "
        "supported: str, int, float, bool, bytes, tuple"
    )


def decode_item(value: object) -> Hashable:
    """Invert :func:`encode_item`."""
    if isinstance(value, dict):
        if "__tuple__" in value:
            parts = value["__tuple__"]
            if not isinstance(parts, list):
                raise SnapshotFormatError("malformed tuple item encoding")
            return tuple(decode_item(part) for part in parts)
        if "__bytes__" in value:
            encoded = value["__bytes__"]
            if not isinstance(encoded, str):
                raise SnapshotFormatError("malformed bytes item encoding")
            return bytes.fromhex(encoded)
        raise SnapshotFormatError(f"unknown item encoding {value!r}")
    if isinstance(value, (str, int, float, bool)) :
        return value
    raise SnapshotFormatError(f"unsupported item value {value!r}")
