"""Save/load any summary type to the versioned snapshot format.

One pair of entry points — :func:`save` and :func:`load` — covers all
five summary types (:class:`~repro.core.countsketch.CountSketch`,
:class:`~repro.core.sparse.SparseCountSketch`,
:class:`~repro.core.vectorized.VectorizedCountSketch`,
:class:`~repro.core.topk.TopKTracker`, and
:class:`~repro.core.windowed.JumpingWindowSketch`).  The codec consumes
only each class's public ``state_dict`` / ``from_state_dict`` contract —
private sketch state never crosses the module boundary, so the core
invariants (and the RS002/RS004 lint rules that guard them) hold.

Round-trips are exact: counters travel as raw little-endian ``int64``
blocks, heap entries keep their internal array order, and every
structural field rides in the JSON header.  ``load(save(s)) == s`` down
to tie-breaking in top-``k`` output.

Snapshots may carry a caller-supplied ``meta`` mapping (JSON-compatible)
— the checkpoint layer stores stream positions there — retrievable
without deserializing the summary via :func:`inspect`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.observability.registry import MetricsRegistry, get_registry
from repro.store.format import (
    FORMAT_VERSION,
    TYPE_CODES,
    TYPE_NAMES,
    SnapshotFormatError,
    atomic_write_bytes,
    decode_frame,
    decode_item,
    encode_frame,
    encode_item,
)

__all__ = [
    "Snapshotable",
    "dumps",
    "inspect",
    "load",
    "load_with_meta",
    "loads",
    "save",
]

#: The union of summary types the codec understands.
Snapshotable = (
    CountSketch
    | SparseCountSketch
    | VectorizedCountSketch
    | TopKTracker
    | JumpingWindowSketch
)

_INT64 = np.dtype("<i8")


class _CodecMetrics:
    """Metric handles captured per codec operation when collection is on."""

    __slots__ = ("saves", "loads", "bytes_written", "bytes_read")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.saves = registry.counter("store_snapshot_saves_total")
        self.loads = registry.counter("store_snapshot_loads_total")
        self.bytes_written = registry.counter("store_bytes_written_total")
        self.bytes_read = registry.counter("store_bytes_read_total")


def _counters_payload(counters: np.ndarray) -> bytes:
    """Counter block as raw C-order little-endian int64 bytes."""
    return np.ascontiguousarray(counters, dtype=_INT64).tobytes()


def _counters_from(payload: bytes, offset: int, depth: int,
                   width: int) -> tuple[np.ndarray, int]:
    """Read one ``depth × width`` int64 block from ``payload``.

    Returns the array and the offset just past it.  The frame CRC has
    already vouched for the bytes; this only checks the length budget.
    """
    size = depth * width * _INT64.itemsize
    end = offset + size
    if end > len(payload):
        raise SnapshotFormatError(
            "payload too short for the declared counter dimensions"
        )
    block = np.frombuffer(payload, dtype=_INT64, count=depth * width,
                          offset=offset)
    return block.reshape(depth, width).astype(np.int64, copy=True), end


def _require_fields(header: dict[str, Any], *names: str) -> None:
    missing = [name for name in names if name not in header]
    if missing:
        raise SnapshotFormatError(
            f"snapshot header is missing field(s): {', '.join(missing)}"
        )


# -- per-type encoders --------------------------------------------------------

def _encode_dense(sketch: CountSketch) -> tuple[int, dict[str, Any], bytes]:
    state = sketch.state_dict()
    header = {
        "depth": state["depth"],
        "width": state["width"],
        "seed": state["seed"],
        "total_weight": state["total_weight"],
        "bucket_coefficients": state["bucket_coefficients"],
        "sign_coefficients": state["sign_coefficients"],
    }
    return TYPE_CODES["dense"], header, _counters_payload(state["counters"])


def _decode_dense(header: dict[str, Any], payload: bytes) -> CountSketch:
    _require_fields(
        header, "depth", "width", "seed", "total_weight",
        "bucket_coefficients", "sign_coefficients",
    )
    counters, end = _counters_from(
        payload, 0, header["depth"], header["width"]
    )
    _expect_consumed(payload, end)
    return CountSketch.from_state_dict(
        {
            "depth": header["depth"],
            "width": header["width"],
            "seed": header["seed"],
            "total_weight": header["total_weight"],
            "bucket_coefficients": header["bucket_coefficients"],
            "sign_coefficients": header["sign_coefficients"],
            "counters": counters,
        }
    )


def _encode_vectorized(
    sketch: VectorizedCountSketch,
) -> tuple[int, dict[str, Any], bytes]:
    state = sketch.state_dict()
    header = {
        "depth": state["depth"],
        "width": state["width"],
        "seed": state["seed"],
        "total_weight": state["total_weight"],
    }
    return (
        TYPE_CODES["vectorized"], header,
        _counters_payload(state["counters"]),
    )


def _decode_vectorized(
    header: dict[str, Any], payload: bytes
) -> VectorizedCountSketch:
    _require_fields(header, "depth", "width", "seed", "total_weight")
    counters, end = _counters_from(
        payload, 0, header["depth"], header["width"]
    )
    _expect_consumed(payload, end)
    return VectorizedCountSketch.from_state_dict(
        {
            "depth": header["depth"],
            "width": header["width"],
            "seed": header["seed"],
            "total_weight": header["total_weight"],
            "counters": counters,
        }
    )


def _encode_sparse(
    sketch: SparseCountSketch,
) -> tuple[int, dict[str, Any], bytes]:
    state = sketch.state_dict()
    row_lengths = []
    blocks = []
    for row in state["rows"]:
        buckets = sorted(row)  # canonical order -> deterministic bytes
        row_lengths.append(len(buckets))
        blocks.append(np.asarray(buckets, dtype=_INT64).tobytes())
        blocks.append(
            np.asarray([row[b] for b in buckets], dtype=_INT64).tobytes()
        )
    header = {
        "depth": state["depth"],
        "width": state["width"],
        "seed": state["seed"],
        "total_weight": state["total_weight"],
        "row_lengths": row_lengths,
    }
    return TYPE_CODES["sparse"], header, b"".join(blocks)


def _decode_sparse(
    header: dict[str, Any], payload: bytes
) -> SparseCountSketch:
    _require_fields(
        header, "depth", "width", "seed", "total_weight", "row_lengths"
    )
    row_lengths = header["row_lengths"]
    if len(row_lengths) != header["depth"]:
        raise SnapshotFormatError(
            "row_lengths must list one length per sketch row"
        )
    rows: list[dict[int, int]] = []
    offset = 0
    for length in row_lengths:
        if not isinstance(length, int) or length < 0:
            raise SnapshotFormatError("row lengths must be nonnegative ints")
        size = length * _INT64.itemsize
        if offset + 2 * size > len(payload):
            raise SnapshotFormatError(
                "payload too short for the declared sparse row lengths"
            )
        buckets = np.frombuffer(payload, dtype=_INT64, count=length,
                                offset=offset)
        offset += size
        values = np.frombuffer(payload, dtype=_INT64, count=length,
                               offset=offset)
        offset += size
        rows.append(
            {int(b): int(v) for b, v in zip(buckets, values, strict=True)}
        )
    _expect_consumed(payload, offset)
    return SparseCountSketch.from_state_dict(
        {
            "depth": header["depth"],
            "width": header["width"],
            "seed": header["seed"],
            "total_weight": header["total_weight"],
            "rows": rows,
        }
    )


def _encode_topk(tracker: TopKTracker) -> tuple[int, dict[str, Any], bytes]:
    state = tracker.state_dict()
    sketch_state = state["sketch"]
    header = {
        "k": state["k"],
        "exact_heap_counts": state["exact_heap_counts"],
        "items_processed": state["items_processed"],
        "heap": [
            [encode_item(item), priority]
            for item, priority in state["heap"]
        ],
        "sketch": {
            "depth": sketch_state["depth"],
            "width": sketch_state["width"],
            "seed": sketch_state["seed"],
            "total_weight": sketch_state["total_weight"],
            "bucket_coefficients": sketch_state["bucket_coefficients"],
            "sign_coefficients": sketch_state["sign_coefficients"],
        },
    }
    return (
        TYPE_CODES["topk"], header,
        _counters_payload(sketch_state["counters"]),
    )


def _decode_topk(header: dict[str, Any], payload: bytes) -> TopKTracker:
    _require_fields(
        header, "k", "exact_heap_counts", "items_processed", "heap", "sketch"
    )
    sketch_header = header["sketch"]
    if not isinstance(sketch_header, dict):
        raise SnapshotFormatError("topk sketch header must be an object")
    _require_fields(
        sketch_header, "depth", "width", "seed", "total_weight",
        "bucket_coefficients", "sign_coefficients",
    )
    counters, end = _counters_from(
        payload, 0, sketch_header["depth"], sketch_header["width"]
    )
    _expect_consumed(payload, end)
    heap_entries = header["heap"]
    if not isinstance(heap_entries, list) or any(
        not isinstance(entry, list) or len(entry) != 2
        for entry in heap_entries
    ):
        raise SnapshotFormatError(
            "topk heap must be a list of [item, priority] pairs"
        )
    return TopKTracker.from_state_dict(
        {
            "k": header["k"],
            "exact_heap_counts": header["exact_heap_counts"],
            "items_processed": header["items_processed"],
            "heap": [
                (decode_item(item), priority)
                for item, priority in heap_entries
            ],
            "sketch": {**sketch_header, "counters": counters},
        }
    )


def _encode_window(
    window: JumpingWindowSketch,
) -> tuple[int, dict[str, Any], bytes]:
    state = window.state_dict()
    header = {
        "window": state["window"],
        "buckets": state["buckets"],
        "depth": state["depth"],
        "width": state["width"],
        "seed": state["seed"],
        "current_fill": state["current_fill"],
        "items_seen": state["items_seen"],
        "aggregate_weight": state["aggregate"]["total_weight"],
        "ring_weights": [sub["total_weight"] for sub in state["ring"]],
    }
    blocks = [_counters_payload(state["aggregate"]["counters"])]
    blocks.extend(_counters_payload(sub["counters"]) for sub in state["ring"])
    return TYPE_CODES["window"], header, b"".join(blocks)


def _decode_window(
    header: dict[str, Any], payload: bytes
) -> JumpingWindowSketch:
    _require_fields(
        header, "window", "buckets", "depth", "width", "seed",
        "current_fill", "items_seen", "aggregate_weight", "ring_weights",
    )
    depth, width = header["depth"], header["width"]
    aggregate_counters, offset = _counters_from(payload, 0, depth, width)
    ring = []
    for weight in header["ring_weights"]:
        counters, offset = _counters_from(payload, offset, depth, width)
        ring.append({"counters": counters, "total_weight": weight})
    _expect_consumed(payload, offset)
    return JumpingWindowSketch.from_state_dict(
        {
            "window": header["window"],
            "buckets": header["buckets"],
            "depth": depth,
            "width": width,
            "seed": header["seed"],
            "current_fill": header["current_fill"],
            "items_seen": header["items_seen"],
            "aggregate": {
                "counters": aggregate_counters,
                "total_weight": header["aggregate_weight"],
            },
            "ring": ring,
        }
    )


def _expect_consumed(payload: bytes, end: int) -> None:
    if end != len(payload):
        raise SnapshotFormatError(
            f"{len(payload) - end} unexpected byte(s) left in the payload"
        )


_ENCODERS = (
    (CountSketch, _encode_dense),
    (SparseCountSketch, _encode_sparse),
    (VectorizedCountSketch, _encode_vectorized),
    (TopKTracker, _encode_topk),
    (JumpingWindowSketch, _encode_window),
)

_DECODERS = {
    TYPE_CODES["dense"]: _decode_dense,
    TYPE_CODES["sparse"]: _decode_sparse,
    TYPE_CODES["vectorized"]: _decode_vectorized,
    TYPE_CODES["topk"]: _decode_topk,
    TYPE_CODES["window"]: _decode_window,
}


# -- public API ---------------------------------------------------------------

def dumps(summary: Snapshotable, meta: dict[str, Any] | None = None) -> bytes:
    """Serialize ``summary`` to snapshot bytes (the frame, in memory).

    Args:
        summary: any of the five supported summary types.
        meta: optional JSON-compatible mapping stored alongside the
            summary (e.g. a checkpoint's stream position); retrievable
            via :func:`inspect` / :func:`load_with_meta`.

    Raises:
        TypeError: for unsupported summary types.
    """
    for summary_type, encoder in _ENCODERS:
        if isinstance(summary, summary_type):
            type_code, header, payload = encoder(summary)
            break
    else:
        raise TypeError(
            f"cannot snapshot {type(summary).__name__}: supported types are "
            + ", ".join(t.__name__ for t, __ in _ENCODERS)
        )
    if meta is not None:
        header["meta"] = dict(meta)
    return encode_frame(type_code, header, payload)


def loads(data: bytes) -> Snapshotable:
    """Deserialize snapshot bytes produced by :func:`dumps`."""
    summary, __ = _loads_with_header(data)
    return summary


def _loads_with_header(data: bytes) -> tuple[Snapshotable, dict[str, Any]]:
    type_code, header, payload = decode_frame(data)
    try:
        return _DECODERS[type_code](header, payload), header
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, SnapshotFormatError):
            raise
        raise SnapshotFormatError(
            f"snapshot rejected while rebuilding the summary: {error}"
        ) from error


def save(summary: Snapshotable, path: str | Path,
         meta: dict[str, Any] | None = None) -> int:
    """Write ``summary`` to ``path`` atomically; returns bytes written.

    The write is crash-safe (tmp file + fsync + rename): readers see the
    previous snapshot or the new one, never a torn file.
    """
    data = dumps(summary, meta=meta)
    written = atomic_write_bytes(path, data)
    registry = get_registry()
    if registry.enabled:
        metrics = _CodecMetrics(registry)
        metrics.saves.inc()
        metrics.bytes_written.inc(written)
    return written


def load(path: str | Path) -> Snapshotable:
    """Read back a summary written by :func:`save`.

    Raises:
        SnapshotFormatError: for corrupt, truncated, or non-snapshot
            files.
        UnsupportedVersionError: for snapshots from a newer format.
    """
    summary, __ = load_with_meta(path)
    return summary


def load_with_meta(
    path: str | Path,
) -> tuple[Snapshotable, dict[str, Any]]:
    """Like :func:`load` but also returns the snapshot's ``meta`` mapping
    (empty when the writer attached none)."""
    data = Path(path).read_bytes()
    summary, header = _loads_with_header(data)
    registry = get_registry()
    if registry.enabled:
        metrics = _CodecMetrics(registry)
        metrics.loads.inc()
        metrics.bytes_read.inc(len(data))
    meta = header.get("meta", {})
    if not isinstance(meta, dict):
        raise SnapshotFormatError("snapshot meta must be a JSON object")
    return summary, meta


def inspect(path: str | Path) -> dict[str, Any]:
    """Describe a snapshot without rebuilding the summary.

    Returns a dict with the stable type name, format version, file size,
    the structural header fields (dimensions, seed, weights — everything
    except bulk coefficient lists and heap contents), and the ``meta``
    mapping.  Cheap even for very wide sketches: the counter payload is
    CRC-checked but never converted to an array.
    """
    data = Path(path).read_bytes()
    type_code, header, payload = decode_frame(data)
    summarized = {
        key: value
        for key, value in header.items()
        if key not in (
            "bucket_coefficients", "sign_coefficients", "heap", "meta",
        )
    }
    if "sketch" in summarized and isinstance(summarized["sketch"], dict):
        summarized["sketch"] = {
            key: value
            for key, value in summarized["sketch"].items()
            if key not in ("bucket_coefficients", "sign_coefficients")
        }
    if "heap" in header:
        summarized["heap_size"] = len(header["heap"])
    return {
        "type": TYPE_NAMES[type_code],
        "format_version": FORMAT_VERSION,
        "file_bytes": len(data),
        "payload_bytes": len(payload),
        "header": summarized,
        "meta": header.get("meta", {}),
    }
