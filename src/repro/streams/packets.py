"""Synthetic packet-flow streams.

The paper's second motivating application is "identifying large packet
flows in a network router" (§1).  Real router traces are not shippable, so
this generator emits a synthetic packet stream whose *flow size
distribution* is heavy-tailed — the property the paper cites from Crovella
et al. [3] and the one that makes sketching effective (a small tail second
moment relative to the heavy flows).

Each stream item is a :class:`Flow` 5-tuple (the natural flow key in a
router), exercising the tuple-keyed encoding path.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.streams.alias import AliasSampler
from repro.streams.model import Stream
from repro.streams.zipf import zipf_weights


class Flow(NamedTuple):
    """A network flow key: the classic 5-tuple."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str


def _random_ip(rng: np.random.Generator) -> str:
    octets = rng.integers(1, 255, size=4)
    return ".".join(str(int(o)) for o in octets)


class FlowStreamGenerator:
    """Generate packet streams with heavy-tailed flow sizes.

    Flow packet counts follow a discretized Pareto law implemented as a
    Zipf(``z``) popularity over flows: the rank-1 flow ("the elephant")
    carries the most packets, mirroring the elephant/mice structure of real
    traffic.

    Args:
        num_flows: distinct flows in the trace.
        z: skew of the flow-size distribution (≥ 1 gives pronounced
            elephants).
        seed: generation seed.
    """

    def __init__(self, num_flows: int = 5_000, z: float = 1.2, seed: int = 0) -> None:
        if num_flows < 1:
            raise ValueError("num_flows must be positive")
        self._z = z
        self._seed = seed
        rng = np.random.default_rng(seed)
        protocols = ("tcp", "udp", "icmp")
        self._flows = [
            Flow(
                src_ip=_random_ip(rng),
                dst_ip=_random_ip(rng),
                src_port=int(rng.integers(1024, 65536)),
                dst_port=int(rng.choice([80, 443, 53, 22, 8080])),
                protocol=str(rng.choice(protocols)),
            )
            for _ in range(num_flows)
        ]
        self._sampler = AliasSampler(zipf_weights(num_flows, z), seed=seed + 1)

    @property
    def flows(self) -> list[Flow]:
        """All flows, heaviest (rank 1) first."""
        return list(self._flows)

    def flow_for_rank(self, rank: int) -> Flow:
        """The flow at size rank ``rank`` (1-based)."""
        return self._flows[rank - 1]

    def generate(self, n: int) -> Stream:
        """Generate a stream of ``n`` packets (one :class:`Flow` each)."""
        draws = self._sampler.sample_many(n)
        items = [self._flows[index] for index in draws]
        return Stream(
            items=items,
            name=f"packets(z={self._z}, flows={len(self._flows)})",
            params={
                "dist": "packets",
                "z": self._z,
                "num_flows": len(self._flows),
                "seed": self._seed,
            },
        )
