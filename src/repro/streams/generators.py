"""Non-Zipfian stream generators: uniform, planted heavy hitters, and the
paper's adversarial boundary case.

* :func:`uniform_stream` — the ``z = 0`` extreme, where *no* algorithm can
  meaningfully separate "frequent" items; useful for testing the failure
  modes each algorithm promises (and the ones it doesn't).
* :func:`planted_heavy_hitter_stream` — a configurable set of heavy items on
  top of a Zipf background.  This is the workload for the median-vs-mean
  ablation (A1): §3.1's motivation for the median is exactly that heavy
  items poison the mean of the per-row estimates.
* :func:`adversarial_boundary_stream` — the §1 hard instance for
  CANDIDATETOP: the ``k``-th and ``(l+1)``-st most frequent items differ by
  a single occurrence (``n_k = n_{l+1} + 1``), which is why the paper
  retreats to APPROXTOP.
"""

from __future__ import annotations

import numpy as np

from repro.streams.alias import AliasSampler
from repro.streams.model import Stream
from repro.streams.zipf import zipf_weights


def uniform_stream(m: int, n: int, seed: int = 0) -> Stream:
    """A stream of ``n`` items drawn uniformly from ``m`` objects.

    Args:
        m: number of distinct objects (items are the ints ``1..m``).
        n: stream length.
        seed: generator seed.
    """
    if m < 1:
        raise ValueError("m must be positive")
    if n < 0:
        raise ValueError("n must be nonnegative")
    rng = np.random.default_rng(seed)
    items = (rng.integers(1, m + 1, size=n)).tolist()
    return Stream(
        items=items,
        name=f"uniform(m={m})",
        params={"dist": "uniform", "m": m, "seed": seed},
    )


def planted_heavy_hitter_stream(
    m: int,
    n: int,
    heavy_items: int,
    heavy_fraction: float,
    background_z: float = 1.0,
    seed: int = 0,
) -> Stream:
    """A Zipf background with ``heavy_items`` planted heavy hitters.

    The heavy items (labelled ``"heavy-1" .. "heavy-H"``) collectively carry
    ``heavy_fraction`` of the stream, split evenly; the remaining mass is a
    Zipf(``background_z``) stream over integer items ``1..m``.

    Args:
        m: number of distinct background objects.
        n: stream length.
        heavy_items: number of planted heavy hitters.
        heavy_fraction: total probability mass of the planted items, in
            ``(0, 1)``.
        background_z: Zipf parameter of the background traffic.
        seed: generator seed.
    """
    if heavy_items < 1:
        raise ValueError("heavy_items must be positive")
    if not 0 < heavy_fraction < 1:
        raise ValueError("heavy_fraction must be in (0, 1)")
    background = zipf_weights(m, background_z)
    background = background / background.sum() * (1.0 - heavy_fraction)
    heavy = np.full(heavy_items, heavy_fraction / heavy_items)
    weights = np.concatenate([heavy, background])
    sampler = AliasSampler(weights, seed=seed)
    draws = sampler.sample_many(n)
    items: list = [
        f"heavy-{index + 1}" if index < heavy_items else int(index - heavy_items + 1)
        for index in draws
    ]
    return Stream(
        items=items,
        name=f"planted(h={heavy_items}, frac={heavy_fraction})",
        params={
            "dist": "planted",
            "m": m,
            "heavy_items": heavy_items,
            "heavy_fraction": heavy_fraction,
            "background_z": background_z,
            "seed": seed,
        },
    )


def adversarial_boundary_stream(
    k: int, l: int, scale: int, padding_items: int = 0, seed: int = 0
) -> Stream:
    """§1's hard CANDIDATETOP instance: ``n_k = n_{l+1} + 1``.

    Items ``1..k`` each occur ``scale + 1`` times; items ``k+1..l+1`` each
    occur ``scale`` times, so distinguishing the k-th most frequent item
    from the (l+1)-st requires resolving a single-occurrence gap — the
    scaling argument the paper uses to motivate the (1±ε) relaxation.
    Optional ``padding_items`` singletons are appended as noise.  The stream
    order is shuffled deterministically by ``seed``.

    Args:
        k: number of "frequent" items.
        l: candidate list length being attacked (items ``k+1..l+1`` are the
            near-ties).
        scale: base count; the adversary "scales the n_i's towards
            infinity" by raising this.
        padding_items: extra distinct singleton items appended as noise.
        seed: shuffle seed.
    """
    if k < 1 or l < k:
        raise ValueError("need 1 <= k <= l")
    if scale < 1:
        raise ValueError("scale must be positive")
    items: list = []
    for item in range(1, k + 1):
        items.extend([item] * (scale + 1))
    for item in range(k + 1, l + 2):
        items.extend([item] * scale)
    items.extend(range(l + 2, l + 2 + padding_items))
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    items = [items[i] for i in order]
    return Stream(
        items=items,
        name=f"adversarial(k={k}, l={l}, scale={scale})",
        params={
            "dist": "adversarial",
            "k": k,
            "l": l,
            "scale": scale,
            "padding_items": padding_items,
            "seed": seed,
        },
    )
