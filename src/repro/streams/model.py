"""The :class:`Stream` wrapper: items plus generation metadata.

Experiments need to know how a stream was made (distribution, parameters,
seed) in order to label results and to compute theoretical predictions next
to measurements; binding the metadata to the data keeps the two from
drifting apart across a parameter sweep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Hashable, Iterator, Sequence
from typing import Any


@dataclass(frozen=True)
class Stream:
    """An in-memory data stream with provenance metadata.

    The object is itself a sequence (iterable, indexable, sized), so it can
    be passed anywhere a plain list of items is accepted — including twice,
    for the two-pass algorithms.

    Attributes:
        items: the stream items in arrival order.
        name: human-readable label used in experiment reports.
        params: the generation parameters (distribution, z, m, seed, ...).
    """

    items: Sequence[Hashable]
    name: str = "stream"
    params: dict[str, Any] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(
        self, index: int | slice
    ) -> Hashable | Sequence[Hashable]:
        return self.items[index]

    def counts(self) -> Counter[Hashable]:
        """Exact item counts (ground truth; O(n) each call, not cached)."""
        return Counter(self.items)

    def distinct(self) -> int:
        """Number of distinct items actually present."""
        return len(set(self.items))

    def describe(self) -> str:
        """One-line description for reports."""
        parts = [f"{self.name}: n={len(self.items)}"]
        for key, value in self.params.items():
            parts.append(f"{key}={value}")
        return ", ".join(parts)
