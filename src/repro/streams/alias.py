"""Walker's alias method for O(1) sampling from a discrete distribution.

Generating a length-``n`` Zipfian stream over ``m`` objects by inverse-CDF
search costs ``O(n log m)``; the alias method brings that to ``O(m)`` setup
plus ``O(1)`` per sample, which is what makes the larger experiment sweeps
practical.  The construction is the standard two-table (probability table +
alias table) formulation, built with exact queue bookkeeping so that the
represented distribution equals the input weights up to floating-point
rounding.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class AliasSampler:
    """Sample indices ``0..m-1`` proportionally to nonnegative weights.

    Args:
        weights: nonnegative weights, at least one positive.
        seed: seed for the internal NumPy generator.
    """

    def __init__(self, weights: Sequence[float], seed: int = 0) -> None:
        weights_arr = np.asarray(weights, dtype=np.float64)
        if weights_arr.ndim != 1 or weights_arr.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights_arr < 0) or not np.all(np.isfinite(weights_arr)):
            raise ValueError("weights must be finite and nonnegative")
        total = float(weights_arr.sum())
        if total <= 0:
            raise ValueError("at least one weight must be positive")

        m = weights_arr.size
        scaled = weights_arr * (m / total)
        probability = np.ones(m, dtype=np.float64)
        alias = np.arange(m, dtype=np.int64)

        small = [i for i in range(m) if scaled[i] < 1.0]
        large = [i for i in range(m) if scaled[i] >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            probability[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Leftovers are 1.0 up to rounding; pin them.
        for index in small + large:
            probability[index] = 1.0
            alias[index] = index

        self._probability = probability
        self._alias = alias
        self._rng = np.random.default_rng(seed)
        self._size = m
        self._weights = weights_arr / total

    @property
    def size(self) -> int:
        """Number of outcomes ``m``."""
        return self._size

    @property
    def probabilities(self) -> np.ndarray:
        """The normalized outcome probabilities (read-only copy)."""
        return self._weights.copy()

    def sample(self) -> int:
        """Draw a single index."""
        slot = int(self._rng.integers(self._size))
        if self._rng.random() < self._probability[slot]:
            return slot
        return int(self._alias[slot])

    def sample_many(self, n: int) -> np.ndarray:
        """Draw ``n`` indices as an int64 array (vectorized)."""
        if n < 0:
            raise ValueError("n must be nonnegative")
        slots = self._rng.integers(self._size, size=n)
        coins = self._rng.random(n)
        take_alias = coins >= self._probability[slots]
        result = slots.copy()
        result[take_alias] = self._alias[slots[take_alias]]
        return result.astype(np.int64)
