"""Temporally correlated (Markov) streams.

Real query and packet streams are not i.i.d. — the same query repeats in
bursts, flows send packet trains.  The Count Sketch itself is a function
of the frequency vector and therefore order-blind, but the §3.2 tracker's
heap decisions *do* depend on arrival order, so workloads with realistic
temporal correlation are worth testing against (the non-i.i.d. companion
to :mod:`repro.streams.zipf`).

The generator is a two-state-per-item burst process: at each step, with
probability ``repeat`` the previous item is emitted again (a burst
continues); otherwise a fresh item is drawn from a Zipf base
distribution.  The *stationary* item frequencies equal the base
distribution exactly (repetition rescales every item's rate by the same
``1/(1−repeat)`` factor), so ground-truth expectations carry over, while
the arrival order gains bursts of geometric length ``1/(1−repeat)``.
"""

from __future__ import annotations

import numpy as np

from repro.streams.alias import AliasSampler
from repro.streams.model import Stream
from repro.streams.zipf import zipf_weights


class BurstyZipfStreamGenerator:
    """Zipf frequencies with geometric repetition bursts.

    Args:
        m: number of distinct objects (items are ints ``1..m``).
        z: Zipf parameter of the base (and stationary) distribution.
        repeat: probability of repeating the previous item; ``0`` recovers
            the i.i.d. generator, values near 1 give long bursts.
        seed: generation seed.
    """

    def __init__(self, m: int, z: float, repeat: float = 0.5, seed: int = 0) -> None:
        if not 0 <= repeat < 1:
            raise ValueError("repeat must be in [0, 1)")
        self._m = m
        self._z = z
        self._repeat = repeat
        self._seed = seed
        self._sampler = AliasSampler(zipf_weights(m, z), seed=seed)
        self._rng = np.random.default_rng(seed + 1)

    @property
    def repeat(self) -> float:
        """The burst-continuation probability."""
        return self._repeat

    def expected_burst_length(self) -> float:
        """Mean burst length ``1 / (1 − repeat)``."""
        return 1.0 / (1.0 - self._repeat)

    def generate(self, n: int) -> Stream:
        """Generate a length-``n`` bursty stream."""
        if n < 0:
            raise ValueError("n must be nonnegative")
        fresh = self._sampler.sample_many(n) + 1
        coins = self._rng.random(n)
        items = np.empty(n, dtype=np.int64)
        previous = 0
        for position in range(n):
            if position > 0 and coins[position] < self._repeat:
                items[position] = previous
            else:
                items[position] = fresh[position]
            previous = items[position]
        return Stream(
            items=items.tolist(),
            name=f"bursty-zipf(z={self._z}, repeat={self._repeat})",
            params={
                "dist": "bursty-zipf",
                "m": self._m,
                "z": self._z,
                "repeat": self._repeat,
                "seed": self._seed,
            },
        )
