"""Synthetic stream workloads and stream utilities.

The paper's motivating workloads are proprietary (Google query logs, router
packet traces), so this package provides synthetic equivalents that match
the *distributional model the paper's own analysis uses*: Zipfian item
frequencies (§4.1), heavy-tailed flow sizes (Crovella et al., the paper's
[3]), and paired drifting streams for the §4.2 max-change problem.

* :mod:`repro.streams.alias` — Walker alias-method sampler (the substrate
  that makes exact-Zipf stream generation O(1) per item).
* :mod:`repro.streams.zipf` — Zipfian streams with parameter ``z``.
* :mod:`repro.streams.generators` — uniform / planted-heavy-hitter /
  adversarial-boundary streams.
* :mod:`repro.streams.drift` — paired before/after streams with known
  rising and falling items.
* :mod:`repro.streams.queries` — synthetic search-engine query streams
  (the paper's first motivating application).
* :mod:`repro.streams.packets` — synthetic packet-flow streams (the
  paper's networking application).
* :mod:`repro.streams.io` — plain-text / JSON-lines stream persistence.
* :mod:`repro.streams.model` — the :class:`~repro.streams.model.Stream`
  wrapper binding items to generation metadata.
"""

from repro.streams.alias import AliasSampler
from repro.streams.drift import DriftPair, make_drift_pair
from repro.streams.io import (
    TextStreamReader,
    iter_stream_text,
    read_stream_jsonl,
    read_stream_text,
    write_stream_jsonl,
    write_stream_text,
)
from repro.streams.generators import (
    adversarial_boundary_stream,
    planted_heavy_hitter_stream,
    uniform_stream,
)
from repro.streams.markov import BurstyZipfStreamGenerator
from repro.streams.model import Stream
from repro.streams.packets import Flow, FlowStreamGenerator
from repro.streams.queries import QueryStreamGenerator
from repro.streams.zipf import ZipfStreamGenerator, zipf_weights

__all__ = [
    "AliasSampler",
    "BurstyZipfStreamGenerator",
    "DriftPair",
    "Flow",
    "FlowStreamGenerator",
    "QueryStreamGenerator",
    "Stream",
    "TextStreamReader",
    "ZipfStreamGenerator",
    "adversarial_boundary_stream",
    "iter_stream_text",
    "make_drift_pair",
    "planted_heavy_hitter_stream",
    "read_stream_jsonl",
    "read_stream_text",
    "uniform_stream",
    "write_stream_jsonl",
    "write_stream_text",
    "zipf_weights",
]
