"""Stream persistence: plain-text and JSON-lines formats.

Two formats cover the item types this library produces:

* ``text`` — one item per line, for ``str`` and ``int`` items (query logs).
  Integers round-trip as integers; everything else round-trips as strings.
* ``jsonl`` — one JSON value per line, for structured items (flow tuples
  round-trip as lists and are rebuilt into tuples on read so the encoded
  keys match).

Files are written atomically enough for experiment use (write then rename is
overkill here; a failed write leaves a partial file the reader will reject
on malformed JSON).
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Hashable, Iterable, Iterator


def _strip_eol(line: str) -> str:
    """Strip one trailing line ending — ``\\n``, ``\\r\\n``, or ``\\r``.

    Files written on Windows (or shipped through tools that rewrite line
    endings) end lines with ``\\r\\n``; stripping only ``\\n`` leaves a
    trailing ``\\r`` on every item, which encodes — and therefore hashes —
    differently from its LF twin, silently splitting one item's counts in
    two.  Exactly one line ending is removed, never item content.
    """
    if line.endswith("\n"):
        line = line[:-1]
    if line.endswith("\r"):
        line = line[:-1]
    return line


def write_stream_text(path: str | Path, items: Iterable[Hashable]) -> int:
    """Write items one per line as text; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for item in items:
            text = str(item)
            if "\n" in text or "\r" in text:
                raise ValueError(
                    "text format cannot hold items with line endings"
                )
            handle.write(text)
            handle.write("\n")
            count += 1
    return count


def read_stream_text(
    path: str | Path, as_int: bool = False
) -> list[str] | list[int]:
    """Read a text-format stream; optionally parse every line as ``int``.

    Both LF and CRLF files are read identically (one trailing line ending
    is stripped per line), so a log shipped through a CRLF-rewriting hop
    yields the same items — and the same hashes — as the original.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        lines = [_strip_eol(line) for line in handle]
    if as_int:
        return [int(line) for line in lines]
    return lines


def _jsonable(item: Hashable) -> object:
    """Convert an item to a JSON-representable value."""
    if isinstance(item, tuple):
        return {"__tuple__": [_jsonable(part) for part in item]}
    if isinstance(item, (str, int, float, bool)) or item is None:
        return item
    raise TypeError(f"cannot serialize item of type {type(item).__name__}")


def _unjsonable(value: object) -> Hashable:
    """Inverse of :func:`_jsonable`."""
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_unjsonable(part) for part in value["__tuple__"])
    return value


def write_stream_jsonl(path: str | Path, items: Iterable[Hashable]) -> int:
    """Write items one JSON value per line; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for item in items:
            handle.write(json.dumps(_jsonable(item), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_stream_jsonl(path: str | Path) -> list[Hashable]:
    """Read a JSON-lines stream, rebuilding tuples."""
    items = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                items.append(_unjsonable(json.loads(line)))
    return items


def iter_stream_text(
    path: str | Path, as_int: bool = False
) -> Iterator[str | int]:
    """Stream a text-format file lazily (for streams bigger than memory).

    Line endings are normalized exactly as in :func:`read_stream_text`:
    LF and CRLF files yield identical items, so :class:`TextStreamReader`
    (which delegates here) is line-ending agnostic too.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        for line in handle:
            value = _strip_eol(line)
            yield int(value) if as_int else value


class TextStreamReader:
    """A re-iterable, lazily-read view of a text-format stream file.

    Every iteration re-opens the file and yields items line by line via
    :func:`iter_stream_text`, so multi-pass algorithms (``MaxChangeFinder``
    and friends) can replay a stream that is never resident in memory —
    unlike a generator, which is exhausted after one pass.

    Args:
        path: stream file, one item per line.
        as_int: parse every line as ``int``.
    """

    def __init__(self, path: str | Path, as_int: bool = False) -> None:
        self._path = Path(path)
        self._as_int = as_int

    @property
    def path(self) -> Path:
        """The underlying file path."""
        return self._path

    def __iter__(self) -> Iterator[str | int]:
        return iter_stream_text(self._path, as_int=self._as_int)

    def __repr__(self) -> str:
        return (
            f"TextStreamReader({str(self._path)!r}, as_int={self._as_int})"
        )
