"""Zipfian stream generation.

§4.1 analyzes the algorithm under Zipfian item frequencies ``n_q ∝ 1/q^z``
("we expect that Zipfian distributions will be good fits for the actual
distributions seen in practice"), and Table 1's regimes are indexed by the
Zipf parameter ``z``.  This module generates streams whose *expected* counts
follow that law exactly, sampled i.i.d. via the alias method.

Item identities are the integer ranks ``1..m`` by default (item ``1`` is the
most frequent); an optional label template turns them into strings for
workloads that want realistic-looking keys.
"""

from __future__ import annotations

import numpy as np

from repro.streams.alias import AliasSampler
from repro.streams.model import Stream


def zipf_weights(m: int, z: float) -> np.ndarray:
    """Unnormalized Zipf weights ``w_q = 1/q^z`` for ranks ``q = 1..m``.

    Args:
        m: number of distinct objects.
        z: Zipf parameter (``z = 0`` is uniform; larger is more skewed).
    """
    if m < 1:
        raise ValueError("m must be positive")
    if z < 0:
        raise ValueError("z must be nonnegative")
    ranks = np.arange(1, m + 1, dtype=np.float64)
    return ranks ** (-z)


class ZipfStreamGenerator:
    """Generate i.i.d. Zipfian streams over ``m`` ranked objects.

    Args:
        m: number of distinct objects.
        z: Zipf parameter.
        seed: sampler seed; streams are deterministic given the seed.
        label_template: if given (e.g. ``"query-{rank}"``), items are the
            formatted strings instead of integer ranks.
    """

    def __init__(
        self,
        m: int,
        z: float,
        seed: int = 0,
        label_template: str | None = None,
    ) -> None:
        self._m = m
        self._z = z
        self._seed = seed
        self._label_template = label_template
        self._sampler = AliasSampler(zipf_weights(m, z), seed=seed)

    @property
    def m(self) -> int:
        """Number of distinct objects."""
        return self._m

    @property
    def z(self) -> float:
        """The Zipf parameter."""
        return self._z

    def item_for_rank(self, rank: int) -> object:
        """The stream item corresponding to frequency rank ``rank`` (1-based)."""
        if not 1 <= rank <= self._m:
            raise ValueError(f"rank must be in [1, {self._m}]")
        if self._label_template is None:
            return rank
        return self._label_template.format(rank=rank)

    def expected_probabilities(self) -> np.ndarray:
        """Normalized expected frequency of each rank (index 0 = rank 1)."""
        return self._sampler.probabilities

    def expected_counts(self, n: int) -> np.ndarray:
        """Expected count of each rank in a length-``n`` stream."""
        if n < 0:
            raise ValueError("n must be nonnegative")
        return self.expected_probabilities() * n

    def generate(self, n: int, name: str | None = None) -> Stream:
        """Generate a length-``n`` stream.

        Args:
            n: stream length.
            name: report label; defaults to ``zipf(z=..., m=...)``.
        """
        ranks = self._sampler.sample_many(n) + 1  # ranks are 1-based
        if self._label_template is None:
            items: list[int] | list[str] = ranks.tolist()
        else:
            template = self._label_template
            items = [template.format(rank=int(rank)) for rank in ranks]
        return Stream(
            items=items,
            name=name or f"zipf(z={self._z}, m={self._m})",
            params={"dist": "zipf", "z": self._z, "m": self._m,
                    "seed": self._seed},
        )
