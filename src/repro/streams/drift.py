"""Paired before/after streams with known frequency drift (§4.2 workload).

The max-change experiment needs two streams whose per-item frequency changes
are known exactly *in expectation* and controllable: a handful of "risers"
(topics gaining popularity) and "fallers" (topics losing it) on top of a
stable Zipfian base.  :func:`make_drift_pair` builds such a pair and records
which items were planted, so experiment E7 can score recovery.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Hashable


from repro.streams.alias import AliasSampler
from repro.streams.model import Stream
from repro.streams.zipf import zipf_weights


@dataclass(frozen=True)
class DriftPair:
    """A (before, after) stream pair with the planted drift bookkeeping.

    Attributes:
        before: the first stream ``S1``.
        after: the second stream ``S2``.
        risers: items whose probability was multiplied up in ``S2``.
        fallers: items whose probability was multiplied down in ``S2``.
    """

    before: Stream
    after: Stream
    risers: tuple[Hashable, ...] = field(default_factory=tuple)
    fallers: tuple[Hashable, ...] = field(default_factory=tuple)

    def true_changes(self) -> dict[Hashable, int]:
        """Exact signed change ``n_q(S2) − n_q(S1)`` for every item."""
        before_counts = Counter(self.before.items)
        after_counts = Counter(self.after.items)
        changes: dict[Hashable, int] = {}
        for item in set(before_counts) | set(after_counts):
            changes[item] = after_counts.get(item, 0) - before_counts.get(item, 0)
        return changes

    def top_changes(self, k: int) -> list[tuple[Hashable, int]]:
        """The ``k`` items with the largest exact absolute change."""
        changes = self.true_changes()
        ranked = sorted(changes.items(), key=lambda p: abs(p[1]), reverse=True)
        return ranked[:k]


def make_drift_pair(
    m: int,
    n: int,
    z: float = 1.0,
    num_risers: int = 5,
    num_fallers: int = 5,
    boost: float = 8.0,
    seed: int = 0,
    riser_start: int | None = None,
) -> DriftPair:
    """Build a before/after Zipf stream pair with planted drift.

    The base distribution is Zipf(``z``) over items ``1..m``.  ``num_risers``
    items drawn from the mid-ranks have their ``S2`` probability multiplied
    by ``boost``; ``num_fallers`` items from the top ranks have theirs
    divided by ``boost``.  Mid/top placement makes the planted changes large
    in absolute terms (the §4.2 objective is *absolute* change) while
    keeping both streams realistically skewed.

    Args:
        m: number of distinct objects.
        n: length of each stream.
        z: Zipf parameter of the base distribution.
        num_risers: how many items gain probability in ``S2``.
        num_fallers: how many items lose probability in ``S2``.
        boost: multiplicative drift factor (> 1).
        seed: generation seed (both streams derive from it).
        riser_start: rank of the first riser; defaults to just below the
            fallers, so that boosted counts are large enough in absolute
            terms to dominate the sampling noise of the top ranks (the
            §4.2 objective is *absolute* change, and the natural
            fluctuation of a rank-r item between two i.i.d. streams is
            ~sqrt(n_r)).
    """
    if boost <= 1:
        raise ValueError("boost must exceed 1")
    if num_risers + num_fallers > m:
        raise ValueError("more drifting items than objects")
    base = zipf_weights(m, z)

    # Fallers are drawn from the very top ranks (their absolute counts are
    # large, so cutting them is a large absolute change); risers from the
    # upper-middle ranks (boosting one creates a new heavy hitter whose
    # absolute change clears the noise floor of the stable top items).
    fallers = tuple(range(1, num_fallers + 1))
    if riser_start is None:
        riser_start = max(num_fallers + 1, min(20, max(num_fallers + 1, m // 4)))
    if riser_start <= num_fallers or riser_start + num_risers - 1 > m:
        raise ValueError("riser ranks collide with fallers or exceed m")
    risers = tuple(range(riser_start, riser_start + num_risers))

    after_weights = base.copy()
    for item in risers:
        after_weights[item - 1] *= boost
    for item in fallers:
        after_weights[item - 1] /= boost

    before_sampler = AliasSampler(base, seed=seed)
    after_sampler = AliasSampler(after_weights, seed=seed + 1)
    before_items = (before_sampler.sample_many(n) + 1).tolist()
    after_items = (after_sampler.sample_many(n) + 1).tolist()

    params = {
        "dist": "drift",
        "m": m,
        "z": z,
        "boost": boost,
        "seed": seed,
    }
    return DriftPair(
        before=Stream(before_items, name="drift-before", params=params),
        after=Stream(after_items, name="drift-after", params=params),
        risers=risers,
        fallers=fallers,
    )
