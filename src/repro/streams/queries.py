"""Synthetic search-engine query streams.

The paper's primary motivating application is "streams of queries sent to
the search engine" (§1) — data we cannot ship.  This generator substitutes a
synthetic query log that preserves the properties the paper's analysis
relies on: a large vocabulary of distinct queries with Zipfian popularity
(the measured Zipf parameter of real query streams is below 1, per the
paper's [17]), plus optional *bursty* queries whose popularity spikes inside
a time window (modelling a news event — the phenomenon the max-change
algorithm of §4.2 is designed to surface).

Queries are short strings composed from a word list, so downstream code
exercises the string-keyed code paths (canonical encoding, object-size
accounting of §5) rather than toy integer keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.streams.alias import AliasSampler
from repro.streams.model import Stream
from repro.streams.zipf import zipf_weights

_WORDS = (
    "weather news maps flights hotels recipes movies lyrics football "
    "election stocks bitcoin pizza traffic translate calculator horoscope "
    "jobs cars phones laptops games music videos shoes fashion health "
    "fitness diet travel visa passport taxes insurance mortgage rent "
    "university scholarship tutorial python java rust streaming sketch"
).split()


def _make_vocabulary(size: int, seed: int) -> list[str]:
    """Deterministically build ``size`` distinct two/three-word queries."""
    rng = np.random.default_rng(seed)
    vocabulary: list[str] = []
    seen: set[str] = set()
    while len(vocabulary) < size:
        words = rng.choice(len(_WORDS), size=int(rng.integers(2, 4)))
        query = " ".join(_WORDS[w] for w in words)
        if query in seen:
            query = f"{query} {len(vocabulary)}"
        seen.add(query)
        vocabulary.append(query)
    return vocabulary


@dataclass(frozen=True)
class Burst:
    """A popularity spike: ``query`` takes ``fraction`` of traffic inside
    the window ``[start, end)`` (positions measured in stream items)."""

    query: str
    start: int
    end: int
    fraction: float


class QueryStreamGenerator:
    """Generate synthetic query streams with Zipfian popularity.

    Args:
        vocabulary_size: number of distinct queries.
        z: Zipf parameter of query popularity (real logs measure z < 1).
        seed: generation seed.
    """

    def __init__(self, vocabulary_size: int = 10_000, z: float = 0.8,
                 seed: int = 0) -> None:
        if vocabulary_size < 1:
            raise ValueError("vocabulary_size must be positive")
        self._vocabulary = _make_vocabulary(vocabulary_size, seed)
        self._z = z
        self._seed = seed
        self._sampler = AliasSampler(
            zipf_weights(vocabulary_size, z), seed=seed
        )
        self._rng = np.random.default_rng(seed + 1)

    @property
    def vocabulary(self) -> list[str]:
        """The distinct queries, most popular first."""
        return list(self._vocabulary)

    def query_for_rank(self, rank: int) -> str:
        """The query string at popularity rank ``rank`` (1-based)."""
        return self._vocabulary[rank - 1]

    def generate(self, n: int, bursts: tuple[Burst, ...] = ()) -> Stream:
        """Generate ``n`` queries, optionally with planted bursts.

        Burst windows replace the base draw with the burst query with
        probability ``fraction`` inside ``[start, end)``; overlapping bursts
        are resolved in declaration order.

        Args:
            n: stream length.
            bursts: planted popularity spikes.
        """
        base = self._sampler.sample_many(n)
        items = [self._vocabulary[index] for index in base]
        for burst in bursts:
            if not 0 <= burst.start <= burst.end <= n:
                raise ValueError(f"burst window out of range: {burst}")
            if not 0 < burst.fraction <= 1:
                raise ValueError("burst fraction must be in (0, 1]")
            window = range(burst.start, burst.end)
            hits = self._rng.random(len(window)) < burst.fraction
            for offset, hit in zip(window, hits, strict=True):
                if hit:
                    items[offset] = burst.query
        return Stream(
            items=items,
            name=f"queries(z={self._z}, V={len(self._vocabulary)})",
            params={
                "dist": "queries",
                "z": self._z,
                "vocabulary_size": len(self._vocabulary),
                "seed": self._seed,
                "bursts": len(bursts),
            },
        )
