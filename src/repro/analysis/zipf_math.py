"""Executable closed forms from §4.1 and Table 1.

For a Zipfian with parameter ``z`` over ``m`` objects (``n_q ∝ 1/q^z``),
§4.1 derives the asymptotic orders of:

* the tail second moment ``Σ_{q'>k} n_{q'}²`` (three regimes in ``z``),
* the Count Sketch width ``b`` from Lemma 5 (Cases 1–3),
* the SAMPLING algorithm's expected number of distinct sampled items,
* the KPS space ``O(1/θ) = O(n/n_k)``.

Table 1 juxtaposes the resulting *space* orders.  This module provides both
the exact finite sums (for experiment predictions at concrete ``m, k, z``)
and the asymptotic order expressions (for scaling-shape checks), with the
big-O constants set to 1 — experiments compare *shapes*, i.e. ratios across
a sweep, never absolute values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_HALF_TOLERANCE = 1e-9


def harmonic_number(m: int, z: float) -> float:
    """The generalized harmonic number ``H_{m,z} = Σ_{q=1..m} q^{-z}``."""
    if m < 1:
        raise ValueError("m must be positive")
    if z < 0:
        raise ValueError("z must be nonnegative")
    ranks = np.arange(1, m + 1, dtype=np.float64)
    return float((ranks ** (-z)).sum())


def zipf_tail_second_moment(m: int, k: int, z: float) -> float:
    """Exact ``Σ_{q=k+1..m} q^{-2z}`` (unnormalized weights ``c = 1``)."""
    if not 0 <= k <= m:
        raise ValueError("need 0 <= k <= m")
    if k == m:
        return 0.0
    ranks = np.arange(k + 1, m + 1, dtype=np.float64)
    return float((ranks ** (-2.0 * z)).sum())


def tail_second_moment_order(m: int, k: int, z: float) -> float:
    """§4.1's asymptotic order of the tail second moment.

    ``O(m^{1−2z})`` for ``z < ½``; ``O(log m)`` at ``z = ½``;
    ``O(k^{1−2z})`` for ``z > ½``.
    """
    if z < 0.5 - _HALF_TOLERANCE:
        return m ** (1.0 - 2.0 * z)
    if abs(z - 0.5) <= _HALF_TOLERANCE:
        return math.log(m)
    return k ** (1.0 - 2.0 * z)


def count_sketch_width_order(m: int, k: int, z: float) -> float:
    """The §4.1 Case 1–3 orders of the Lemma 5 width ``b``.

    Case 1 (``z < ½``): ``m^{1−2z} k^{2z}``.
    Case 2 (``z = ½``): ``k log m``.
    Case 3 (``z > ½``): ``k``.
    """
    if z < 0.5 - _HALF_TOLERANCE:
        return (m ** (1.0 - 2.0 * z)) * (k ** (2.0 * z))
    if abs(z - 0.5) <= _HALF_TOLERANCE:
        return k * math.log(m)
    return float(k)


def count_sketch_space_order(m: int, k: int, z: float, n: int) -> float:
    """Table 1's COUNT SKETCH column: the width order times ``log n``."""
    return count_sketch_width_order(m, k, z) * math.log(n)


def sampling_distinct_order(m: int, k: int, z: float,
                            delta: float = 0.05) -> float:
    """Table 1's SAMPLING column: expected distinct items in the sample.

    ``O(m (k/m)^z log(k/δ))`` for ``z < 1``;
    ``O(k log m log(k/δ))`` at ``z = 1``;
    ``O(k (log(k/δ))^{1/z})`` for ``z > 1``.
    (The ``z = ½`` row of Table 1, ``√(km)·log k``, is the ``z < 1`` formula
    evaluated at ``z = ½``.)
    """
    log_term = math.log(max(k, 2) / delta)
    if z < 1.0 - _HALF_TOLERANCE:
        return m * (k / m) ** z * log_term
    if abs(z - 1.0) <= _HALF_TOLERANCE:
        return k * math.log(m) * log_term
    return k * log_term ** (1.0 / z)


def sampling_expected_distinct(m: int, k: int, z: float, n: int,
                               delta: float = 0.05) -> float:
    """Exact expected distinct sampled items at the §4.1 inclusion rate.

    Computes ``Σ_q (1 − (1 − p)^{n_q})`` with ``p = log(k/δ)/n_k`` and the
    Zipf expected counts ``n_q = n·q^{-z}/H_{m,z}`` — the finite-``m``
    version of the asymptotic orders above, used for tighter experiment
    predictions.
    """
    h = harmonic_number(m, z)
    ranks = np.arange(1, m + 1, dtype=np.float64)
    expected_counts = n * (ranks ** (-z)) / h
    nk = expected_counts[k - 1]
    p = min(1.0, math.log(max(k, 2) / delta) / nk)
    return float((1.0 - (1.0 - p) ** expected_counts).sum())


def kps_space_order(m: int, k: int, z: float) -> float:
    """Table 1's KPS column: ``O(n/n_k) = k^z · H_{m,z}`` orders.

    ``k^z m^{1−z}`` for ``z < 1``; ``k log m`` at ``z = 1``;
    ``k^z`` for ``z > 1``.
    """
    if z < 1.0 - _HALF_TOLERANCE:
        return (k ** z) * (m ** (1.0 - z))
    if abs(z - 1.0) <= _HALF_TOLERANCE:
        return k * math.log(m)
    return float(k ** z)


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: the three space orders at a Zipf parameter."""

    z: float
    regime: str
    sampling: float
    kps: float
    count_sketch: float


def _regime_label(z: float) -> str:
    if z < 0.5 - _HALF_TOLERANCE:
        return "z < 1/2"
    if abs(z - 0.5) <= _HALF_TOLERANCE:
        return "z = 1/2"
    if z < 1.0 - _HALF_TOLERANCE:
        return "1/2 < z < 1"
    if abs(z - 1.0) <= _HALF_TOLERANCE:
        return "z = 1"
    return "z > 1"


def table1_orders(m: int, k: int, n: int,
                  zs: tuple[float, ...] = (0.3, 0.5, 0.75, 1.0, 1.5),
                  delta: float = 0.05) -> list[Table1Row]:
    """Evaluate every Table 1 cell at concrete ``(m, k, n)``.

    Constants are 1, so only comparisons *within a column across rows* (the
    scaling shape) and coarse cross-column comparisons are meaningful —
    which is how Table 1 itself is meant to be read.
    """
    return [
        Table1Row(
            z=z,
            regime=_regime_label(z),
            sampling=sampling_distinct_order(m, k, z, delta),
            kps=kps_space_order(m, k, z),
            count_sketch=count_sketch_space_order(m, k, z, n),
        )
        for z in zs
    ]
