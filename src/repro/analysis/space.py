"""The §5 bit-level space accounting.

The paper's conclusion compares total storage when object encodings cost
``ℓ`` bits ("if the space used by an object is ℓ ... this gives the COUNT
SKETCH algorithm an advantage"): counters need ``O(log n)`` bits each, but
the SAMPLING algorithm stores one *object* per distinct sampled item while
Count Sketch stores only ``k`` objects (the heap members).  Experiment E8
evaluates this model on measured summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SpaceModel:
    """A bit-cost model: counters at ``counter_bits``, objects at
    ``object_bits`` (§5's ℓ).

    Attributes:
        counter_bits: bits per counter; §5 prescribes ``O(log n)``.
        object_bits: bits per stored stream object (ℓ).
    """

    counter_bits: int
    object_bits: int

    @classmethod
    def for_stream(cls, n: int, object_bits: int) -> SpaceModel:
        """Counters sized to ``⌈log2(n+1)⌉`` bits for a length-``n`` stream."""
        if n < 1:
            raise ValueError("n must be positive")
        if object_bits < 1:
            raise ValueError("object_bits must be positive")
        return cls(counter_bits=max(1, math.ceil(math.log2(n + 1))),
                   object_bits=object_bits)

    def total_bits(self, counters: int, objects: int) -> int:
        """Total bits for a summary holding ``counters`` numeric counters
        and ``objects`` stored stream objects."""
        if counters < 0 or objects < 0:
            raise ValueError("counts must be nonnegative")
        return counters * self.counter_bits + objects * self.object_bits

    def summary_bits(self, summary: StreamSummary) -> int:
        """Total bits of any object with the
        :class:`~repro.core.sketch_base.StreamSummary` space accessors."""
        return self.total_bits(summary.counters_used(), summary.items_stored())
