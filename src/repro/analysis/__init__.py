"""Ground truth, quality metrics, and the paper's closed-form analysis.

* :mod:`repro.analysis.ground_truth` — exact stream statistics (``n_k``,
  tail second moments, true top-k) that the paper's parameter settings and
  all experiment scoring need.
* :mod:`repro.analysis.metrics` — recall/precision and the APPROXTOP
  acceptance criteria of the problem definitions in §1.
* :mod:`repro.analysis.zipf_math` — executable versions of the §4.1
  closed forms and the Table 1 space formulas for all three algorithms.
* :mod:`repro.analysis.space` — the §5 bit-level space accounting
  (counters of ``O(log n)`` bits vs stored objects of ``ℓ`` bits).
"""

from repro.analysis.confidence import (
    EstimateInterval,
    estimate_with_f2_interval,
    estimate_with_spread_interval,
    f2_error_scale,
)
from repro.analysis.fit import (
    WorkloadProfile,
    extrapolated_tail_second_moment,
    fit_zipf_parameter,
    profile_stream,
    recommend_parameters,
)
from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import (
    approxtop_strong_ok,
    approxtop_weak_ok,
    average_relative_error,
    precision_at_k,
    recall_at_k,
)
from repro.analysis.space import SpaceModel
from repro.analysis.zipf_math import (
    count_sketch_space_order,
    count_sketch_width_order,
    harmonic_number,
    kps_space_order,
    sampling_distinct_order,
    table1_orders,
    zipf_tail_second_moment,
)

__all__ = [
    "EstimateInterval",
    "SpaceModel",
    "StreamStatistics",
    "WorkloadProfile",
    "approxtop_strong_ok",
    "approxtop_weak_ok",
    "average_relative_error",
    "estimate_with_f2_interval",
    "estimate_with_spread_interval",
    "f2_error_scale",
    "count_sketch_space_order",
    "count_sketch_width_order",
    "extrapolated_tail_second_moment",
    "fit_zipf_parameter",
    "harmonic_number",
    "kps_space_order",
    "profile_stream",
    "recommend_parameters",
    "precision_at_k",
    "recall_at_k",
    "sampling_distinct_order",
    "table1_orders",
    "zipf_tail_second_moment",
]
