"""Error envelopes and confidence intervals for sketch estimates.

Lemma 4 bounds every estimate by ``8γ`` with ``γ = sqrt(tail₂/b)``, but a
deployment does not know the tail second moment.  Two observable
surrogates give *conservative* envelopes (both over-cover, never
under-cover, because they bound the tail moment from above):

* **F2 envelope** — the sketch's own AMS estimate of the *full* second
  moment: ``γ̂ = sqrt(F̂2 / b) ≥ γ`` (the tail omits the top-k terms).
  One number for the whole sketch; the cheapest option.
* **Row-spread envelope** — per item, the spread of the ``t`` per-row
  estimates around their median.  Each row deviates by its own collision
  noise, so the upper quantiles of ``|row − median|`` bound the typical
  deviation of the median itself; taking the ``q``-th largest spread is
  conservative for the same reason the median is robust.

Empirical coverage of both is measured by the tests; Lemma 4's ``8γ``
level corresponds to ``multiplier=8`` on the exact γ and is looser than
either surrogate in practice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Hashable
from typing import Protocol


class _EnvelopeSketch(Protocol):
    """The structural slice of a sketch the envelopes need.

    Satisfied by :class:`~repro.core.countsketch.CountSketch`; the F2
    envelope additionally works with any backend exposing
    ``estimate_f2`` (e.g. the vectorized sketch).
    """

    @property
    def width(self) -> int: ...

    def estimate(self, item: Hashable) -> float: ...

    def estimate_f2(self) -> float: ...

    def row_estimates(self, item: Hashable) -> list[float]: ...


@dataclass(frozen=True)
class EstimateInterval:
    """A sketch estimate with a symmetric error envelope."""

    estimate: float
    low: float
    high: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        """Half the interval width (the envelope radius)."""
        return (self.high - self.low) / 2.0


def f2_error_scale(sketch: _EnvelopeSketch) -> float:
    """The observable error scale ``γ̂ = sqrt(F̂2 / b)``.

    Conservative: uses the full second moment where Lemma 4's γ uses the
    top-k-excluded tail, so ``γ̂ ≥ γ`` up to F2-estimation noise.
    """
    return math.sqrt(max(0.0, sketch.estimate_f2()) / sketch.width)


def estimate_with_f2_interval(
    sketch: _EnvelopeSketch, item: Hashable, multiplier: float = 2.0
) -> EstimateInterval:
    """Estimate ``item`` with a ``±multiplier·γ̂`` envelope.

    ``multiplier=8`` reproduces the Lemma 4 w.h.p. level (very loose in
    practice); ``multiplier≈2`` empirically covers ≥ 95% of items on the
    workloads in this repository (the tests measure this).

    Args:
        sketch: the populated Count Sketch.
        item: the item to estimate.
        multiplier: envelope radius in units of γ̂.
    """
    if multiplier <= 0:
        raise ValueError("multiplier must be positive")
    center = sketch.estimate(item)
    radius = multiplier * f2_error_scale(sketch)
    return EstimateInterval(center, center - radius, center + radius)


def estimate_with_spread_interval(
    sketch: _EnvelopeSketch, item: Hashable, drop_extremes: int = 1
) -> EstimateInterval:
    """Estimate ``item`` with a per-item row-spread envelope.

    The radius is the largest ``|row − median|`` after discarding the
    ``drop_extremes`` most extreme rows (the ones the median itself
    rejects — typically heavy-collision rows whose spread says nothing
    about the median's own error).

    Args:
        sketch: the populated Count Sketch.
        item: the item to estimate.
        drop_extremes: rows to discard from each item's spread; must
            leave at least one row.
    """
    rows = sketch.row_estimates(item)
    if drop_extremes < 0 or drop_extremes >= len(rows):
        raise ValueError("drop_extremes must be in [0, depth)")
    center = sketch.estimate(item)
    spreads = sorted(abs(r - center) for r in rows)
    if drop_extremes:
        spreads = spreads[:-drop_extremes]
    radius = spreads[-1] if spreads else 0.0
    return EstimateInterval(center, center - radius, center + radius)
