"""Workload fitting and automatic sketch configuration.

§3.1 ends with a caveat: "since the parameters of the data structure
depend on the distribution, one needs to know some properties of the
distribution before hand in order to actually implement the algorithm."
This module supplies those properties from the data itself:

* :func:`fit_zipf_parameter` — estimate the Zipf exponent ``z`` of a
  count table by least squares on the log–log rank-frequency curve (the
  standard diagnostic for query/flow workloads).
* :func:`extrapolated_tail_second_moment` — predict the full-stream tail
  second moment ``Σ_{q'>k} n_{q'}²`` from a prefix sample: under an
  i.i.d. model, counts grow linearly in stream length, so the moment
  grows with the square of the length ratio.
* :func:`recommend_parameters` — the end-to-end recipe: observe a prefix,
  fit what Lemma 5 and Lemma 3 need, and return
  :class:`~repro.core.params.SketchParameters` for the *full* stream.

Experiment X2 (``benchmarks/bench_autoconfig.py``) measures that
trackers dimensioned this way still meet the APPROXTOP guarantees.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from collections.abc import Hashable, Iterable

import numpy as np

from repro.analysis.ground_truth import StreamStatistics
from repro.core.params import SketchParameters, suggest_depth, width_for_approxtop


def fit_zipf_parameter(
    counts: Counter | dict,
    min_rank: int = 1,
    max_rank: int | None = None,
) -> float:
    """Estimate the Zipf exponent ``z`` from a count table.

    Fits ``log(count) = c − z·log(rank)`` by least squares over the rank
    range ``[min_rank, max_rank]``.  The head of the curve is the
    informative part (the tail is quantized at small counts), so
    ``max_rank`` defaults to the smaller of 1000 and the number of items
    with count ≥ 2.

    Args:
        counts: item → count table.
        min_rank: first rank included in the fit (1-based).
        max_rank: last rank included; default as described above.

    Returns:
        The fitted ``z ≥ 0``.

    Raises:
        ValueError: with fewer than two usable ranks.
    """
    ordered = sorted((c for c in counts.values() if c > 0), reverse=True)
    if max_rank is None:
        non_singletons = sum(1 for c in ordered if c >= 2)
        max_rank = min(1000, max(non_singletons, 2))
    max_rank = min(max_rank, len(ordered))
    if max_rank - min_rank + 1 < 2:
        raise ValueError("need at least two ranks to fit a Zipf exponent")
    ranks = np.arange(min_rank, max_rank + 1, dtype=np.float64)
    values = np.asarray(ordered[min_rank - 1:max_rank], dtype=np.float64)
    log_ranks = np.log(ranks)
    log_values = np.log(values)
    slope = float(
        ((log_ranks - log_ranks.mean()) * (log_values - log_values.mean())).sum()
        / ((log_ranks - log_ranks.mean()) ** 2).sum()
    )
    return max(0.0, -slope)


def extrapolated_tail_second_moment(
    sample_stats: StreamStatistics, k: int, full_length: int
) -> float:
    """Predict the full-stream ``Σ_{q'>k} n_{q'}²`` from a prefix sample.

    Under an i.i.d. stream model every item's count scales by
    ``full_length / sample_length``, so the second moment scales by the
    square of that ratio.  (Items unseen in the sample are missed; their
    counts are at most ``O(sample_threshold)`` each, which keeps the
    prediction a mild *under*-estimate — X2 quantifies the effect.)

    Args:
        sample_stats: statistics of the observed prefix.
        k: the top-k the tail excludes.
        full_length: anticipated total stream length ``n``.
    """
    if full_length < sample_stats.n:
        raise ValueError("full_length must be at least the sample length")
    if sample_stats.n == 0:
        return 0.0
    ratio = full_length / sample_stats.n
    return sample_stats.tail_second_moment(k) * ratio**2


@dataclass(frozen=True)
class WorkloadProfile:
    """What :func:`profile_stream` learned from a prefix sample."""

    sample_length: int
    distinct_items: int
    zipf_z: float
    nk_sample: int
    tail_second_moment_sample: float


def profile_stream(sample: Iterable[Hashable], k: int) -> WorkloadProfile:
    """Summarize a stream prefix into the quantities the recipe needs."""
    stats = StreamStatistics(stream=sample)
    return WorkloadProfile(
        sample_length=stats.n,
        distinct_items=stats.m,
        zipf_z=fit_zipf_parameter(
            Counter(
                {item: count for item, count in
                 zip(range(stats.m), stats.sorted_counts, strict=True)}
            )
        ),
        nk_sample=stats.nk(k),
        tail_second_moment_sample=stats.tail_second_moment(k),
    )


def recommend_parameters(
    sample: Iterable[Hashable],
    k: int,
    epsilon: float,
    full_length: int,
    delta: float = 0.05,
    depth_constant: float = 0.5,
) -> SketchParameters:
    """Dimension a tracker for APPROXTOP(S, k, ε) from a prefix sample.

    The end-to-end version of the paper's parameter recipe: compute the
    sample's ``n_k`` and tail second moment, extrapolate both to the full
    stream length, and apply Lemma 5 (width) and Lemma 3 (depth).

    Args:
        sample: an observed prefix of the stream.
        k: number of frequent items to track.
        epsilon: the APPROXTOP slack.
        full_length: anticipated total stream length.
        delta: failure probability budget.
        depth_constant: multiplier on ``ln(n/δ)`` for the depth.

    Raises:
        ValueError: if the sample is empty or has no k-th item yet.
    """
    stats = StreamStatistics(stream=sample)
    if stats.n == 0:
        raise ValueError("sample is empty")
    nk_sample = stats.nk(k)
    if nk_sample == 0:
        raise ValueError(
            f"the sample has fewer than k={k} distinct items; "
            "observe a longer prefix"
        )
    scale = full_length / stats.n
    nk_full = nk_sample * scale
    tail_full = extrapolated_tail_second_moment(stats, k, full_length)
    return SketchParameters(
        depth=suggest_depth(full_length, delta, depth_constant),
        width=width_for_approxtop(k, epsilon, nk_full, tail_full),
    )
