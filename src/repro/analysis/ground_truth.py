"""Exact stream statistics: the quantities the paper's analysis is built on.

Given a stream (or its count table), :class:`StreamStatistics` exposes the
ordered counts ``n_1 ≥ n_2 ≥ ... ≥ n_m`` (§1's notation), the k-th count
``n_k``, the tail second moment ``Σ_{q' > k} n_{q'}²`` (the input to Eq. 5's
γ and Lemma 5's width bound), and the true top-k set that all experiments
score against.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable

import numpy as np


class StreamStatistics:
    """Exact statistics of a finished stream.

    Args:
        stream: the stream items (consumed once), or pass ``counts``.
        counts: a precomputed count table (takes precedence over
            ``stream``).
    """

    def __init__(
        self,
        stream: Iterable[Hashable] | None = None,
        counts: Counter | None = None,
    ) -> None:
        if counts is None:
            if stream is None:
                raise ValueError("provide a stream or a count table")
            counts = Counter(stream)
        if any(c < 0 for c in counts.values()):
            raise ValueError("counts must be nonnegative")
        self._counts: Counter[Hashable] = Counter(
            {item: c for item, c in counts.items() if c > 0}
        )
        ranked = self._counts.most_common()
        self._ranked_items = [item for item, __ in ranked]
        self._sorted_counts = np.asarray(
            [c for __, c in ranked], dtype=np.int64
        )
        self._n = int(self._sorted_counts.sum())
        self._squares = self._sorted_counts.astype(np.float64) ** 2

    @property
    def n(self) -> int:
        """Stream length ``n`` (total occurrences)."""
        return self._n

    @property
    def m(self) -> int:
        """Number of distinct items ``m``."""
        return len(self._ranked_items)

    @property
    def sorted_counts(self) -> np.ndarray:
        """Counts in nonincreasing order: ``n_1 ≥ n_2 ≥ ...`` (copy)."""
        return self._sorted_counts.copy()

    def count(self, item: Hashable) -> int:
        """Exact count of ``item``."""
        return self._counts.get(item, 0)

    def frequency(self, item: Hashable) -> float:
        """Exact relative frequency ``f_i = n_i / n``."""
        if self._n == 0:
            return 0.0
        return self._counts.get(item, 0) / self._n

    def nk(self, k: int) -> int:
        """The count ``n_k`` of the k-th most frequent item.

        Returns 0 when fewer than ``k`` distinct items exist.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if k > len(self._sorted_counts):
            return 0
        return int(self._sorted_counts[k - 1])

    def top_k(self, k: int) -> list[tuple[Hashable, int]]:
        """The true top-``k`` (item, count) pairs, heaviest first."""
        if k < 0:
            raise ValueError("k must be nonnegative")
        return [
            (item, int(self._counts[item]))
            for item in self._ranked_items[:k]
        ]

    def top_k_items(self, k: int) -> set[Hashable]:
        """The set of the true top-``k`` items."""
        return set(self._ranked_items[:k])

    def second_moment(self) -> float:
        """``F2 = Σ_q n_q²`` — the Alon–Matias–Szegedy moment."""
        return float(self._squares.sum())

    def tail_second_moment(self, k: int) -> float:
        """``Σ_{q' = k+1..m} n_{q'}²`` — the input to Eq. 5 and Lemma 5."""
        if k < 0:
            raise ValueError("k must be nonnegative")
        if k >= len(self._squares):
            return 0.0
        return float(self._squares[k:].sum())

    def items_above(self, threshold: float) -> set[Hashable]:
        """All items with count ≥ ``threshold`` (e.g. ``(1+ε)·n_k``)."""
        result = set()
        for item in self._ranked_items:
            if self._counts[item] >= threshold:
                result.add(item)
            else:
                break
        return result

    def __repr__(self) -> str:
        return f"StreamStatistics(n={self._n}, m={self.m})"
