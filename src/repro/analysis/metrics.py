"""Quality metrics matching the paper's problem definitions (§1).

APPROXTOP(S, k, ε) demands a list of ``k`` items *each* with count
``≥ (1−ε)·n_k`` (the weak guarantee), and the paper's algorithm additionally
promises that every item with count ``≥ (1+ε)·n_k`` appears (the strong
guarantee — "it will only err on the boundary cases").  CANDIDATETOP(S, k,
l) demands that the true top ``k`` appear somewhere in a list of ``l``.
These are the acceptance tests the experiments run, alongside standard
recall/precision and relative-error measures for estimate quality.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence

from repro.analysis.ground_truth import StreamStatistics


def recall_at_k(
    reported: Iterable[Hashable], true_top: Iterable[Hashable]
) -> float:
    """Fraction of the true top items present in the reported list."""
    truth = set(true_top)
    if not truth:
        return 1.0
    return len(truth & set(reported)) / len(truth)


def precision_at_k(
    reported: Sequence[Hashable], true_top: Iterable[Hashable]
) -> float:
    """Fraction of reported items that are truly in the top set."""
    if not reported:
        return 1.0
    truth = set(true_top)
    return len(truth & set(reported)) / len(reported)


def approxtop_weak_ok(
    reported: Sequence[Hashable],
    stats: StreamStatistics,
    k: int,
    epsilon: float,
) -> bool:
    """The APPROXTOP output condition: every reported item has
    count ≥ (1−ε)·n_k (and exactly ``k`` items are reported when at least
    ``k`` distinct items exist)."""
    nk = stats.nk(k)
    threshold = (1.0 - epsilon) * nk
    expected_len = min(k, stats.m)
    if len(reported) < expected_len:
        return False
    return all(stats.count(item) >= threshold for item in reported)


def approxtop_strong_ok(
    reported: Sequence[Hashable],
    stats: StreamStatistics,
    k: int,
    epsilon: float,
) -> bool:
    """The paper's stronger guarantee: every item with count ≥ (1+ε)·n_k
    appears in the reported list."""
    nk = stats.nk(k)
    must_appear = stats.items_above((1.0 + epsilon) * nk)
    return must_appear <= set(reported)


def candidatetop_ok(
    candidates: Iterable[Hashable], stats: StreamStatistics, k: int
) -> bool:
    """The CANDIDATETOP condition: the true top ``k`` are all candidates.

    Ties at rank ``k`` are treated generously: any item with count equal to
    ``n_k`` may stand in for a tied true top-k item (the problem is
    ill-defined under ties otherwise).
    """
    nk = stats.nk(k)
    candidate_set = set(candidates)
    strictly_above = stats.items_above(nk + 1)
    if not strictly_above <= candidate_set:
        return False
    ties_needed = k - len(strictly_above)
    ties_present = sum(
        1 for item in candidate_set if stats.count(item) == nk
    )
    return ties_present >= min(
        ties_needed, sum(1 for c in stats.sorted_counts if c == nk)
    )


def average_relative_error(
    estimates: Mapping[Hashable, float],
    stats: StreamStatistics,
) -> float:
    """Mean of ``|estimate − true| / true`` over the estimated items.

    Items with a true count of zero are scored by absolute error instead
    (relative error is undefined there).
    """
    if not estimates:
        return 0.0
    total = 0.0
    for item, estimate in estimates.items():
        true = stats.count(item)
        if true > 0:
            total += abs(estimate - true) / true
        else:
            total += abs(estimate)
    return total / len(estimates)


def max_absolute_error(
    estimates: Mapping[Hashable, float],
    stats: StreamStatistics,
) -> float:
    """Largest ``|estimate − true|`` over the estimated items.

    This is the quantity Lemma 4 bounds by ``8γ``.
    """
    if not estimates:
        return 0.0
    return max(
        abs(estimate - stats.count(item))
        for item, estimate in estimates.items()
    )
