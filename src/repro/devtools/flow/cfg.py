"""Per-function control-flow graphs for the dataflow lint rules.

The graph is statement-level: every simple statement is one node, and
every compound statement contributes a *header* node (the expressions
evaluated before its body runs — an ``if``/``while`` test, a ``for``
iterable, ``with`` context items) plus the nodes of its body.  Two
synthetic nodes bracket the function: ``entry`` (index 0) and the
single ``exit`` (index 1) that every ``return``, ``raise``, and
fall-off path reaches.

Edges are either *normal* (the statement completed) or *exceptional*
(the statement raised).  Exceptional edges from a statement go to the
innermost enclosing ``try``'s handler headers and ``finally`` entry,
or — outside any ``try`` — straight to ``exit``, modelling the
exception escaping the function.  A ``finally`` block's exit carries an
extra exceptional edge to the enclosing ``finally`` (or ``exit``) for
the re-raise continuation.

The graph over-approximates feasible paths in a few documented ways,
all safe for the may-analyses built on it (extra paths can only add
facts, never hide them):

* loop headers always have an edge past the loop, even for
  ``while True``;
* ``break``/``continue`` jump directly to their targets instead of
  threading through intervening ``finally`` blocks;
* a ``finally`` exit's normal and re-raise continuations are both
  present regardless of how the block was entered.

And it *under*-approximates in one: an exception inside a ``try``
body edges only to that ``try``'s own handlers/``finally``, so a
handler whose type does not match is modelled by the handler *header*'s
own exceptional edge to the next level out.

Suspension points are annotated rather than split into edges:
:attr:`FlowNode.is_async_point` marks ``async for`` / ``async with``
headers (which await implicitly), and explicit ``await`` expressions
are found by walking :meth:`FlowNode.local_exprs`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = [
    "CFG",
    "Edge",
    "FlowNode",
    "build_cfg",
    "iter_function_cfgs",
]


class Edge(NamedTuple):
    """One directed CFG edge: the target node and how control got there."""

    target: int
    exceptional: bool


@dataclass
class FlowNode:
    """One CFG node: a statement (or compound-statement header).

    ``stmt`` is ``None`` for the synthetic ``entry``/``exit`` nodes and
    holds the AST statement otherwise (for a compound statement, the
    node represents only its header — the body statements get their own
    nodes).  ``async_with_depth`` counts the enclosing ``async with``
    blocks (used by the await-race rule to recognize lock-held
    regions); ``is_async_point`` marks headers that suspend implicitly.
    """

    index: int
    label: str
    stmt: ast.stmt | ast.excepthandler | None = None
    async_with_depth: int = 0
    is_async_point: bool = False

    def local_exprs(self) -> list[ast.AST]:
        """The AST evaluated *at this node* (header expressions only).

        For a simple statement this is the statement itself; for a
        compound statement only the parts executed before the body
        (tests, iterables, context items), since body statements are
        separate nodes.  Nested function/class definitions contribute
        nothing — their bodies run elsewhere.
        """
        stmt = self.stmt
        if stmt is None:
            return []
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.target, stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs: list[ast.AST] = []
            for item in stmt.items:
                exprs.append(item.context_expr)
                if item.optional_vars is not None:
                    exprs.append(item.optional_vars)
            return exprs
        if isinstance(stmt, ast.excepthandler):
            return [] if stmt.type is None else [stmt.type]
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return []
        if isinstance(stmt, ast.Return):
            return [] if stmt.value is None else [stmt.value]
        if isinstance(stmt, ast.Raise):
            exprs = []
            if stmt.exc is not None:
                exprs.append(stmt.exc)
            if stmt.cause is not None:
                exprs.append(stmt.cause)
            return exprs
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return list(stmt.decorator_list)
        if isinstance(stmt, ast.match_case):  # pragma: no cover - header
            return [] if stmt.guard is None else [stmt.guard]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return [stmt]

    def walk(self) -> list[ast.AST]:
        """Every AST node evaluated at this node, recursively."""
        found: list[ast.AST] = []
        for root in self.local_exprs():
            found.extend(ast.walk(root))
        return found


@dataclass
class CFG:
    """The control-flow graph of one function body.

    ``nodes[0]`` is the synthetic entry, ``nodes[1]`` the single exit;
    ``succs[i]`` / ``preds[i]`` list node ``i``'s out/in edges in
    construction order (deterministic for a given source).
    """

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[FlowNode] = field(default_factory=list)
    succs: list[list[Edge]] = field(default_factory=list)
    preds: list[list[Edge]] = field(default_factory=list)

    ENTRY: int = 0
    EXIT: int = 1

    def statement_nodes(self) -> list[FlowNode]:
        """Every non-synthetic node, in construction order."""
        return [node for node in self.nodes if node.stmt is not None]

    def reachable(self) -> set[int]:
        """Node indices reachable from the entry (over all edge kinds)."""
        seen = {self.ENTRY}
        stack = [self.ENTRY]
        while stack:
            index = stack.pop()
            for edge in self.succs[index]:
                if edge.target not in seen:
                    seen.add(edge.target)
                    stack.append(edge.target)
        return seen


def _is_catch_all(handler: ast.excepthandler) -> bool:
    """True for handlers that always match: bare ``except``,
    ``except BaseException``, ``except Exception`` (and tuples or
    dotted forms naming one of those)."""
    if handler.type is None:
        return True
    candidates: list[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        name: str | None = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name in ("BaseException", "Exception"):
            return True
    return False


class _Guard(NamedTuple):
    """One enclosing ``try``: where exceptions raised under it land."""

    targets: tuple[int, ...]
    finally_entry: int | None


#: Statements that evaluate nothing and cannot raise.
_NO_RAISE = (
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Global,
    ast.Nonlocal,
)


class _Builder:
    """Single-use recursive CFG builder for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._cfg = CFG(func)
        self._guards: list[_Guard] = []
        # (continue_target, break_sources) per enclosing loop.
        self._loops: list[tuple[int, list[int]]] = []
        self._async_with_depth = 0
        self._new("entry", None)
        self._new("exit", None)

    def build(self) -> CFG:
        """Build and return the function's CFG."""
        frontier = self._body(self._cfg.func.body, [CFG.ENTRY])
        self._connect(frontier, CFG.EXIT)
        return self._cfg

    # -- graph primitives ---------------------------------------------------

    def _new(
        self,
        label: str,
        stmt: ast.stmt | ast.excepthandler | None,
        *,
        is_async_point: bool = False,
    ) -> int:
        index = len(self._cfg.nodes)
        self._cfg.nodes.append(
            FlowNode(
                index,
                label,
                stmt,
                async_with_depth=self._async_with_depth,
                is_async_point=is_async_point,
            )
        )
        self._cfg.succs.append([])
        self._cfg.preds.append([])
        return index

    def _edge(self, src: int, dst: int, *, exceptional: bool = False) -> None:
        edge = Edge(dst, exceptional)
        if edge not in self._cfg.succs[src]:
            self._cfg.succs[src].append(edge)
            self._cfg.preds[dst].append(Edge(src, exceptional))

    def _connect(self, sources: list[int], dst: int) -> None:
        for src in sources:
            self._edge(src, dst)

    def _raise_edges(self, index: int) -> None:
        """Exceptional edges: to the innermost guard, or out of the
        function."""
        if self._guards:
            for target in self._guards[-1].targets:
                self._edge(index, target, exceptional=True)
        else:
            self._edge(index, CFG.EXIT, exceptional=True)

    def _return_target(self) -> int:
        """Where ``return`` transfers first: the innermost ``finally``."""
        for guard in reversed(self._guards):
            if guard.finally_entry is not None:
                return guard.finally_entry
        return CFG.EXIT

    # -- statement dispatch -------------------------------------------------

    def _body(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            index = self._new("return", stmt)
            self._connect(frontier, index)
            if stmt.value is not None:
                self._raise_edges(index)
            self._edge(index, self._return_target())
            return []
        if isinstance(stmt, ast.Raise):
            index = self._new("raise", stmt)
            self._connect(frontier, index)
            self._raise_edges(index)
            return []
        if isinstance(stmt, ast.Break):
            index = self._new("break", stmt)
            self._connect(frontier, index)
            if self._loops:
                self._loops[-1][1].append(index)
            else:  # malformed source: treat as function exit
                self._edge(index, CFG.EXIT)
            return []
        if isinstance(stmt, ast.Continue):
            index = self._new("continue", stmt)
            self._connect(frontier, index)
            if self._loops:
                self._edge(index, self._loops[-1][0])
            else:  # malformed source
                self._edge(index, CFG.EXIT)
            return []
        # Simple statement (including nested def/class, whose bodies are
        # not part of this function's flow).
        index = self._new(type(stmt).__name__.lower(), stmt)
        self._connect(frontier, index)
        if not isinstance(stmt, _NO_RAISE):
            self._raise_edges(index)
        return [index]

    # -- compound statements ------------------------------------------------

    def _if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        header = self._new("if", stmt)
        self._connect(frontier, header)
        self._raise_edges(header)
        then_frontier = self._body(stmt.body, [header])
        if stmt.orelse:
            else_frontier = self._body(stmt.orelse, [header])
            return then_frontier + else_frontier
        return then_frontier + [header]

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: list[int]
    ) -> list[int]:
        header = self._new(
            type(stmt).__name__.lower(),
            stmt,
            is_async_point=isinstance(stmt, ast.AsyncFor),
        )
        self._connect(frontier, header)
        self._raise_edges(header)
        self._loops.append((header, []))
        body_frontier = self._body(stmt.body, [header])
        self._connect(body_frontier, header)  # back edge
        _, breaks = self._loops.pop()
        after = self._body(stmt.orelse, [header]) if stmt.orelse else [header]
        return after + breaks

    def _with(
        self, stmt: ast.With | ast.AsyncWith, frontier: list[int]
    ) -> list[int]:
        is_async = isinstance(stmt, ast.AsyncWith)
        header = self._new(
            "asyncwith" if is_async else "with", stmt, is_async_point=is_async
        )
        self._connect(frontier, header)
        self._raise_edges(header)
        if is_async:
            self._async_with_depth += 1
        body_frontier = self._body(stmt.body, [header])
        if is_async:
            self._async_with_depth -= 1
        return body_frontier

    def _match(self, stmt: ast.Match, frontier: list[int]) -> list[int]:
        header = self._new("match", stmt)
        self._connect(frontier, header)
        self._raise_edges(header)
        out: list[int] = [header]  # no case may match
        for case in stmt.cases:
            out.extend(self._body(case.body, [header]))
        return out

    def _try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        finally_entry = (
            self._new("finally", stmt) if stmt.finalbody else None
        )
        handler_heads = [
            self._new("except", handler) for handler in stmt.handlers
        ]
        guard_targets = tuple(
            handler_heads + ([finally_entry] if finally_entry is not None
                             else [])
        )
        if guard_targets:
            self._guards.append(_Guard(guard_targets, finally_entry))
            body_frontier = self._body(stmt.body, frontier)
            self._guards.pop()
        else:  # pragma: no cover - ``try`` with neither is a SyntaxError
            body_frontier = self._body(stmt.body, frontier)

        # Exceptions in the else clause and in handler bodies bypass this
        # try's handlers but still run its finally.
        finally_guard: _Guard | None = None
        if finally_entry is not None:
            finally_guard = _Guard((finally_entry,), finally_entry)

        if stmt.orelse:
            if finally_guard is not None:
                self._guards.append(finally_guard)
            body_frontier = self._body(stmt.orelse, body_frontier)
            if finally_guard is not None:
                self._guards.pop()

        handler_frontiers: list[int] = []
        for head, handler in zip(handler_heads, stmt.handlers):
            # A non-matching handler type re-raises outward (through this
            # try's finally, then the enclosing guard).  Catch-all
            # handlers always match, so they get no outward edge
            # (``except Exception`` is treated as catch-all: modelling
            # the KeyboardInterrupt escape would flag every
            # conventional cleanup handler).
            if finally_guard is not None:
                self._guards.append(finally_guard)
            if not _is_catch_all(handler):
                self._raise_edges(head)
            handler_frontiers.extend(self._body(handler.body, [head]))
            if finally_guard is not None:
                self._guards.pop()

        ends = body_frontier + handler_frontiers
        if finally_entry is None:
            return ends
        self._connect(ends, finally_entry)
        finally_frontier = self._body(stmt.finalbody, [finally_entry])
        # Re-raise continuation: the finally completed while an exception
        # (or return) was in flight.
        self._guards.append(_Guard((), None))  # placeholder, popped below
        self._guards.pop()
        for index in finally_frontier:
            outer = self._outer_propagation_target(finally_entry)
            self._edge(index, outer, exceptional=True)
        return finally_frontier

    def _outer_propagation_target(self, own_finally: int) -> int:
        """Where an in-flight exception goes after this ``finally``."""
        for guard in reversed(self._guards):
            if (
                guard.finally_entry is not None
                and guard.finally_entry != own_finally
            ):
                return guard.finally_entry
        return CFG.EXIT


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function definition."""
    return _Builder(func).build()


def iter_function_cfgs(
    tree: ast.AST,
) -> list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """Every function (and method, and nested function) in ``tree`` with
    its CFG, in source order."""
    out: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((node, build_cfg(node)))
    out.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
    return out
