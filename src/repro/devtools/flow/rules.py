"""The four dataflow lint rules: RS009, RS010, RS011, RS012.

Each rule runs per function over the shared CFGs built once per module
by :func:`run_flow_rules` (the AST is parsed once and every CFG is
built once, no matter how many rules inspect it).  Findings come back
as plain ``(lineno, col, code, message)`` tuples; the lint front end in
:mod:`repro.devtools.lint` owns turning them into ``Finding`` records,
applying ``noqa`` suppression, and formatting output.

Scope notes (mirroring the single-node rules):

* RS009 applies to ``async def`` functions under ``repro.service`` and
  ``repro.cluster`` — the tiers whose concurrency model is
  interleaving-at-await-points.
* RS010 applies to all non-test ``repro`` code: dtype taint can start
  anywhere and flow into a count sink.
* RS011 applies to ``repro.service``, ``repro.cluster``, and
  ``repro.store`` — the tiers that acquire OS resources.
* RS012 applies to the service/cluster op-handler functions whose
  raises the protocol's fault barrier must map to wire error codes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import NamedTuple

from .cfg import CFG, FlowNode, iter_function_cfgs
from .dataflow import ForwardAnalysis

__all__ = ["FLOW_RULE_CODES", "run_flow_rules"]

#: Codes of the rules implemented in this module.
FLOW_RULE_CODES = ("RS009", "RS010", "RS011", "RS012")

#: One raw finding: (lineno, col, code, message).
RawFinding = tuple[int, int, str, str]


# ---------------------------------------------------------------------------
# Shared scope + import-alias helpers
# ---------------------------------------------------------------------------
# _is_test_path/_in_package mirror repro.devtools.lint; duplicated here
# (they are three lines each) because lint.py imports this module.


def _is_test_path(path: Path) -> bool:
    if any(part in ("tests", "test") for part in path.parts):
        return True
    return path.name.startswith(("test_", "conftest"))


def _in_package(path: Path, *suffix: str) -> bool:
    parts = path.parts
    needle = ("repro", *suffix)
    for start in range(len(parts) - len(needle)):
        if parts[start : start + len(needle)] == needle:
            return True
    return False


#: Modules whose import aliases the rules care about.
_TRACKED_MODULES = frozenset({"numpy", "socket", "subprocess"})


class _Imports(NamedTuple):
    """Import aliases in one module, for resolving call targets."""

    modules: dict[str, str]  # local alias -> module ("np" -> "numpy")
    members: dict[str, tuple[str, str]]  # local name -> (module, member)


def _scan_imports(tree: ast.Module) -> _Imports:
    modules: dict[str, str] = {}
    members: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _TRACKED_MODULES:
                    modules[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module in _TRACKED_MODULES:
                for alias in node.names:
                    members[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
    return _Imports(modules, members)


def _resolve_call(
    func: ast.expr, imports: _Imports
) -> tuple[str, str] | None:
    """Resolve a call target to ``(module, member)`` via import aliases."""
    if isinstance(func, ast.Name):
        return imports.members.get(func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module = imports.modules.get(func.value.id)
        if module is not None:
            return (module, func.attr)
    return None


def _load_names(expr: ast.AST) -> frozenset[str]:
    """Every plain ``Name`` read inside ``expr``."""
    return frozenset(
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    )


def _node_value_names(node: FlowNode) -> frozenset[str]:
    """Every ``Name`` read anywhere in the node's local expressions."""
    names: set[str] = set()
    for expr in node.local_exprs():
        names |= _load_names(expr)
    return frozenset(names)


# ---------------------------------------------------------------------------
# RS009 — await-point race on shared table/sketch state
# ---------------------------------------------------------------------------

#: Attribute names that constitute shared table/sketch state: the
#: RS002/RS004 sets (including the ``repro.cache`` segment orderings
#: and doorkeeper bits) plus the service applier's sequencing fields.
_RACE_ATTRS = frozenset(
    {
        "_counters",
        "_rows",
        "_table",
        "_total_weight",
        "counters",
        "table",
        "_applied_seq",
        "_enqueued_seq",
        "_records_applied",
        "_accepting",
        "_window_lru",
        "_probation",
        "_protected",
        "_lru_order",
        "_freq_buckets",
        "_key_freq",
        "_door_bits",
        "_tokens",
        "_turns",
        "_entries",
    }
)


class _RaceFact(NamedTuple):
    """``var`` holds a value read from ``base.attr``; ``crossed`` is
    True once an unguarded await has intervened."""

    var: str
    base: str
    attr: str
    crossed: bool


def _state_read(expr: ast.expr) -> tuple[str, str] | None:
    """The first shared-state attribute read inside ``expr``, if any."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in _RACE_ATTRS
        ):
            return (ast.unparse(node.value), node.attr)
    return None


def _has_unguarded_await(node: FlowNode) -> bool:
    """True when executing this node can suspend outside any
    ``async with`` block and outside the ``wait_applied`` read barrier."""
    if node.async_with_depth > 0:
        return False
    if node.is_async_point:
        return True
    for expr in node.walk():
        if isinstance(expr, ast.Await):
            value = expr.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "wait_applied"
            ):
                continue
            return True
    return False


class _RaceAnalysis(ForwardAnalysis[_RaceFact]):
    """Track shared-state reads across await points (RS009)."""

    def transfer(
        self, node: FlowNode, facts: frozenset[_RaceFact]
    ) -> frozenset[_RaceFact]:
        out: set[_RaceFact] = set(facts)
        if _has_unguarded_await(node):
            out = {fact._replace(crossed=True) for fact in out}
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            var = stmt.targets[0].id
            survivors = {fact for fact in out if fact.var != var}
            read = _state_read(stmt.value)
            if read is not None:
                survivors.add(_RaceFact(var, read[0], read[1], False))
            elif isinstance(stmt.value, ast.Name):
                source = stmt.value.id
                for fact in out:
                    if fact.var == source:
                        survivors.add(fact._replace(var=var))
            out = survivors
        return frozenset(out)


def _written_state_attrs(stmt: ast.stmt) -> list[tuple[str, str]]:
    """Shared-state attributes this statement writes, as
    ``(base, attr)``."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    written: list[tuple[str, str]] = []
    for target in targets:
        candidate = target
        if isinstance(candidate, ast.Subscript):
            candidate = candidate.value
        if (
            isinstance(candidate, ast.Attribute)
            and candidate.attr in _RACE_ATTRS
        ):
            written.append((ast.unparse(candidate.value), candidate.attr))
    return written


def _rs009(
    cfg: CFG, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[RawFinding]:
    if not isinstance(func, ast.AsyncFunctionDef):
        return []
    in_sets = _RaceAnalysis().run(cfg)
    findings: list[RawFinding] = []
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            continue
        written = _written_state_attrs(stmt)
        if not written:
            continue
        value = getattr(stmt, "value", None)
        names = _load_names(value) if value is not None else frozenset()
        for base, attr in written:
            stale = [
                fact
                for fact in in_sets[node.index]
                if fact.crossed
                and fact.base == base
                and fact.attr == attr
                and fact.var in names
            ]
            if stale:
                var = sorted(fact.var for fact in stale)[0]
                findings.append(
                    (
                        stmt.lineno,
                        stmt.col_offset,
                        "RS009",
                        f"`{base}.{attr}` written from `{var}`, which was "
                        f"read before an intervening `await` — another task "
                        f"may have mutated the state in between",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# RS010 — float/NumPy dtype taint reaching count/weight sinks
# ---------------------------------------------------------------------------

#: NumPy scalar constructors whose results are dtype-tainted.
_NP_SCALAR_CTORS = frozenset(
    {
        "float16",
        "float32",
        "float64",
        "float128",
        "half",
        "single",
        "double",
        "longdouble",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "intp",
        "uintp",
        "longlong",
        "ulonglong",
        "short",
        "ushort",
    }
)

#: Count-taking sketch methods and the positional index of their count
#: argument (mirrors RS005).
_COUNT_POSITIONS = {
    "update": 1,
    "observe_before": 1,
    "observe_after": 1,
    "second_pass_before": 1,
    "second_pass_after": 1,
    "scale": 0,
}

#: Snapshot-header fields that must stay plain ``int``.
_HEADER_KEYS = frozenset({"total_weight", "items_seen", "items_consumed"})


class _TaintAnalysis(ForwardAnalysis[str]):
    """Track variables holding float/NumPy-scalar values (RS010)."""

    def __init__(self, imports: _Imports) -> None:
        self._imports = imports

    def expr_tainted(self, expr: ast.expr, facts: frozenset[str]) -> bool:
        """True when ``expr`` may evaluate to a non-``int`` numeric."""
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        if isinstance(expr, ast.Name):
            return expr.id in facts
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return True
            return self.expr_tainted(expr.left, facts) or self.expr_tainted(
                expr.right, facts
            )
        if isinstance(expr, ast.UnaryOp):
            return self.expr_tainted(expr.operand, facts)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body, facts) or self.expr_tainted(
                expr.orelse, facts
            )
        if isinstance(expr, (ast.NamedExpr,)):
            return self.expr_tainted(expr.value, facts)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if isinstance(func, ast.Name) and func.id == "int":
                return False
            resolved = _resolve_call(func, self._imports)
            return (
                resolved is not None
                and resolved[0] == "numpy"
                and resolved[1] in _NP_SCALAR_CTORS
            )
        return False

    def _bound_names(self, stmt: ast.stmt) -> list[str]:
        names: list[str] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.append(node.id)
        return names

    def transfer(
        self, node: FlowNode, facts: frozenset[str]
    ) -> frozenset[str]:
        stmt = node.stmt
        out = set(facts)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            bound = self._bound_names(stmt)
            value = stmt.value
            if bound:
                tainted = value is not None and self.expr_tainted(
                    value, facts
                )
                # A tuple unpack of a tainted value conservatively
                # taints every bound name; a clean value scrubs them.
                for name in bound:
                    if tainted:
                        out.add(name)
                    else:
                        out.discard(name)
        elif isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            name = stmt.target.id
            if isinstance(stmt.op, ast.Div) or self.expr_tainted(
                stmt.value, facts
            ):
                out.add(name)
            # Otherwise keep the prior taint state: ``x += 1`` neither
            # introduces nor removes float-ness.
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    out.discard(sub.id)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            out.discard(sub.id)
        return frozenset(out)


def _rs010_sinks(
    node: FlowNode, analysis: _TaintAnalysis, facts: frozenset[str]
) -> list[RawFinding]:
    findings: list[RawFinding] = []

    def flag(expr: ast.expr, what: str) -> None:
        # Bare float literals at the sink are RS005's domain; RS010
        # reports only values that *flowed* here.
        if isinstance(expr, ast.Constant):
            return
        if analysis.expr_tainted(expr, facts):
            findings.append(
                (
                    expr.lineno,
                    expr.col_offset,
                    "RS010",
                    f"possibly non-int value reaches {what} without an "
                    f"`int(...)` cast",
                )
            )

    for root in node.local_exprs():
        for sub in ast.walk(root):
            if isinstance(sub, ast.Call):
                name: str | None = None
                if isinstance(sub.func, ast.Attribute):
                    name = sub.func.attr
                elif isinstance(sub.func, ast.Name):
                    name = sub.func.id
                position = _COUNT_POSITIONS.get(name or "")
                if position is not None and len(sub.args) > position:
                    flag(
                        sub.args[position],
                        f"the count argument of `{name}(...)`",
                    )
                for keyword in sub.keywords:
                    if keyword.arg == "count":
                        flag(keyword.value, "`count=`")
            elif isinstance(sub, ast.Dict):
                for key, value in zip(sub.keys, sub.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value in _HEADER_KEYS
                    ):
                        flag(
                            value,
                            f"snapshot-header field `{key.value!r}`",
                        )
    # Subscript stores: ``header["total_weight"] = tainted``.
    stmt = node.stmt
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value in _HEADER_KEYS
            ):
                flag(
                    stmt.value,
                    f"snapshot-header field `{target.slice.value!r}`",
                )
    return findings


def _rs010(cfg: CFG, imports: _Imports) -> list[RawFinding]:
    analysis = _TaintAnalysis(imports)
    in_sets = analysis.run(cfg)
    findings: list[RawFinding] = []
    for node in cfg.statement_nodes():
        findings.extend(_rs010_sinks(node, analysis, in_sets[node.index]))
    return findings


# ---------------------------------------------------------------------------
# RS011 — resource leak on some CFG path
# ---------------------------------------------------------------------------

#: Call targets whose result owns an OS resource, with a human label.
_ACQUIRERS: dict[tuple[str, str], str] = {
    ("socket", "socket"): "socket",
    ("socket", "create_connection"): "socket",
    ("subprocess", "Popen"): "subprocess",
}

#: Method names that release a tracked resource.
_CLOSERS = frozenset({"close", "stop", "terminate", "kill", "shutdown"})

#: Container methods through which a resource escapes to a longer-lived
#: owner.
_CONTAINER_ADDERS = frozenset({"append", "add", "insert", "extend"})


class _ResourceFact(NamedTuple):
    """``var`` holds a resource of ``kind`` acquired at
    ``line``:``col``."""

    var: str
    line: int
    col: int
    kind: str


def _direct_value_names(expr: ast.expr) -> frozenset[str]:
    """Names whose *values* are stored by assigning ``expr`` somewhere:
    bare names, through tuple/list structure and conditionals — but not
    names merely passed to a call."""
    if isinstance(expr, ast.Name):
        return frozenset({expr.id})
    if isinstance(expr, (ast.Tuple, ast.List)):
        out: frozenset[str] = frozenset()
        for elt in expr.elts:
            out |= _direct_value_names(elt)
        return out
    if isinstance(expr, ast.Starred):
        return _direct_value_names(expr.value)
    if isinstance(expr, ast.IfExp):
        return _direct_value_names(expr.body) | _direct_value_names(
            expr.orelse
        )
    return frozenset()


def _acquired_kind(value: ast.expr, imports: _Imports) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "file handle"
    resolved = _resolve_call(func, imports)
    if resolved is not None:
        return _ACQUIRERS.get(resolved)
    return None


class _ResourceAnalysis(ForwardAnalysis[_ResourceFact]):
    """Track locally-owned resources until closed or escaped (RS011)."""

    def __init__(self, imports: _Imports) -> None:
        self._imports = imports

    def _kills(
        self, node: FlowNode, facts: frozenset[_ResourceFact]
    ) -> set[str]:
        stmt = node.stmt
        killed: set[str] = set()
        live = {fact.var for fact in facts}
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    killed.add(target.id)
            return killed
        for root in node.local_exprs():
            for sub in ast.walk(root):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                # ``var.close()`` / ``var.stop()`` — released.
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _CLOSERS
                ):
                    killed.add(func.value.id)
                # ``owner.append(var)`` — ownership transferred.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CONTAINER_ADDERS
                ):
                    for arg in sub.args:
                        killed |= _load_names(arg) & live
                # ``ShardProcess(index, process, ...)`` — a wrapper type
                # takes ownership.
                ctor = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if ctor[:1].isupper():
                    for arg in sub.args:
                        killed |= _load_names(arg) & live
                    for keyword in sub.keywords:
                        killed |= _load_names(keyword.value) & live
        # Escapes: returned/yielded, or stored into an attribute,
        # subscript, or tuple-structured target.
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            killed |= _load_names(stmt.value) & live
        for root in node.local_exprs():
            for sub in ast.walk(root):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    value = sub.value
                    if value is not None:
                        killed |= _load_names(value) & live
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(stmt.targets)
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            if value is not None and any(
                not isinstance(target, ast.Name) for target in targets
            ):
                # Only names stored *directly* escape (``self._sock =
                # sock``); a name buried in a call is a borrow, not a
                # transfer (``host, port = probe(sock)``).
                killed |= _direct_value_names(value) & live
        return killed

    def transfer(
        self, node: FlowNode, facts: frozenset[_ResourceFact]
    ) -> frozenset[_ResourceFact]:
        killed = self._kills(node, facts)
        out = {fact for fact in facts if fact.var not in killed}
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            var = stmt.targets[0].id
            out = {fact for fact in out if fact.var != var}
            kind = _acquired_kind(stmt.value, self._imports)
            if kind is not None:
                out.add(
                    _ResourceFact(var, stmt.lineno, stmt.col_offset, kind)
                )
        return frozenset(out)

    def transfer_exception(
        self, node: FlowNode, facts: frozenset[_ResourceFact]
    ) -> frozenset[_ResourceFact]:
        # If the statement raised, its own acquisition never bound — so
        # kills apply (an attempted ``close`` still counts on the path
        # into ``finally``) but gens do not.
        killed = self._kills(node, facts)
        return frozenset(
            fact for fact in facts if fact.var not in killed
        )


def _rs011(cfg: CFG, imports: _Imports) -> list[RawFinding]:
    in_sets = _ResourceAnalysis(imports).run(cfg)
    findings: list[RawFinding] = []
    for fact in sorted(in_sets[CFG.EXIT]):
        findings.append(
            (
                fact.line,
                fact.col,
                "RS011",
                f"{fact.kind} `{fact.var}` acquired here is not closed on "
                f"every path out of the function",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# RS012 — raise outside the closed wire-error vocabulary
# ---------------------------------------------------------------------------

#: Exception types the service fault barrier maps to wire error codes.
_WIRE_ERROR_TYPES = frozenset(
    {
        "_BadRequest",
        "_NoSuchTable",
        "WireProtocolError",
        "FrameTooLargeError",
        "TableOverloadedError",
        "TableQuotaExceededError",
    }
)

#: Handler functions whose raises must stay inside the vocabulary.
_HANDLER_NAMES = frozenset(
    {
        "dispatch",
        "dispatch_binary",
        "_dispatch_op",
        "_binary_ingest",
        "_answer",
        "_require_table",
    }
)


def _is_handler(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return func.name.startswith("_op_") or func.name in _HANDLER_NAMES


def _raised_type_name(exc: ast.expr) -> str | None:
    """The exception type name of a ``raise X(...)`` / ``raise m.X(...)``
    site, or ``None`` when it cannot be determined statically."""
    target = exc
    if isinstance(target, ast.Call):
        target = target.func
    else:
        # ``raise exc`` re-raises a bound exception object; its type was
        # vetted where it was caught or constructed.
        return None
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _rs012(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[RawFinding]:
    if not _is_handler(func):
        return []
    findings: list[RawFinding] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Raise) and node.exc is not None:
            name = _raised_type_name(node.exc)
            if name is not None and name not in _WIRE_ERROR_TYPES:
                findings.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "RS012",
                        f"`raise {name}(...)` in op handler "
                        f"`{func.name}` is outside the wire-error "
                        f"vocabulary the protocol maps to error codes",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_flow_rules(tree: ast.Module, path: Path) -> list[RawFinding]:
    """Run every applicable flow rule over one parsed module.

    The module's CFGs are built once and shared by all rules.  Returns
    raw ``(lineno, col, code, message)`` tuples sorted by position.
    """
    in_service_tier = _in_package(path, "service") or _in_package(
        path, "cluster"
    )
    in_resource_tier = (in_service_tier or _in_package(path, "store")
                        or _in_package(path, "cache"))
    in_repro = _in_package(path)
    is_test = _is_test_path(path)
    if is_test or not in_repro:
        return []

    imports = _scan_imports(tree)
    findings: list[RawFinding] = []
    for func, cfg in iter_function_cfgs(tree):
        if in_service_tier:
            findings.extend(_rs009(cfg, func))
            findings.extend(_rs012(func))
        if in_resource_tier:
            findings.extend(_rs011(cfg, imports))
        findings.extend(_rs010(cfg, imports))
    findings.sort(key=lambda item: (item[0], item[1], item[2]))
    return findings
