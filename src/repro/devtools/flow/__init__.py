"""Dataflow-aware lint rules (RS009-RS012) for the service/cluster tier.

This subpackage adds control-flow- and dataflow-sensitive analyses on
top of the single-node AST rules in :mod:`repro.devtools.lint`:

* :mod:`.cfg` — per-function statement-level control-flow graphs
  (branches, loops, ``try``/``except``/``finally``, ``async with`` /
  ``async for``, await points);
* :mod:`.dataflow` — a forward may-analysis fixpoint engine (gen/kill
  over variable facts, union join, deterministic worklist);
* :mod:`.rules` — the four flow rules: RS009 await-point races on
  shared sketch state, RS010 float/NumPy dtype taint reaching count
  sinks, RS011 resource leaks on exceptional paths, and RS012 raises
  outside the closed wire-error vocabulary.

The rules are invoked through ``python -m repro.devtools.lint`` (or
``repro lint``); they share that CLI's suppression, selection, and
output machinery.
"""

from .cfg import CFG, FlowNode, build_cfg, iter_function_cfgs
from .dataflow import ForwardAnalysis
from .rules import FLOW_RULE_CODES, run_flow_rules

__all__ = [
    "CFG",
    "FLOW_RULE_CODES",
    "FlowNode",
    "ForwardAnalysis",
    "build_cfg",
    "iter_function_cfgs",
    "run_flow_rules",
]
