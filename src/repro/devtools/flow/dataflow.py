"""A small forward may-dataflow framework over :mod:`.cfg` graphs.

Analyses subclass :class:`ForwardAnalysis` and supply gen/kill-style
transfer functions over immutable fact sets.  The engine runs a
worklist fixpoint with union join (a *may* analysis: a fact holds at a
node if it holds on at least one path reaching it), which is the right
polarity for every flow rule in this package — races, taint, and leaks
are all "can this happen on some path" questions.

Normal and exceptional edges carry different out-states: the
*exceptional* out-state of a statement applies that statement's kills
but none of its gens.  That asymmetry matters for resource tracking —
``f = open(p)`` raising means no handle was bound, so the exception
edge must not carry the "open" fact, while ``f.close()`` raising must
still count as an attempted close on the path into ``finally``.

Fact sets are ``frozenset`` of analysis-defined hashable facts, and
the worklist is a deque seeded in node-index order, so the fixpoint
(and therefore every finding built on it) is deterministic for a given
source file.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Hashable, TypeVar

from .cfg import CFG, FlowNode

__all__ = ["ForwardAnalysis"]

F = TypeVar("F", bound=Hashable)

_EMPTY: frozenset[object] = frozenset()


class ForwardAnalysis(Generic[F]):
    """Base class for forward may-analyses over a function CFG.

    Subclasses override :meth:`initial` for the entry fact set,
    :meth:`transfer` for the normal-completion out-state of a node,
    and optionally :meth:`transfer_exception` for the out-state on that
    node's exceptional edges (default: same as normal — override when
    gens must not survive a raise, as in resource tracking).
    """

    def initial(self, cfg: CFG) -> frozenset[F]:
        """Facts holding at function entry (default: none)."""
        return frozenset()

    def transfer(self, node: FlowNode, facts: frozenset[F]) -> frozenset[F]:
        """Out-state after ``node`` completes normally."""
        raise NotImplementedError

    def transfer_exception(
        self, node: FlowNode, facts: frozenset[F]
    ) -> frozenset[F]:
        """Out-state on ``node``'s exceptional edges."""
        return self.transfer(node, facts)

    def run(self, cfg: CFG) -> list[frozenset[F]]:
        """Fixpoint: the IN fact set of every node, indexed like
        ``cfg.nodes``."""
        n = len(cfg.nodes)
        in_sets: list[frozenset[F]] = [_EMPTY for _ in range(n)]  # type: ignore[misc]
        in_sets[CFG.ENTRY] = self.initial(cfg)
        worklist: deque[int] = deque(range(n))
        queued = [True] * n
        while worklist:
            index = worklist.popleft()
            queued[index] = False
            node = cfg.nodes[index]
            facts = in_sets[index]
            if index == CFG.ENTRY:
                out_normal = facts
                out_exc = facts
            else:
                out_normal = self.transfer(node, facts)
                out_exc = self.transfer_exception(node, facts)
            for edge in cfg.succs[index]:
                out = out_exc if edge.exceptional else out_normal
                merged = in_sets[edge.target] | out
                if merged != in_sets[edge.target]:
                    in_sets[edge.target] = merged
                    if not queued[edge.target]:
                        worklist.append(edge.target)
                        queued[edge.target] = True
        return in_sets
