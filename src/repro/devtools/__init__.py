"""Developer tooling: repo-specific static analysis.

The paper's guarantees (Lemmas 1-5) rest on invariants the runtime cannot
check: sketches may only be merged when they share hash functions (§3.2
linearity), counters must stay integral, and experiments must be
reproducible.  :mod:`repro.devtools.lint` encodes those invariants as a
lint suite CI runs over ``src`` and ``tests``: syntactic AST rules
(``RS001``-``RS008``) plus dataflow rules (``RS009``-``RS012``) built on
the per-function CFG and fixpoint framework in
:mod:`repro.devtools.flow`::

    python -m repro.devtools.lint src tests

See ``docs/devtools.md`` for the rule catalogue, bad/good examples, the
``--select`` / ``--ignore`` / ``--baseline`` flags, and the
``# repro: noqa-RSxxx`` suppression syntax.
"""

from typing import Any

__all__ = [
    "RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_source",
]


def __getattr__(name: str) -> Any:
    # Lazy re-export: importing the package eagerly from inside
    # ``python -m repro.devtools.lint`` would shadow the module runpy is
    # about to execute (the "found in sys.modules" RuntimeWarning).
    if name in __all__:
        from repro.devtools import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
