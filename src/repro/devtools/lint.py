"""Custom AST lint suite enforcing the repo's stream-sketch invariants.

The rules encode conventions that keep the paper's guarantees true but
that no general-purpose linter knows about:

* **RS001 unseeded-rng** — module-level ``random`` / ``np.random`` calls
  outside test code.  Experiments must thread an explicit seeded
  generator (``random.Random(seed)`` / ``np.random.default_rng(seed)``)
  or reproducibility is silently lost.
* **RS002 counter-mutation** — direct mutation of a sketch's counter /
  state arrays (``_counters``, ``_rows``, ``_table``, ``_total_weight``,
  or the public read-only views) on another object outside
  ``repro.core``.  Counters are int64 by invariant and only the core
  update paths may touch them.
* **RS003 metrics-lookup** — metrics-registry lookups (``.counter()`` /
  ``.gauge()`` / ``.histogram()`` / ``.timed()``) outside ``__init__`` /
  construction paths.  The PR-2 convention captures handles once at
  construction time so disabled metrics cost one attribute load per
  event; a lookup on a hot path defeats that.
* **RS004 unchecked-merge** — sketch state read or combined without the
  compatibility-checked API (reaching for another sketch's private
  ``_counters`` / calling ``_with_counters``) outside ``repro.core``.
  ``merge()`` / ``+`` / ``-`` enforce the §3.2 shared-hash check; raw
  array arithmetic merges incompatible sketches silently.
* **RS005 float-count** — float literals flowing into integer count
  parameters (``update(item, 1.5)``, ``count=2.0``, ``scale(1.5)``).
  A float count silently promotes the int64 counter array and breaks
  serialization and exact-merge equality.  Exact-reciprocal ``scale``
  factors (``scale(0.5)``, the TinyLFU aging reset) floor-divide and are
  exempt.
* **RS006 raw-state-serialization** — sketch state fed to a generic
  serializer (``json.dump``/``dumps``, ``pickle``, ``marshal``,
  ``np.save``/``savez``) outside ``repro.store``.  Ad-hoc dumps drop
  the format version, checksums, and hash coefficients, so the bytes
  cannot be validated or merged later; ``repro.store.save()`` /
  ``load()`` is the one sanctioned codec.
* **RS007 async-blocking-call** — blocking calls (``time.sleep``,
  ``subprocess``, ``os.system``, builtin ``open``, ``Path.read_text``
  and friends, ``repro.store.save``/``load``) inside an ``async def``
  under ``repro.service``.  The server runs every table on one event
  loop; a single blocking call stalls ingestion and all queries at
  once.  Await the async equivalent or use ``loop.run_in_executor``.
* **RS008 binary-wire-outside-protocol** — binary payload packing and
  unpacking primitives (``struct.*``, ``np.frombuffer``,
  ``.tobytes()``, ``int.to_bytes``/``from_bytes``) in ``repro.service``
  modules other than ``protocol.py``.  The binary frame layout is a
  wire contract with exactly one implementation; a second ad-hoc
  encoder drifts from the negotiated format silently.  Call the
  ``repro.service.protocol`` codec instead.

Rules RS009-RS012 are dataflow-aware: they run a per-function CFG +
fixpoint analysis (see :mod:`repro.devtools.flow`) instead of matching
single AST nodes:

* **RS009 await-point-race** — shared table/sketch state read into a
  local, an unguarded ``await`` (outside ``async with``, not the
  ``wait_applied`` read barrier), then the same state written from that
  stale local.  Another task may have interleaved at the await; the
  write loses its update.
* **RS010 dtype-taint** — a value originating from a float literal,
  division, ``float(...)``, or a NumPy scalar constructor *flows* into
  a count/weight parameter or snapshot-header field without an
  ``int(...)`` cast (the dataflow generalization of RS005).
* **RS011 resource-leak** — a file handle, socket, or subprocess
  acquired in ``repro.service`` / ``repro.cluster`` / ``repro.store``
  whose close/stop is not guaranteed on every CFG path (a raise
  between acquire and release escapes without cleanup; use
  ``try/finally`` or a context manager).
* **RS012 open-error-vocabulary** — a ``raise`` inside a service or
  cluster op handler whose exception type is outside the closed
  vocabulary the protocol maps to wire error codes; anything else
  surfaces to clients as an opaque ``internal`` error.

Suppress a finding by appending ``# repro: noqa-RS001`` (comma-separate
several codes: ``# repro: noqa-RS002,RS004``; bare ``# repro: noqa``
suppresses every rule) on the finding's first line.

Run as a module for the CI gate::

    python -m repro.devtools.lint src tests
    python -m repro.devtools.lint --format json src tests
    python -m repro.devtools.lint --select RS009-RS012 src tests

Exit codes: 0 clean, 1 findings, 2 syntax error in a linted file or a
bad ``--select`` / ``--ignore`` / ``--baseline`` argument.
"""

from __future__ import annotations

import argparse
import ast
import json
import math
import re
import sys
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any

from .flow.rules import FLOW_RULE_CODES, run_flow_rules

__all__ = [
    "FAST_RULE_CODES",
    "FLOW_RULE_CODES",
    "RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "parse_rule_spec",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable code, a slug, and a one-line fix hint."""

    code: str
    name: str
    summary: str
    hint: str


RULES: tuple[Rule, ...] = (
    Rule(
        "RS001",
        "unseeded-rng",
        "module-level random/np.random call outside test code",
        "thread an explicit seeded generator: random.Random(seed) / "
        "np.random.default_rng(seed)",
    ),
    Rule(
        "RS002",
        "counter-mutation",
        "direct mutation of a sketch's counter/state arrays outside "
        "repro.core",
        "go through the public update()/merge()/scale()/state_dict() API; "
        "only repro.core may touch counter arrays",
    ),
    Rule(
        "RS003",
        "metrics-lookup",
        "metrics-registry lookup outside __init__/construction paths",
        "capture the handle once at construction time and reuse it "
        "(the PR-2 handle-capture convention)",
    ),
    Rule(
        "RS004",
        "unchecked-merge",
        "sketch state accessed/combined without the compatibility-checked "
        "API",
        "use merge()/+/-/copy()/counters, which enforce the §3.2 "
        "shared-hash compatibility check",
    ),
    Rule(
        "RS005",
        "float-count",
        "float literal flowing into an integer count parameter",
        "counts are integers (the int64 counter invariant); pass an int",
    ),
    Rule(
        "RS006",
        "raw-state-serialization",
        "sketch state serialized with a generic codec outside repro.store",
        "persist summaries with repro.store.save()/load() — the versioned, "
        "CRC-checked snapshot format",
    ),
    Rule(
        "RS007",
        "async-blocking-call",
        "blocking call inside an async def under repro.service",
        "await the async equivalent or hand the work to "
        "loop.run_in_executor(...); the event loop must never block",
    ),
    Rule(
        "RS008",
        "binary-wire-outside-protocol",
        "binary payload encode/decode outside repro.service.protocol",
        "the binary frame layout has one implementation — use the "
        "repro.service.protocol codec (pack_binary_ingest / pack_key / "
        "unpack_frame) instead of ad-hoc struct/frombuffer/tobytes",
    ),
    Rule(
        "RS009",
        "await-point-race",
        "shared sketch/table state read, then written from the stale "
        "local across an unguarded await point",
        "re-read the state after the await, or hold the lock "
        "(async with) / use the wait_applied read barrier across the "
        "read-modify-write",
    ),
    Rule(
        "RS010",
        "dtype-taint",
        "float/NumPy-scalar value flows into a count parameter or "
        "snapshot-header field without an int(...) cast",
        "cast with int(...) at the source or the sink; counts and "
        "header fields are plain Python ints by invariant",
    ),
    Rule(
        "RS011",
        "resource-leak",
        "file handle / socket / subprocess not released on every CFG "
        "path",
        "acquire inside `with ...:` or close/stop/terminate in a "
        "`finally:` so exceptional paths release the resource too",
    ),
    Rule(
        "RS012",
        "open-error-vocabulary",
        "raise outside the closed wire-error vocabulary inside a "
        "service/cluster op handler",
        "raise one of _BadRequest / _NoSuchTable / WireProtocolError / "
        "FrameTooLargeError / TableOverloadedError so the fault barrier "
        "maps it to a wire error code",
    ),
)

#: Codes handled by the single-pass AST checker (fast stage).
FAST_RULE_CODES: tuple[str, ...] = tuple(
    rule.code for rule in RULES if rule.code not in FLOW_RULE_CODES
)

RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in RULES}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def rule(self) -> Rule:
        """The rule this finding violates."""
        return RULES_BY_CODE[self.code]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule.name,
            "message": self.message,
            "hint": self.rule.hint,
        }

    def format_human(self) -> str:
        """The one-line human rendering used by the default output."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} (fix: {self.rule.hint})"
        )


@dataclass(frozen=True)
class LintResult:
    """The outcome of linting a set of paths.

    ``fast_seconds`` / ``flow_seconds`` are the cumulative wall-clock
    time spent in the single-pass AST stage (RS001-RS008) and the
    CFG/dataflow stage (RS009-RS012); cache hits contribute nothing.
    """

    findings: tuple[Finding, ...]
    files_checked: int
    suppressed: int
    fast_seconds: float = field(default=0.0, compare=False)
    flow_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        """True when no unsuppressed finding remains."""
        return not self.findings


# -- noqa suppression --------------------------------------------------------

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>(?:-\s*RS\d{3})(?:\s*,\s*RS\d{3})*)?"
)


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Map line numbers to suppressed rule codes (``None`` = every rule)."""
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(re.findall(r"RS\d{3}", codes))
    return suppressions


def _is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    codes = suppressions.get(finding.line, frozenset())
    return codes is None or finding.code in codes


# -- the checker -------------------------------------------------------------

#: Sketch state attributes whose *mutation* outside repro.core is RS002.
#: Includes the ``repro.cache`` shared state: cache segment orderings
#: (``_window_lru``/``_probation``/``_protected``), the LFU frequency
#: buckets, and the doorkeeper bit array.
_STATE_ATTRS = frozenset(
    {
        "_counters", "_rows", "_table", "_total_weight", "counters",
        "table", "_window_lru", "_probation", "_protected", "_lru_order",
        "_freq_buckets", "_key_freq", "_door_bits",
    }
)

#: Private state attributes whose *read* outside repro.core is RS004.
_PRIVATE_STATE_ATTRS = frozenset(
    {
        "_counters", "_rows", "_table", "_total_weight", "_window_lru",
        "_probation", "_protected", "_lru_order", "_freq_buckets",
        "_key_freq", "_door_bits",
    }
)

#: Registry lookup method names (RS003).
_REGISTRY_LOOKUPS = frozenset({"counter", "gauge", "histogram", "timed"})

#: Function names that count as construction paths for RS003.
_CONSTRUCTION_FUNCS = frozenset({"__init__", "__new__", "__post_init__"})

#: Implementations of the compatibility-checked arithmetic protocol: these
#: method bodies ARE the checked API, so their raw state reads are exempt
#: from RS004 (each is expected to validate compatibility itself).
_ARITHMETIC_IMPLS = frozenset(
    {
        "merge",
        "__add__",
        "__sub__",
        "__iadd__",
        "__isub__",
        "__neg__",
        "inner_product",
        "compatible_with",
        "_require_compatible",
    }
)

#: ``random`` module attributes that construct a generator: fine when
#: called *with* a seed argument, RS001 when called bare.
_RANDOM_CONSTRUCTORS = frozenset({"Random"})

#: ``np.random`` attributes that construct a generator (same seeding rule).
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Method name -> positional index of its count parameter (RS005).
_COUNT_POSITIONS = {
    "update": 1,
    "observe_before": 1,
    "observe_after": 1,
    "second_pass_before": 1,
    "second_pass_after": 1,
    "scale": 0,
}

#: Keyword names that carry integer counts (RS005).
_COUNT_KEYWORDS = frozenset({"count"})


def _is_exact_reciprocal(value: object) -> bool:
    """True for float literals ``scale`` accepts as floor-division factors.

    ``CountSketch.scale`` floor-divides on factors whose IEEE-754 value is
    exactly ``1/k`` (``0.5``, ``0.25``, …) — the TinyLFU aging/reset
    operation — so those literals are legitimate counts-preserving
    arguments, not RS005 findings.
    """
    if not isinstance(value, float) or not math.isfinite(value):
        return False
    ratio = Fraction(value)
    return ratio.numerator == 1 and ratio.denominator >= 2

#: Generic serializer entry points per stdlib/numpy module (RS006).
_SERIALIZER_FUNCS: dict[str, frozenset[str]] = {
    "json": frozenset({"dump", "dumps"}),
    "pickle": frozenset({"dump", "dumps"}),
    "marshal": frozenset({"dump", "dumps"}),
    "numpy": frozenset({"save", "savez", "savez_compressed"}),
}

#: Attribute names that mark an expression as sketch state (RS006): the
#: counter arrays (private and public views) and the state_dict() export.
_SERIALIZED_STATE_ATTRS = frozenset(
    {"_counters", "counters", "_rows", "_table", "table"}
)

#: Module-level blocking entry points flagged inside ``async def`` bodies
#: under ``repro.service`` (RS007).
_BLOCKING_MODULE_CALLS: dict[str, frozenset[str]] = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"system", "popen"}),
    "subprocess": frozenset(
        {"run", "call", "check_call", "check_output", "Popen"}
    ),
}

#: Blocking filesystem methods (the ``pathlib.Path`` I/O surface),
#: flagged on any receiver inside async service code (RS007).
_BLOCKING_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: ``repro.store`` entry points that hit the filesystem (RS007).
_STORE_IO_FUNCS = frozenset({"save", "load", "load_with_meta"})

#: Byte packing/unpacking methods whose presence in service code marks
#: ad-hoc binary wire encoding (RS008); flagged on any receiver.
_BINARY_METHODS = frozenset({"tobytes", "to_bytes", "from_bytes"})


def _is_test_path(path: Path) -> bool:
    """True for files where test-only relaxations (RS001/RS003) apply."""
    if any(part in ("tests", "test") for part in path.parts):
        return True
    name = path.name
    return name.startswith(("test_", "conftest"))


def _in_package(path: Path, *suffix: str) -> bool:
    """True when ``path`` lies under the ``repro/<suffix...>`` package."""
    parts = path.parts
    needle = ("repro", *suffix)
    for start in range(len(parts) - len(needle)):
        if parts[start : start + len(needle)] == needle:
            return True
    return False


def _float_literal(node: ast.expr) -> bool:
    """True for a float constant, possibly behind a unary ``+``/``-``."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class _Checker(ast.NodeVisitor):
    """Single-pass visitor applying every RS rule to one module."""

    def __init__(self, path: Path, display_path: str) -> None:
        self._display_path = display_path
        self._is_test = _is_test_path(path)
        self._in_core = _in_package(path, "core")
        self._in_observability = _in_package(path, "observability")
        self._in_store = _in_package(path, "store")
        self._in_service = _in_package(path, "service")
        self._in_service_protocol = (
            self._in_service and path.name == "protocol.py"
        )
        self._func_stack: list[str] = []
        self._async_stack: list[bool] = []
        self._awaited_calls: set[int] = set()
        self._in_decorator = 0
        self.findings: list[Finding] = []
        # Import-derived name tables (module- or function-scoped alike).
        self._random_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        self._np_random_aliases: set[str] = set()
        self._from_random: dict[str, str] = {}
        self._from_np_random: dict[str, str] = {}
        self._observability_timed: set[str] = set()
        self._serializer_aliases: dict[str, str] = {}
        self._from_serializer: dict[str, tuple[str, str]] = {}
        self._blocking_module_aliases: dict[str, str] = {}
        self._from_blocking: dict[str, str] = {}
        self._store_module_aliases: set[str] = set()
        self._struct_aliases: set[str] = set()
        self._from_struct: dict[str, str] = {}

    # -- bookkeeping --------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self._display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name in ("json", "pickle", "marshal"):
                self._serializer_aliases[bound] = alias.name
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self._np_random_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add("numpy")
            if alias.name in _BLOCKING_MODULE_CALLS:
                self._blocking_module_aliases[bound] = alias.name
            elif alias.name == "repro.store" and alias.asname is not None:
                self._store_module_aliases.add(alias.asname)
            if alias.name == "struct":
                self._struct_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "random":
                self._from_random[bound] = alias.name
            elif module == "numpy.random":
                self._from_np_random[bound] = alias.name
            elif module == "numpy" and alias.name == "random":
                self._np_random_aliases.add(bound)
            elif module.startswith("repro.observability") and (
                alias.name == "timed"
            ):
                self._observability_timed.add(bound)
            if (
                module in _SERIALIZER_FUNCS
                and alias.name in _SERIALIZER_FUNCS[module]
            ):
                self._from_serializer[bound] = (module, alias.name)
            if (
                module in _BLOCKING_MODULE_CALLS
                and alias.name in _BLOCKING_MODULE_CALLS[module]
            ):
                self._from_blocking[bound] = f"{module}.{alias.name}"
            elif module == "repro.store" and alias.name in _STORE_IO_FUNCS:
                self._from_blocking[bound] = f"repro.store.{alias.name}"
            if module == "struct":
                self._from_struct[bound] = alias.name
        self.generic_visit(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._in_decorator += 1
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._in_decorator -= 1
        self._func_stack.append(node.name)
        self._async_stack.append(isinstance(node, ast.AsyncFunctionDef))
        for child in ast.iter_child_nodes(node):
            if child in node.decorator_list:
                continue
            self.visit(child)
        self._async_stack.pop()
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- RS001: unseeded RNG ------------------------------------------------

    def _rng_target(self, func: ast.expr) -> tuple[str, str] | None:
        """Resolve a call target to ``(module, attr)`` for RNG checking."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in self._random_aliases:
                    return ("random", func.attr)
                if value.id in self._np_random_aliases:
                    return ("np.random", func.attr)
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self._numpy_aliases
            ):
                return ("np.random", func.attr)
        elif isinstance(func, ast.Name):
            if func.id in self._from_random:
                return ("random", self._from_random[func.id])
            if func.id in self._from_np_random:
                return ("np.random", self._from_np_random[func.id])
        return None

    def _check_rs001(self, node: ast.Call) -> None:
        if self._is_test:
            return
        target = self._rng_target(node.func)
        if target is None:
            return
        module, attr = target
        constructors = (
            _RANDOM_CONSTRUCTORS
            if module == "random"
            else _NP_RANDOM_CONSTRUCTORS
        )
        if attr in constructors:
            if node.args or node.keywords:
                return  # explicitly seeded constructor
            self._report(
                node,
                "RS001",
                f"`{module}.{attr}()` built without a seed",
            )
            return
        self._report(
            node,
            "RS001",
            f"module-level `{module}.{attr}(...)` uses hidden global RNG "
            "state",
        )

    # -- RS002 / RS004: counter state access --------------------------------

    @staticmethod
    def _state_attribute(node: ast.expr) -> ast.Attribute | None:
        """Unwrap ``obj.attr`` or ``obj.attr[...]`` to the Attribute node."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node
        return None

    @staticmethod
    def _base_is_self(attribute: ast.Attribute) -> bool:
        return (
            isinstance(attribute.value, ast.Name)
            and attribute.value.id in ("self", "cls")
        )

    def _check_state_mutation(self, target: ast.expr) -> None:
        if self._in_core:
            return
        attribute = self._state_attribute(target)
        if attribute is None or attribute.attr not in _STATE_ATTRS:
            return
        if self._base_is_self(attribute):
            return
        base = ast.unparse(attribute.value)
        self._report(
            attribute,
            "RS002",
            f"direct mutation of `{base}.{attribute.attr}` outside "
            "repro.core",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_state_mutation(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_state_mutation(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_state_mutation(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_state_mutation(target)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self._in_core
            and isinstance(node.ctx, ast.Load)
            and node.attr in _PRIVATE_STATE_ATTRS
            and not self._base_is_self(node)
            and not (
                self._func_stack
                and self._func_stack[-1] in _ARITHMETIC_IMPLS
            )
        ):
            base = ast.unparse(node.value)
            self._report(
                node,
                "RS004",
                f"read of private sketch state `{base}.{node.attr}` "
                "bypasses the compatibility-checked API",
            )
        self.generic_visit(node)

    # -- RS003: metrics lookups ---------------------------------------------

    def _in_construction_path(self) -> bool:
        if self._in_decorator:
            return True
        if not self._func_stack:
            return True  # module level runs once, at import time
        return any(name in _CONSTRUCTION_FUNCS for name in self._func_stack)

    def _check_rs003(self, node: ast.Call) -> None:
        if self._is_test or self._in_observability:
            return
        if self._in_construction_path():
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _REGISTRY_LOOKUPS:
            base = ast.unparse(func.value)
            self._report(
                node,
                "RS003",
                f"metrics-registry lookup `{base}.{func.attr}(...)` outside "
                "a construction path",
            )
        elif (
            isinstance(func, ast.Name)
            and func.id in self._observability_timed
        ):
            self._report(
                node,
                "RS003",
                f"metrics-registry lookup `{func.id}(...)` outside a "
                "construction path",
            )

    # -- RS004: unchecked merge helpers -------------------------------------

    def _check_rs004_call(self, node: ast.Call) -> None:
        if self._in_core:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "_with_counters":
            base = ast.unparse(func.value)
            self._report(
                node,
                "RS004",
                f"`{base}._with_counters(...)` builds a sketch without the "
                "compatibility check",
            )

    # -- RS005: float counts ------------------------------------------------

    def _check_rs005(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if (
                keyword.arg in _COUNT_KEYWORDS
                and keyword.value is not None
                and _float_literal(keyword.value)
            ):
                self._report(
                    keyword.value,
                    "RS005",
                    f"float literal passed as `{keyword.arg}=`",
                )
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        position = _COUNT_POSITIONS.get(name or "")
        if position is None or len(node.args) <= position:
            return
        argument = node.args[position]
        if _float_literal(argument):
            if (
                name == "scale"
                and isinstance(argument, ast.Constant)
                and _is_exact_reciprocal(argument.value)
            ):
                # scale(0.5) floor-halves counters (the TinyLFU reset);
                # exact reciprocals keep the int64 invariant.
                return
            self._report(
                argument,
                "RS005",
                f"float literal passed as the count argument of "
                f"`{name}(...)`",
            )

    # -- RS006: raw state serialization ---------------------------------------

    def _serializer_target(self, func: ast.expr) -> str | None:
        """Resolve a call target to a serializer's display name, if any."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if not isinstance(value, ast.Name):
                return None
            module = self._serializer_aliases.get(value.id)
            if module is not None and func.attr in _SERIALIZER_FUNCS[module]:
                return f"{module}.{func.attr}"
            if (
                value.id in self._numpy_aliases
                and func.attr in _SERIALIZER_FUNCS["numpy"]
            ):
                return f"numpy.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self._from_serializer:
            module, attr = self._from_serializer[func.id]
            return f"{module}.{attr}"
        return None

    @staticmethod
    def _references_sketch_state(node: ast.Call) -> bool:
        """True when the call's argument tree reaches sketch state: a
        counter-array attribute or a ``state_dict()`` export."""
        roots: list[ast.expr] = list(node.args)
        roots.extend(
            keyword.value
            for keyword in node.keywords
            if keyword.value is not None
        )
        for root in roots:
            for child in ast.walk(root):
                if (
                    isinstance(child, ast.Attribute)
                    and child.attr in _SERIALIZED_STATE_ATTRS
                ):
                    return True
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "state_dict"
                ):
                    return True
        return False

    def _check_rs006(self, node: ast.Call) -> None:
        if self._in_store:
            return
        target = self._serializer_target(node.func)
        if target is None:
            return
        if self._references_sketch_state(node):
            self._report(
                node,
                "RS006",
                f"`{target}(...)` serializes raw sketch state outside "
                "repro.store",
            )

    # -- RS007: blocking calls in async service code --------------------------

    def visit_Await(self, node: ast.Await) -> None:
        self._awaited_calls.add(id(node.value))
        self.generic_visit(node)

    def _blocking_target(self, func: ast.expr) -> str | None:
        """Resolve a call target to a blocking API's display name."""
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_METHODS:
                return f"{ast.unparse(func.value)}.{func.attr}"
            value = func.value
            if isinstance(value, ast.Name):
                module = self._blocking_module_aliases.get(value.id)
                if (
                    module is not None
                    and func.attr in _BLOCKING_MODULE_CALLS[module]
                ):
                    return f"{module}.{func.attr}"
                if (
                    value.id in self._store_module_aliases
                    and func.attr in _STORE_IO_FUNCS
                ):
                    return f"repro.store.{func.attr}"
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "store"
                and isinstance(value.value, ast.Name)
                and value.value.id == "repro"
                and func.attr in _STORE_IO_FUNCS
            ):
                return f"repro.store.{func.attr}"
        elif isinstance(func, ast.Name):
            if func.id == "open":
                return "open"
            return self._from_blocking.get(func.id)
        return None

    def _check_rs007(self, node: ast.Call) -> None:
        if not self._in_service:
            return
        if not (self._async_stack and self._async_stack[-1]):
            return
        if id(node) in self._awaited_calls:
            return  # awaited: an async namesake, not the blocking API
        target = self._blocking_target(node.func)
        if target is None:
            return
        self._report(
            node,
            "RS007",
            f"blocking call `{target}(...)` inside an `async def` stalls "
            "the event loop",
        )

    # -- RS008: binary wire codec outside repro.service.protocol -------------

    def _binary_codec_target(self, func: ast.expr) -> str | None:
        """Resolve a call target to a binary pack/unpack primitive name."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in self._struct_aliases:
                    return f"struct.{func.attr}"
                if value.id in self._numpy_aliases and func.attr == "frombuffer":
                    return "np.frombuffer"
            if func.attr in _BINARY_METHODS:
                return func.attr
        elif isinstance(func, ast.Name):
            if func.id in self._from_struct:
                return f"struct.{self._from_struct[func.id]}"
        return None

    def _check_rs008(self, node: ast.Call) -> None:
        if not self._in_service or self._in_service_protocol:
            return
        target = self._binary_codec_target(node.func)
        if target is None:
            return
        self._report(
            node,
            "RS008",
            f"binary payload codec `{target}(...)` outside "
            "repro.service.protocol",
        )

    # -- dispatch ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rs001(node)
        self._check_rs003(node)
        self._check_rs004_call(node)
        self._check_rs005(node)
        self._check_rs006(node)
        self._check_rs007(node)
        self._check_rs008(node)
        self.generic_visit(node)


# -- running -----------------------------------------------------------------


@dataclass(frozen=True)
class _Analysis:
    """Everything one parse of one module yields: kept findings,
    suppressed count, and per-stage wall-clock seconds."""

    findings: tuple[Finding, ...]
    suppressed: int
    fast_seconds: float
    flow_seconds: float


def _analyze(source: str, path: Path) -> _Analysis:
    """Parse once, run the fast AST stage and the flow stage, apply
    ``noqa`` suppression.

    Raises:
        SyntaxError: when ``source`` does not parse.
    """
    tree = ast.parse(source, filename=str(path))
    started = time.perf_counter()
    checker = _Checker(path, str(path))
    checker.visit(tree)
    findings = list(checker.findings)
    fast_seconds = time.perf_counter() - started
    started = time.perf_counter()
    findings.extend(
        Finding(str(path), line, col, code, message)
        for line, col, code, message in run_flow_rules(tree, path)
    )
    flow_seconds = time.perf_counter() - started
    suppressions = _noqa_map(source)
    kept = tuple(
        finding
        for finding in findings
        if not _is_suppressed(finding, suppressions)
    )
    return _Analysis(
        findings=kept,
        suppressed=len(findings) - len(kept),
        fast_seconds=fast_seconds,
        flow_seconds=flow_seconds,
    )


#: Per-process analysis cache: (path, mtime_ns, size) -> analysis.  The
#: test suite and the CI gate lint the same tree repeatedly (fast stage,
#: flow stage, determinism runs); one parse + one CFG build per file
#: version serves them all.
_ANALYSIS_CACHE: dict[tuple[str, int, int], _Analysis] = {}


def _analyze_file(path: Path) -> _Analysis:
    try:
        stat = path.stat()
        key = (str(path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        key = None  # type: ignore[assignment]
    if key is not None:
        cached = _ANALYSIS_CACHE.get(key)
        if cached is not None:
            return _Analysis(
                findings=cached.findings,
                suppressed=cached.suppressed,
                fast_seconds=0.0,
                flow_seconds=0.0,
            )
    analysis = _analyze(path.read_text(encoding="utf-8"), path)
    if key is not None:
        _ANALYSIS_CACHE[key] = analysis
    return analysis


def lint_source(
    source: str, path: str | Path = "<string>"
) -> list[Finding]:
    """Lint one module's source text; returns unsuppressed findings.

    Raises:
        SyntaxError: when ``source`` does not parse.
    """
    return list(_analyze(source, Path(path)).findings)


def _iter_python_files(
    paths: Sequence[str | Path], include_fixtures: bool
) -> Iterator[Path]:
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if candidate in seen:
                continue
            parts = candidate.parts
            if "__pycache__" in parts:
                continue
            if not include_fixtures and candidate != root and (
                "fixtures" in parts
            ):
                continue
            seen.add(candidate)
            yield candidate


def lint_paths(
    paths: Sequence[str | Path],
    include_fixtures: bool = False,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    Directory walks skip ``__pycache__`` and (unless ``include_fixtures``)
    any ``fixtures`` directory — lint fixtures are data, not code.
    Explicit file arguments are always linted.  ``select`` restricts
    output to the given rule codes (``None`` = all rules); ``ignore``
    drops codes after selection.  Filtering happens on the analysis
    output, so repeated calls with different selections share the
    per-file cache.
    """
    findings: list[Finding] = []
    files = 0
    suppressed = 0
    fast_seconds = 0.0
    flow_seconds = 0.0
    for path in _iter_python_files(paths, include_fixtures):
        analysis = _analyze_file(path)
        files += 1
        findings.extend(analysis.findings)
        suppressed += analysis.suppressed
        fast_seconds += analysis.fast_seconds
        flow_seconds += analysis.flow_seconds
    if select is not None:
        findings = [f for f in findings if f.code in select]
    if ignore:
        findings = [f for f in findings if f.code not in ignore]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintResult(
        findings=tuple(findings),
        files_checked=files,
        suppressed=suppressed,
        fast_seconds=fast_seconds,
        flow_seconds=flow_seconds,
    )


def parse_rule_spec(spec: str) -> frozenset[str]:
    """Expand a ``--select`` / ``--ignore`` value into rule codes.

    Accepts comma-separated codes and inclusive ranges:
    ``"RS005"``, ``"RS001,RS003"``, ``"RS009-RS012"``, or a mix.

    Raises:
        ValueError: on malformed items or unknown rule codes.
    """
    codes: set[str] = set()
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        match = re.fullmatch(r"(RS\d{3})(?:-(RS\d{3}))?", item)
        if match is None:
            raise ValueError(f"malformed rule spec item: {item!r}")
        low, high = match.group(1), match.group(2) or match.group(1)
        expanded = {
            f"RS{number:03d}"
            for number in range(int(low[2:]), int(high[2:]) + 1)
        }
        unknown = expanded - RULES_BY_CODE.keys()
        if unknown:
            raise ValueError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        codes |= expanded
    if not codes:
        raise ValueError(f"empty rule spec: {spec!r}")
    return frozenset(codes)


def _load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """Load a ``--baseline`` allowlist: ``(path, code, message)`` keys.

    The file is the ``--format json`` output (or just its ``findings``
    array); line/column drift is deliberately ignored so a baseline
    survives unrelated edits.

    Raises:
        ValueError: when the file is not valid baseline JSON.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"baseline {path}: invalid JSON: {error}") from error
    entries = payload.get("findings") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ValueError(
            f"baseline {path}: expected a findings array or a "
            f"--format json document"
        )
    baseline: set[tuple[str, str, str]] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path}: non-object entry: {entry!r}")
        try:
            baseline.add(
                (
                    str(entry["path"]),
                    str(entry["code"]),
                    str(entry["message"]),
                )
            )
        except KeyError as error:
            raise ValueError(
                f"baseline {path}: entry missing key {error}"
            ) from error
    return baseline


def _format_rules() -> str:
    lines = []
    for rule in RULES:
        lines.append(f"{rule.code} [{rule.name}] {rule.summary}")
        lines.append(f"    fix: {rule.hint}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Returns a process exit code: 0 clean, 1 findings, 2 syntax error in
    a linted file or a bad ``--select`` / ``--ignore`` / ``--baseline``
    argument.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="repo-specific AST + dataflow lint suite "
        "(rules RS001-RS012)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--include-fixtures", action="store_true",
        help="also lint files under fixtures/ directories",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="only report these rules; comma-separated codes and ranges "
        "(e.g. RS005 or RS009-RS012)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES", default=None,
        help="drop these rules from the report; same syntax as --select",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path, default=None,
        help="allowlist of known findings to ignore — the --format json "
        "output of a previous run (matched on path/code/message)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_format_rules())
        return 0

    try:
        select = (
            parse_rule_spec(args.select) if args.select is not None else None
        )
        ignore = (
            parse_rule_spec(args.ignore)
            if args.ignore is not None
            else frozenset()
        )
        baseline = (
            _load_baseline(args.baseline)
            if args.baseline is not None
            else None
        )
    except (ValueError, OSError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    try:
        result = lint_paths(
            args.paths,
            include_fixtures=args.include_fixtures,
            select=select,
            ignore=ignore,
        )
    except SyntaxError as error:
        print(f"repro-lint: syntax error: {error}", file=sys.stderr)
        return 2

    findings = list(result.findings)
    baselined = 0
    if baseline is not None:
        kept = [
            finding
            for finding in findings
            if (finding.path, finding.code, finding.message) not in baseline
        ]
        baselined = len(findings) - len(kept)
        findings = kept

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files_checked": result.files_checked,
                    "suppressed": result.suppressed,
                    "baselined": baselined,
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format_human())
    print(
        f"repro-lint: {len(findings)} finding(s), "
        f"{result.suppressed} suppressed, {baselined} baselined, "
        f"{result.files_checked} file(s) checked "
        f"[fast {result.fast_seconds:.2f}s, flow {result.flow_seconds:.2f}s]",
        file=sys.stderr,
    )
    return 0 if not findings else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like grep.
        sys.exit(141)
