"""Dietzfelbinger multiply-shift hashing for power-of-two ranges.

``h(x) = ((a * x + b) mod 2**128) >> (128 - log2(m))`` with ``a`` odd is the
classic "multiply-shift" scheme: universal in its plain form and 2-wise
independent in the ``(a, b)`` pair form used here.  It is the fastest
practical scheme for power-of-two bucket counts and is offered as an
alternative to the default polynomial family for throughput-sensitive
deployments; the sketches accept either.
"""

from __future__ import annotations

from repro.hashing.family import seeded_rng

_WORD_BITS = 128
_WORD_MASK = (1 << _WORD_BITS) - 1


class MultiplyShiftHash:
    """A single pair-multiply-shift hash onto ``[0, 2**out_bits)``.

    Args:
        multiplier: the odd multiplier ``a`` in ``[1, 2**128)``.
        addend: the additive constant ``b`` in ``[0, 2**128)``.
        out_bits: number of output bits; the range is ``2**out_bits``.
    """

    __slots__ = ("_multiplier", "_addend", "_out_bits", "_shift")

    def __init__(self, multiplier: int, addend: int, out_bits: int) -> None:
        if not 1 <= out_bits <= 64:
            raise ValueError("out_bits must be in [1, 64]")
        if multiplier % 2 == 0:
            raise ValueError("multiplier must be odd")
        if not 0 < multiplier < (1 << _WORD_BITS):
            raise ValueError("multiplier out of range")
        if not 0 <= addend < (1 << _WORD_BITS):
            raise ValueError("addend out of range")
        self._multiplier = multiplier
        self._addend = addend
        self._out_bits = out_bits
        self._shift = _WORD_BITS - out_bits

    @property
    def range_size(self) -> int:
        """Output range: ``2**out_bits``."""
        return 1 << self._out_bits

    def __call__(self, key: int) -> int:
        """Hash ``key`` into ``[0, 2**out_bits)``."""
        return ((self._multiplier * key + self._addend) & _WORD_MASK) >> self._shift

    def __repr__(self) -> str:
        return f"MultiplyShiftHash(out_bits={self._out_bits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultiplyShiftHash):
            return NotImplemented
        return (
            self._multiplier == other._multiplier
            and self._addend == other._addend
            and self._out_bits == other._out_bits
        )

    def __hash__(self) -> int:
        return hash((self._multiplier, self._addend, self._out_bits))


class MultiplyShiftFamily:
    """A seeded family of independent multiply-shift hashes.

    Args:
        out_bits: output width of every drawn function.
        seed: integer seed.
        salt: extra derivation material (see :class:`repro.hashing.family`).
    """

    def __init__(self, out_bits: int, seed: int = 0, salt: object = "") -> None:
        if not 1 <= out_bits <= 64:
            raise ValueError("out_bits must be in [1, 64]")
        self._out_bits = out_bits
        self._seed = seed
        self._rng = seeded_rng(seed, "multiply-shift", out_bits, salt)

    @property
    def out_bits(self) -> int:
        """Output width of the drawn functions."""
        return self._out_bits

    def draw(self, count: int) -> list[MultiplyShiftHash]:
        """Draw ``count`` independent multiply-shift hashes."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        functions = []
        for _ in range(count):
            multiplier = self._rng.getrandbits(_WORD_BITS) | 1
            addend = self._rng.getrandbits(_WORD_BITS)
            functions.append(
                MultiplyShiftHash(multiplier, addend, self._out_bits)
            )
        return functions

    def __repr__(self) -> str:
        return f"MultiplyShiftFamily(out_bits={self._out_bits}, seed={self._seed})"
