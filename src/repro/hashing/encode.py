"""Canonical encoding of stream items to 64-bit integer keys.

Sketches hash *integers*; streams carry arbitrary hashable Python objects
(query strings, flow 5-tuples, ...).  Python's builtin ``hash`` is salted per
process (``PYTHONHASHSEED``), so a sketch built in one process could not be
merged with, or compared against, a sketch built in another.  This module
provides a deterministic, process-stable mapping instead.

Integers are passed through (reduced mod ``2**64``) so that the common case
of integer item identifiers costs nothing.  Strings, bytes, and other
structured keys are digested with BLAKE2b (8-byte digest), which is both fast
and stable across processes and platforms.

Collisions between distinct non-integer keys occur with probability
``~ 2**-64`` per pair, far below the error terms of any sketch built on top.
"""

from __future__ import annotations

import hashlib
from collections.abc import Hashable

import numpy as np

_MASK_64 = (1 << 64) - 1


def _digest_bytes(data: bytes) -> int:
    """Return a stable 64-bit digest of ``data``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), byteorder="little"
    )


def encode_key(item: Hashable) -> int:
    """Encode ``item`` as an integer in ``[0, 2**64)``.

    The encoding is deterministic across processes and platforms, which makes
    sketches serializable and mergeable between machines.

    Supported key types:

    * ``int`` — passed through mod ``2**64`` (negative values wrap).
      NumPy integer scalars (``np.integer``) and booleans (``np.bool_``)
      encode identically to the equivalent Python ``int``.
    * ``str`` — BLAKE2b digest of the UTF-8 encoding.  Lone surrogates
      (as produced by reading byte-garbled logs with
      ``errors="surrogateescape"``) are encoded with ``surrogatepass``,
      so such strings hash deterministically instead of raising.
    * ``bytes`` / ``bytearray`` — BLAKE2b digest of the raw bytes.
    * ``tuple`` — digest of the recursively encoded elements (so flow
      5-tuples and similar composite keys work out of the box).
    * ``bool`` — treated as ``int`` (``False`` → 0, ``True`` → 1).
    * ``float`` — digest of the IEEE-754 representation via ``float.hex``.

    Raises:
        TypeError: for unsupported key types.
    """
    if isinstance(item, (bool, np.bool_)):
        return int(item)
    if isinstance(item, (int, np.integer)):
        return int(item) & _MASK_64
    if isinstance(item, str):
        return _digest_bytes(item.encode("utf-8", "surrogatepass"))
    if isinstance(item, (bytes, bytearray)):
        return _digest_bytes(bytes(item))
    if isinstance(item, float):
        return _digest_bytes(item.hex().encode("ascii"))
    if isinstance(item, tuple):
        parts = b"".join(
            encode_key(part).to_bytes(8, byteorder="little") for part in item
        )
        return _digest_bytes(b"tuple:" + parts)
    raise TypeError(
        f"cannot encode key of type {type(item).__name__!r}; "
        "supported types are int, str, bytes, float, bool, and tuples thereof"
    )
