"""Vectorized multiply-shift hashing over NumPy uint64 arrays.

The scalar polynomial family (:mod:`repro.hashing.mersenne`) is the
analysis-faithful default, but it hashes one key at a time in Python.
For batch workloads — millions of pre-encoded integer keys — this module
provides row hashing as three NumPy operations per row: a multiply (which
NumPy wraps mod ``2**64``, exactly the multiply-shift ring), an add, and a
shift/mod.

Independence caveat, documented rather than hidden: 64-bit multiply-shift
is universal but not pairwise independent in the strict sense the paper's
lemmas assume (the pair form needs 128-bit arithmetic NumPy lacks).
Empirically it is indistinguishable from the polynomial family on every
workload in this repository (the equivalence tests measure this), matching
the common practice of production sketch libraries; deployments that want
the letter of the analysis should use the scalar
:class:`~repro.core.countsketch.CountSketch`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.hashing.encode import encode_key
from repro.hashing.family import seeded_rng


def encode_keys(items: Iterable[Hashable] | np.ndarray) -> np.ndarray:
    """Encode an iterable of stream items to a uint64 key array.

    Integer items — Python ``int``, ``np.integer`` scalars, and whole
    integer-dtype ndarrays — take a vectorized fast path with the same
    mod-``2**64`` wrap semantics as :func:`repro.hashing.encode.encode_key`
    (negative values map to their two's-complement uint64 image).  Other
    supported types go through ``encode_key`` item by item (one Python
    loop, after which everything downstream is vectorized).
    """
    if isinstance(items, np.ndarray):
        if items.dtype == np.uint64:
            return items
        if items.dtype.kind in "iu":
            # Signed→unsigned astype is a value-preserving C cast mod
            # 2**64, matching encode_key's `value & ((1 << 64) - 1)`.
            return items.astype(np.uint64)
    items = list(items)
    if all(isinstance(item, (int, np.integer))
           and not isinstance(item, (bool, np.bool_))
           for item in items):
        try:
            return np.asarray(items, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            # Negative or >64-bit ints: wrap mod 2**64 like encode_key.
            mask = (1 << 64) - 1
            return np.asarray([int(item) & mask for item in items],
                              dtype=np.uint64)
    return np.asarray([encode_key(item) for item in items], dtype=np.uint64)


class VectorizedRowHashes:
    """Per-row bucket indices and signs for key arrays, in bulk.

    One instance carries ``depth`` independent (multiplier, addend) pairs
    for the bucket hashes and another ``depth`` pairs for the sign hashes,
    all derived deterministically from ``seed``.

    Args:
        depth: number of rows.
        width: bucket count per row.
        seed: derivation seed.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._depth = depth
        self._width = width
        self._seed = seed
        rng = seeded_rng(seed, "vectorized-rows")

        def draw_pairs(count: int) -> tuple[np.ndarray, np.ndarray]:
            multipliers = np.asarray(
                [rng.getrandbits(64) | 1 for _ in range(count)],
                dtype=np.uint64,
            )
            addends = np.asarray(
                [rng.getrandbits(64) for _ in range(count)], dtype=np.uint64
            )
            return multipliers, addends

        self._bucket_mult, self._bucket_add = draw_pairs(depth)
        self._sign_mult, self._sign_add = draw_pairs(depth)

    @property
    def depth(self) -> int:
        """Number of rows."""
        return self._depth

    @property
    def width(self) -> int:
        """Buckets per row."""
        return self._width

    @property
    def seed(self) -> int:
        """The derivation seed (hash identity for compatibility checks)."""
        return self._seed

    def buckets(self, keys: np.ndarray, row: int) -> np.ndarray:
        """Bucket indices in ``[0, width)`` for ``keys`` in ``row``."""
        with np.errstate(over="ignore"):
            mixed = keys * self._bucket_mult[row] + self._bucket_add[row]
        return (mixed >> np.uint64(32)).astype(np.int64) % self._width

    def signs(self, keys: np.ndarray, row: int) -> np.ndarray:
        """±1 signs for ``keys`` in ``row`` (top bit of the mix)."""
        with np.errstate(over="ignore"):
            mixed = keys * self._sign_mult[row] + self._sign_add[row]
        return 1 - 2 * (mixed >> np.uint64(63)).astype(np.int64)

    def same_functions(self, other: VectorizedRowHashes) -> bool:
        """True iff both instances hash identically (shared randomness)."""
        return (
            isinstance(other, VectorizedRowHashes)
            and self._depth == other._depth
            and self._width == other._width
            and bool(np.array_equal(self._bucket_mult, other._bucket_mult))
            and bool(np.array_equal(self._bucket_add, other._bucket_add))
            and bool(np.array_equal(self._sign_mult, other._sign_mult))
            and bool(np.array_equal(self._sign_add, other._sign_add))
        )

    def __repr__(self) -> str:
        return (
            f"VectorizedRowHashes(depth={self._depth}, width={self._width}, "
            f"seed={self._seed})"
        )
