"""Range reduction of a base hash onto ``b`` buckets.

The Count Sketch needs bucket hashes ``h_i : O -> [b]`` for arbitrary ``b``
(the analysis sets ``b`` from Lemma 5, which is rarely a power of two).
A pairwise-independent function into ``[0, p)`` composed with ``mod b`` stays
pairwise independent up to a multiplicative distortion of at most
``(1 + b/p)`` on point probabilities; with ``p = 2**61 - 1`` and the bucket
counts used in practice the distortion is far below every error term in the
paper's analysis, so we document it and move on (this is the standard
practical treatment).
"""

from __future__ import annotations

from repro.hashing.family import HashFamily, HashFunction


class BucketHash:
    """A hash onto ``[0, buckets)`` built from a base hash function.

    Args:
        base: any :class:`~repro.hashing.family.HashFunction`; its range must
            be at least ``buckets``.
        buckets: the number of buckets ``b``.
    """

    __slots__ = ("_base", "_buckets")

    def __init__(self, base: HashFunction, buckets: int) -> None:
        if buckets < 1:
            raise ValueError("buckets must be positive")
        if base.range_size < buckets:
            raise ValueError(
                f"base range {base.range_size} smaller than bucket count {buckets}"
            )
        self._base = base
        self._buckets = buckets

    @property
    def base(self) -> HashFunction:
        """The underlying base hash function."""
        return self._base

    @property
    def range_size(self) -> int:
        """The bucket count ``b``."""
        return self._buckets

    def __call__(self, key: int) -> int:
        """Hash ``key`` to a bucket index in ``[0, buckets)``."""
        return self._base(key) % self._buckets

    def __repr__(self) -> str:
        return f"BucketHash(buckets={self._buckets}, base={self._base!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BucketHash):
            return NotImplemented
        return self._buckets == other._buckets and self._base == other._base

    def __hash__(self) -> int:
        return hash((self._buckets, self._base))


class BucketHashFamily:
    """A family of bucket hashes built over any base family.

    Args:
        base_family: the family to draw base functions from.
        buckets: bucket count for every drawn function.
    """

    def __init__(self, base_family: HashFamily, buckets: int) -> None:
        if buckets < 1:
            raise ValueError("buckets must be positive")
        self._base_family = base_family
        self._buckets = buckets

    @property
    def buckets(self) -> int:
        """Bucket count of drawn functions."""
        return self._buckets

    def draw(self, count: int) -> list[BucketHash]:
        """Draw ``count`` independent bucket hashes."""
        return [
            BucketHash(base, self._buckets)
            for base in self._base_family.draw(count)
        ]

    def __repr__(self) -> str:
        return (
            f"BucketHashFamily(buckets={self._buckets}, "
            f"base_family={self._base_family!r})"
        )
