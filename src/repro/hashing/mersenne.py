"""k-wise-independent polynomial hashing over the Mersenne prime ``2**61-1``.

This is the classical Carter–Wegman construction: a degree-``k-1`` polynomial
with uniformly random coefficients over the field ``GF(p)`` is a k-wise
independent hash family.  With ``k = 2`` it provides exactly the pairwise
independence that the Count Sketch analysis (Lemmas 1–4 of the paper)
assumes, which is why this family is the default for every sketch in this
library.

Choosing a Mersenne prime makes the mod reduction cheap (shift/add instead of
division) in languages with fixed-width integers; in Python we simply rely on
exact big-integer arithmetic, which keeps the implementation an obviously
correct transcription of the mathematics.
"""

from __future__ import annotations

from repro.hashing.family import seeded_rng

#: The Mersenne prime ``2**61 - 1``, comfortably above 64-bit key space /
#: the stream lengths considered here, so the "uniform over [0, p)" model is
#: a faithful approximation for 61-bit slices of the key space.
MERSENNE_PRIME_61 = (1 << 61) - 1


class PolynomialHash:
    """A single polynomial hash ``h(x) = (c_0 + c_1 x + ... ) mod p``.

    The output range is ``[0, p)`` with ``p = 2**61 - 1``.  Keys larger than
    ``p`` are folded into the field first; because keys are at most 64 bits
    and ``p`` is 61 bits, the fold keeps the family (k-1)-wise independent on
    distinct folded keys, and the fold itself collides at most 8 keys per
    residue — negligible against sketch error for all workloads here.

    Args:
        coefficients: polynomial coefficients, constant term first.  All must
            lie in ``[0, p)`` and the leading coefficient must be nonzero so
            the polynomial has full degree.
    """

    __slots__ = ("_coefficients",)

    def __init__(self, coefficients: tuple[int, ...]) -> None:
        if not coefficients:
            raise ValueError("a polynomial hash needs at least one coefficient")
        for c in coefficients:
            if not 0 <= c < MERSENNE_PRIME_61:
                raise ValueError(f"coefficient {c} outside [0, p)")
        if len(coefficients) > 1 and coefficients[-1] == 0:
            raise ValueError("leading coefficient must be nonzero")
        self._coefficients = tuple(coefficients)

    @property
    def coefficients(self) -> tuple[int, ...]:
        """The polynomial coefficients, constant term first."""
        return self._coefficients

    @property
    def degree(self) -> int:
        """Degree of the polynomial (independence is ``degree + 1``-wise)."""
        return len(self._coefficients) - 1

    @property
    def range_size(self) -> int:
        """Output range bound: the Mersenne prime ``p``."""
        return MERSENNE_PRIME_61

    def __call__(self, key: int) -> int:
        """Evaluate the polynomial at ``key`` via Horner's rule."""
        x = key % MERSENNE_PRIME_61
        acc = 0
        for c in reversed(self._coefficients):
            acc = (acc * x + c) % MERSENNE_PRIME_61
        return acc

    def __repr__(self) -> str:
        return f"PolynomialHash(degree={self.degree})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolynomialHash):
            return NotImplemented
        return self._coefficients == other._coefficients

    def __hash__(self) -> int:
        return hash(self._coefficients)


class KWiseFamily:
    """A seeded family of mutually independent k-wise polynomial hashes.

    Args:
        independence: the ``k`` in k-wise independence (``2`` for the
            pairwise independence assumed by the paper).
        seed: integer seed; the family is deterministic given the seed.
        salt: optional extra derivation material so several families can be
            built from one user seed without correlation.
    """

    def __init__(self, independence: int = 2, seed: int = 0, salt: object = "") -> None:
        if independence < 1:
            raise ValueError("independence must be at least 1")
        self._independence = independence
        self._seed = seed
        self._salt = salt
        self._rng = seeded_rng(seed, "kwise", independence, salt)

    @property
    def independence(self) -> int:
        """The independence parameter ``k``."""
        return self._independence

    def draw(self, count: int) -> list[PolynomialHash]:
        """Draw ``count`` fresh, mutually independent polynomial hashes."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        functions = []
        for _ in range(count):
            coefficients = [
                self._rng.randrange(MERSENNE_PRIME_61)
                for _ in range(self._independence)
            ]
            if self._independence > 1:
                # Force full degree so independence is not silently degraded.
                coefficients[-1] = self._rng.randrange(1, MERSENNE_PRIME_61)
            functions.append(PolynomialHash(tuple(coefficients)))
        return functions

    def __repr__(self) -> str:
        return (
            f"KWiseFamily(independence={self._independence}, "
            f"seed={self._seed})"
        )
