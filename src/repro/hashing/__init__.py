"""Hash-function substrate used by every sketch in :mod:`repro`.

The analysis in Charikar, Chen & Farach-Colton assumes pairwise-independent
hash functions (for both the bucket hashes ``h_i`` and the sign hashes
``s_i``), with the rows independent of each other.  This package provides
exactly that:

* :mod:`repro.hashing.mersenne` — k-wise-independent polynomial hashing over
  the Mersenne prime ``p = 2**61 - 1`` (the construction of Carter & Wegman).
  This is the default family for all sketches because it delivers the
  independence the paper's lemmas assume.
* :mod:`repro.hashing.multiply_shift` — Dietzfelbinger's multiply-shift
  scheme, a faster 2-universal alternative for power-of-two ranges.
* :mod:`repro.hashing.tabulation` — simple tabulation hashing (3-independent,
  and much stronger in practice).
* :mod:`repro.hashing.sign` — ±1-valued pairwise-independent hashes derived
  from any base family.
* :mod:`repro.hashing.bucket` — range reduction of a base hash onto
  ``[0, b)`` buckets.
* :mod:`repro.hashing.encode` — canonical, process-stable encoding of
  arbitrary hashable Python keys to 64-bit integers (Python's builtin
  ``hash`` is salted per process and therefore unusable for reproducible
  sketches).

All families take an explicit integer ``seed`` and are fully deterministic
given that seed.
"""

from repro.hashing.bucket import BucketHash, BucketHashFamily
from repro.hashing.encode import encode_key
from repro.hashing.family import HashFamily, HashFunction
from repro.hashing.mersenne import (
    MERSENNE_PRIME_61,
    KWiseFamily,
    PolynomialHash,
)
from repro.hashing.multiply_shift import MultiplyShiftFamily, MultiplyShiftHash
from repro.hashing.sign import SignHash, SignHashFamily
from repro.hashing.tabulation import TabulationFamily, TabulationHash
from repro.hashing.vectorized import VectorizedRowHashes, encode_keys

__all__ = [
    "MERSENNE_PRIME_61",
    "BucketHash",
    "BucketHashFamily",
    "HashFamily",
    "HashFunction",
    "KWiseFamily",
    "MultiplyShiftFamily",
    "MultiplyShiftHash",
    "PolynomialHash",
    "SignHash",
    "SignHashFamily",
    "TabulationFamily",
    "TabulationHash",
    "VectorizedRowHashes",
    "encode_key",
    "encode_keys",
]
