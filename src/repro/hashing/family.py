"""Abstract interfaces for hash functions and hash-function families.

A :class:`HashFunction` maps 64-bit integer keys (see
:mod:`repro.hashing.encode`) to integers in a declared output range.  A
:class:`HashFamily` is a seeded factory of independent hash functions; the
sketches draw their per-row functions from a family so that "independent
hash functions" (a requirement of the paper's analysis) is expressed
structurally rather than by convention.

Both interfaces are :class:`typing.Protocol` s so that the concrete
implementations stay plain classes without inheritance boilerplate, and so
that user-supplied hash functions interoperate as long as they match the
shape.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from typing import Protocol, runtime_checkable


@runtime_checkable
class HashFunction(Protocol):
    """A deterministic map from 64-bit integer keys to ``[0, range_size)``.

    Implementations must be pure: the same key always hashes to the same
    value, and the function must be picklable so sketches can be serialized.
    """

    @property
    def range_size(self) -> int:
        """Exclusive upper bound of the output range."""
        ...

    def __call__(self, key: int) -> int:
        """Hash ``key`` (an integer in ``[0, 2**64)``) into the range."""
        ...


@runtime_checkable
class HashFamily(Protocol):
    """A seeded factory of mutually independent :class:`HashFunction` s."""

    def draw(self, count: int) -> list[HashFunction]:
        """Draw ``count`` fresh, mutually independent functions.

        Successive calls continue consuming the family's random stream, so
        ``draw(2)`` and ``draw(1); draw(1)`` yield the same functions.
        """
        ...


def seeded_rng(seed: int, *salt: object) -> random.Random:
    """Return a :class:`random.Random` derived from ``seed`` and ``salt``.

    The salt lets several components share one user-facing seed without
    sharing their random streams (e.g. the bucket family and the sign family
    of a Count Sketch row must be independent even when built from one seed).
    """
    material = ":".join([str(seed), *map(str, salt)])
    return random.Random(material)


def iter_seeds(seed: int, *salt: object) -> Iterator[int]:
    """Yield an endless stream of derived 63-bit seeds."""
    rng = seeded_rng(seed, *salt)
    while True:
        yield rng.getrandbits(63)
