"""±1-valued pairwise-independent hash functions.

The Count Sketch's sign hashes ``s_i : O -> {+1, -1}`` must be pairwise
independent (that is what makes each row's estimate unbiased, Lemma 1, and
bounds its variance).  We derive a sign from any base hash by taking the
parity of its value: if the base is drawn from a pairwise-independent family
with range ``R``, the parity bit is pairwise independent up to an additive
bias of ``O(1/R)`` when ``R`` is odd (``R = 2**61 - 1`` for the default
polynomial family), which is negligible for every workload here.
"""

from __future__ import annotations

from repro.hashing.family import HashFamily, HashFunction


class SignHash:
    """A ±1-valued hash derived from the parity of a base hash.

    Args:
        base: any :class:`~repro.hashing.family.HashFunction` with range at
            least 2.
    """

    __slots__ = ("_base",)

    def __init__(self, base: HashFunction) -> None:
        if base.range_size < 2:
            raise ValueError("base range must be at least 2")
        self._base = base

    @property
    def base(self) -> HashFunction:
        """The underlying base hash function."""
        return self._base

    @property
    def range_size(self) -> int:
        """Nominal range: 2 (the two signs)."""
        return 2

    def __call__(self, key: int) -> int:
        """Return ``+1`` or ``-1`` for ``key``."""
        return 1 if self._base(key) & 1 else -1

    def __repr__(self) -> str:
        return f"SignHash(base={self._base!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignHash):
            return NotImplemented
        return self._base == other._base

    def __hash__(self) -> int:
        return hash(("sign", self._base))


class SignHashFamily:
    """A family of sign hashes built over any base family."""

    def __init__(self, base_family: HashFamily) -> None:
        self._base_family = base_family

    def draw(self, count: int) -> list[SignHash]:
        """Draw ``count`` independent sign hashes."""
        return [SignHash(base) for base in self._base_family.draw(count)]

    def __repr__(self) -> str:
        return f"SignHashFamily(base_family={self._base_family!r})"
