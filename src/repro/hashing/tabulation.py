"""Simple tabulation hashing.

Simple tabulation (Zobrist hashing) splits a 64-bit key into 8 bytes and
XORs together one random table entry per byte.  The family is 3-wise
independent, and Pătraşcu & Thorup showed it behaves like a fully random
function for many hashing-based algorithms — including Count-Min / Count
Sketch style frequency estimation.  It is provided as the "strong but cheap"
alternative family; the default remains the polynomial family because that
is the construction the paper's analysis literally assumes.
"""

from __future__ import annotations

from repro.hashing.family import seeded_rng

_KEY_BYTES = 8
_TABLE_SIZE = 256
_MASK_64 = (1 << 64) - 1


class TabulationHash:
    """A single simple-tabulation hash onto ``[0, 2**64)``.

    Args:
        tables: 8 tables of 256 random 64-bit entries each.
    """

    __slots__ = ("_tables",)

    def __init__(self, tables: tuple[tuple[int, ...], ...]) -> None:
        if len(tables) != _KEY_BYTES:
            raise ValueError(f"expected {_KEY_BYTES} tables, got {len(tables)}")
        for table in tables:
            if len(table) != _TABLE_SIZE:
                raise ValueError("each table must have 256 entries")
        self._tables = tables

    @property
    def range_size(self) -> int:
        """Output range: ``2**64``."""
        return 1 << 64

    def __call__(self, key: int) -> int:
        """Hash ``key`` by XOR-ing one table entry per key byte."""
        key &= _MASK_64
        acc = 0
        for i in range(_KEY_BYTES):
            acc ^= self._tables[i][(key >> (8 * i)) & 0xFF]
        return acc

    def __repr__(self) -> str:
        return "TabulationHash()"


class TabulationFamily:
    """A seeded family of independent simple-tabulation hashes."""

    def __init__(self, seed: int = 0, salt: object = "") -> None:
        self._seed = seed
        self._rng = seeded_rng(seed, "tabulation", salt)

    def draw(self, count: int) -> list[TabulationHash]:
        """Draw ``count`` independent tabulation hashes."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        functions = []
        for _ in range(count):
            tables = tuple(
                tuple(self._rng.getrandbits(64) for _ in range(_TABLE_SIZE))
                for _ in range(_KEY_BYTES)
            )
            functions.append(TabulationHash(tables))
        return functions

    def __repr__(self) -> str:
        return f"TabulationFamily(seed={self._seed})"
