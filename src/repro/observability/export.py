"""Registry exporters: JSON documents and Prometheus exposition text.

Two formats cover the deployment styles the ROADMAP targets:

* :func:`to_json` / :func:`write_json` — a single JSON document of the
  registry snapshot, the format ``repro ... --metrics-out m.json`` writes
  and ``benchmarks/bench_overhead.py`` consumes for its BENCH trajectory.
* :func:`to_prometheus` / :func:`write_prometheus` — the Prometheus text
  exposition format (version 0.0.4): counters and gauges as single
  samples, histograms as ``summary`` families with ``quantile`` labels
  plus ``_sum``/``_count`` samples, ready for a scrape endpoint or the
  node-exporter textfile collector.

Metric names are sanitized to the Prometheus charset (``[a-zA-Z_:]``
first, ``[a-zA-Z0-9_:]`` after); the JSON export keeps names verbatim.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.observability.registry import MetricsRegistry

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Sanitize ``name`` into a valid Prometheus metric name."""
    if _NAME_OK.match(name):
        return name
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    """Render a sample value per the exposition format."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Serialize the registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_json(registry: MetricsRegistry, path: str | Path) -> None:
    """Write :func:`to_json` output to ``path`` (trailing newline added)."""
    Path(path).write_text(to_json(registry) + "\n", encoding="utf-8")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Serialize the registry in the Prometheus text exposition format."""
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot["gauges"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in snapshot["histograms"].items():
        metric = _prometheus_name(name)
        lines.append(f"# TYPE {metric} summary")
        for label, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{label}"}} '
                    f"{_format_value(summary[key])}"
                )
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
        lines.append(f"{metric}_count {_format_value(summary['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> None:
    """Write :func:`to_prometheus` output to ``path``."""
    Path(path).write_text(to_prometheus(registry), encoding="utf-8")
