"""Zero-overhead-by-default observability for the sketch layers.

The package provides a :class:`MetricsRegistry` of counters, gauges, and
streaming histograms (p50/p95/p99 via a fixed-size reservoir), a
``timed()`` context-manager/decorator, and JSON / Prometheus-text
exporters.  The process-wide registry defaults to a no-op
:class:`NullRegistry`; the instrumented hot paths (``CountSketch`` and
friends, ``TopKTracker``, ``repro.parallel.engine``) capture their metric
handles at construction time, so uninstrumented runs pay a single
``is not None`` test per event — ``benchmarks/bench_overhead.py`` keeps
that honest.

Typical use::

    from repro.observability import MetricsRegistry, use_registry, to_json

    registry = MetricsRegistry()
    with use_registry(registry):
        tracker = TopKTracker(10, depth=5, width=512)
        for item in stream:
            tracker.update(item)
    print(to_json(registry))

or from the CLI: ``repro topk --input q.txt --metrics-out m.json``.
"""

from repro.observability.export import (
    to_json,
    to_prometheus,
    write_json,
    write_prometheus,
)
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    timed,
    use_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "metrics_enabled",
    "set_registry",
    "timed",
    "to_json",
    "to_prometheus",
    "use_registry",
    "write_json",
    "write_prometheus",
]
