"""Metric primitives and the (default no-op) global registry.

Three metric kinds cover the instrumentation the sketch layers need:

* :class:`Counter` — a monotonically increasing total (updates applied,
  cache hits, heap evictions).
* :class:`Gauge` — a point-in-time value (configured worker count, live
  cache size).
* :class:`Histogram` — a streaming value distribution (per-shard merge
  seconds, items/s) summarized by count/sum/min/max and p50/p95/p99
  quantiles over a fixed-size reservoir sample, so memory stays bounded
  no matter how many observations arrive.

The module-level registry defaults to :class:`NullRegistry`, whose metric
handles are shared do-nothing singletons.  Instrumented classes capture
their handles **once at construction time**, so the per-event cost of
disabled metrics is a single attribute load and an ``is not None`` test —
near zero on the hot paths (`benchmarks/bench_overhead.py` measures it).
Enable collection by installing a real registry *before* building the
objects to observe::

    from repro.observability import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        sketch = CountSketch(5, 1024)   # captures live handles
        sketch.extend(stream)
    print(registry.snapshot())
"""

from __future__ import annotations

import functools
import random
import time
from contextlib import contextmanager
from collections.abc import Callable, Iterator
from typing import Any

#: Default reservoir size for histograms; large enough that p99 over a
#: run's observations is stable, small enough to be allocation-trivial.
DEFAULT_RESERVOIR_SIZE = 1024


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self._value += amount

    @property
    def value(self) -> int:
        """The current total."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """A streaming distribution with bounded-memory quantile estimates.

    Exact ``count``/``sum``/``min``/``max`` are maintained for every
    observation; quantiles are computed over a classic reservoir sample
    (Vitter's Algorithm R) of at most ``reservoir_size`` values, so a
    histogram never grows with the stream.  The reservoir RNG is seeded
    from the metric name, keeping snapshots deterministic for a fixed
    observation sequence (the repo-wide reproducibility rule).
    """

    __slots__ = (
        "name", "_count", "_sum", "_min", "_max", "_reservoir",
        "_capacity", "_rng",
    )

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be at least 1")
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []
        self._capacity = reservoir_size
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 ≤ q ≤ 1) from the reservoir.

        Uses linear interpolation between reservoir order statistics;
        returns ``nan`` when no observations have been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if not self._reservoir:
            return float("nan")
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 summary of the reservoir."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self._count}, "
            f"sum={self._sum})"
        )


class _TimedBlock:
    """Context manager recording one wall-clock duration per ``with``."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> _TimedBlock:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(time.perf_counter() - self._start)

    def __call__(self, func: Callable[..., Any]) -> Callable[..., Any]:
        histogram = self._histogram

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                histogram.observe(time.perf_counter() - start)

        return wrapper


class _NullCounter:
    """Shared do-nothing counter handed out by :class:`NullRegistry`."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullGauge:
    """Shared do-nothing gauge handed out by :class:`NullRegistry`."""

    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the decrement."""


class _NullHistogram:
    """Shared do-nothing histogram handed out by :class:`NullRegistry`."""

    __slots__ = ()
    name = "null"
    count = 0
    sum = 0.0
    min = float("inf")
    max = float("-inf")

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def quantile(self, q: float) -> float:
        """Always ``nan`` — nothing is recorded."""
        return float("nan")

    def percentiles(self) -> dict[str, float]:
        """Empty-distribution percentiles (all ``nan``)."""
        nan = float("nan")
        return {"p50": nan, "p95": nan, "p99": nan}


class _NullTimedBlock:
    """Do-nothing stand-in for :class:`_TimedBlock`."""

    __slots__ = ()

    def __enter__(self) -> _NullTimedBlock:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def __call__(self, func: Callable[..., Any]) -> Callable[..., Any]:
        return func


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMED = _NullTimedBlock()


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric handles are created on first request and shared thereafter, so
    ``registry.counter("x")`` is stable across call sites — the idiom is
    to fetch handles once (at construction time) and hold them.

    Args:
        reservoir_size: reservoir capacity for histograms created by this
            registry (see :class:`Histogram`).
    """

    #: Real registries collect; the null registry overrides this to False.
    enabled = True

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self._reservoir_size = reservoir_size
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def gauge(self, name: str) -> Gauge:
        """Return (creating if needed) the gauge called ``name``."""
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = Gauge(name)
        return handle

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called ``name``."""
        handle = self._histograms.get(name)
        if handle is None:
            handle = self._histograms[name] = Histogram(
                name, reservoir_size=self._reservoir_size
            )
        return handle

    def timed(self, name: str) -> _TimedBlock:
        """A context manager / decorator timing into histogram ``name``.

        As a context manager each ``with`` block records one duration
        (seconds); as a decorator every call of the wrapped function does.
        """
        return _TimedBlock(self.histogram(name))

    def merge_counters(self, counters: dict[str, int]) -> None:
        """Fold a ``{name: total}`` mapping into this registry's counters.

        The cross-process aggregation hook: a worker collects into its own
        registry, ships ``snapshot()["counters"]`` home (plain dict, so it
        pickles), and the parent merges.  Counters are sums, so merging is
        exact; histograms are process-local by design.
        """
        for name, value in counters.items():
            self.counter(name).inc(value)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict summary of every metric (JSON-compatible).

        Histograms are summarized (count/sum/min/max/p50/p95/p99), not
        dumped — the reservoir is an implementation detail.
        """
        histograms = {}
        for name, histogram in sorted(self._histograms.items()):
            summary = {
                "count": histogram.count,
                "sum": histogram.sum,
                "min": histogram.min if histogram.count else None,
                "max": histogram.max if histogram.count else None,
            }
            if histogram.count:
                summary.update(histogram.percentiles())
            histograms[name] = summary
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": histograms,
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


class NullRegistry(MetricsRegistry):
    """The default registry: every handle is a shared no-op singleton.

    Uninstrumented runs therefore pay (almost) nothing: instrumented
    classes see ``enabled == False`` at construction time and skip metric
    work entirely on their hot paths.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(reservoir_size=1)

    def counter(self, name: str) -> Counter:
        """The shared no-op counter, whatever the name."""
        return _NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge, whatever the name."""
        return _NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        """The shared no-op histogram, whatever the name."""
        return _NULL_HISTOGRAM  # type: ignore[return-value]

    def timed(self, name: str) -> _TimedBlock:
        """A no-op context manager / identity decorator."""
        return _NULL_TIMED  # type: ignore[return-value]

    def snapshot(self) -> dict[str, Any]:
        """Always empty."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "NullRegistry()"


_NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide registry (the no-op :class:`NullRegistry` unless
    :func:`set_registry` / :func:`use_registry` installed a real one)."""
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the no-op default).

    Returns the previously installed registry so callers can restore it.
    Objects capture their metric handles at construction, so install the
    registry *before* building the sketches/trackers to observe.
    """
    global _registry
    previous = _registry
    _registry = _NULL_REGISTRY if registry is None else registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` as the global registry."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def metrics_enabled() -> bool:
    """True when a collecting (non-null) registry is installed."""
    return _registry.enabled


def timed(name: str) -> _TimedBlock:
    """Module-level convenience: ``get_registry().timed(name)``.

    Usable as a decorator (binds the *current* registry at decoration
    time) or a context manager::

        with timed("merge_seconds"):
            merged.merge(shard)
    """
    return _registry.timed(name)
