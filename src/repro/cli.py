"""Command-line interface.

Five subcommands cover the library's day-to-day uses on on-disk streams
(one item per line; ``--int-keys`` parses lines as integers):

* ``repro topk`` — the §3.2 one-pass tracker: the approximate top-k items.
* ``repro estimate`` — sketch a stream, print estimates for given items.
* ``repro maxchange`` — the §4.2 two-pass algorithm over two stream files.
* ``repro percent-change`` — the §5 open-problem heuristic over two files.
* ``repro experiment`` — run any named paper experiment (or ``run_all``)
  and print its report (same output the benchmarks persist under
  ``benchmarks/out/``).

Input files are consumed incrementally (never materialized in memory), so
multi-GB logs stream through in bounded space; ``topk`` and ``estimate``
accept ``--workers N`` to shard ingestion across processes, with a merge
that is exact by the §3.2 linearity.

``topk``, ``estimate``, and ``maxchange`` accept ``--metrics-out PATH``
to collect runtime metrics (``repro.observability``) — sketch updates,
position-cache hit rates, heap churn, per-shard merge timings — and dump
them as JSON or Prometheus exposition text on exit.

Examples::

    repro topk --input queries.txt --k 10
    repro topk --input queries.txt --k 10 --workers 4
    repro maxchange --before week1.txt --after week2.txt --k 5
    repro experiment table1
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.core.maxchange import MaxChangeFinder
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.observability import (
    MetricsRegistry,
    set_registry,
    write_json,
    write_prometheus,
)
from repro.parallel import (
    DEFAULT_CHUNK_SIZE,
    IngestSummary,
    parallel_sketch,
    parallel_topk,
)
from repro.streams.io import TextStreamReader

EXPERIMENTS = (
    "table1",
    "error_vs_b",
    "failure_vs_t",
    "approxtop_quality",
    "zipf_space_scaling",
    "sampling_space",
    "maxchange_experiment",
    "hierarchical_maxchange",
    "autoconfig",
    "windowed_accuracy",
    "relative_change_floor",
    "space_accounting",
    "ablation_estimator",
    "ablation_sign_hash",
    "ablation_heap_counts",
    "ablation_hash_family",
    "throughput",
    "parallel_scaling",
    "run_all",
)


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=5,
                        help="sketch rows t (default 5)")
    parser.add_argument("--width", type=int, default=512,
                        help="sketch counters per row b (default 512)")
    parser.add_argument("--seed", type=int, default=0,
                        help="hash seed (default 0)")
    parser.add_argument("--int-keys", action="store_true",
                        help="parse stream lines as integers")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shard the stream across this many worker processes "
             "(default 1 = serial); the merged sketch is exact by §3.2 "
             "linearity",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="items per shard chunk when --workers > 1 "
             f"(default {DEFAULT_CHUNK_SIZE})",
    )


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="collect runtime metrics (sketch updates, position-cache "
             "hits/misses, heap churn, per-shard merge timings) and write "
             "them to PATH on exit; without this flag the no-op registry "
             "keeps instrumentation overhead near zero",
    )
    parser.add_argument(
        "--metrics-format", choices=("json", "prometheus"), default=None,
        help="metrics file format (default: inferred from the --metrics-out "
             "extension, .prom/.txt = prometheus, else json)",
    )


def _run_with_metrics(
    args: argparse.Namespace, command: Callable[[argparse.Namespace], int]
) -> int:
    """Run ``command(args)``, exporting metrics when ``--metrics-out`` asks.

    The collecting registry is installed *before* the command builds its
    sketches/trackers (handles are captured at construction time) and
    restored afterwards, so library callers and tests never see a CLI
    registry leak.
    """
    if getattr(args, "metrics_out", None) is None:
        return command(args)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        code = command(args)
    finally:
        set_registry(previous)
    fmt = args.metrics_format
    if fmt is None:
        suffix = args.metrics_out.rsplit(".", 1)[-1].lower()
        fmt = "prometheus" if suffix in ("prom", "txt") else "json"
    if fmt == "prometheus":
        write_prometheus(registry, args.metrics_out)
    else:
        write_json(registry, args.metrics_out)
    print(f"metrics: wrote {fmt} to {args.metrics_out}")
    return code


def _load(path: str, int_keys: bool) -> TextStreamReader:
    """Open a stream file as a lazy, re-iterable reader.

    The file is never materialized in memory: single-pass commands consume
    it line by line, and the two-pass commands re-open it per pass.
    """
    return TextStreamReader(path, as_int=int_keys)


def _print_ingest_summary(summary: IngestSummary) -> None:
    print(
        f"ingest: {summary.n_workers} workers ({summary.executor}), "
        f"{summary.n_shards} shards of <= {summary.chunk_size} items, "
        f"{summary.items_per_second:,.0f} items/s, "
        f"merge {summary.merge_seconds:.3f}s"
    )


def _cmd_topk(args: argparse.Namespace) -> int:
    stream = _load(args.input, args.int_keys)
    if args.workers > 1:
        top, summary = parallel_topk(
            stream, args.k, args.depth, args.width, seed=args.seed,
            n_workers=args.workers, chunk_size=args.chunk_size,
        )
        total_items = summary.total_items
        counters = args.depth * args.width + len(top)
        stored = len(top)
    else:
        tracker = TopKTracker(args.k, depth=args.depth, width=args.width,
                              seed=args.seed)
        for item in stream:
            tracker.update(item)
        top = tracker.top()
        total_items = tracker.items_processed
        counters = tracker.counters_used()
        stored = tracker.items_stored()
        summary = None
    rows = [
        [rank, str(item), count]
        for rank, (item, count) in enumerate(top, start=1)
    ]
    print(format_table(
        ["rank", "item", "approx count"], rows,
        title=f"top-{args.k} of {args.input} ({total_items} items)",
    ))
    print(f"space: {counters} counters, {stored} stored items")
    if summary is not None:
        _print_ingest_summary(summary)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    stream = _load(args.input, args.int_keys)
    if args.workers > 1:
        sketch, summary = parallel_sketch(
            stream, args.depth, args.width, seed=args.seed,
            n_workers=args.workers, chunk_size=args.chunk_size,
        )
    else:
        sketch = CountSketch(args.depth, args.width, seed=args.seed)
        sketch.extend(stream)
        summary = None
    queries = [int(q) if args.int_keys else q for q in args.items]
    rows = [[str(q), sketch.estimate(q)] for q in queries]
    print(format_table(["item", "estimate"], rows,
                       title=f"estimates over {args.input}"))
    if summary is not None:
        _print_ingest_summary(summary)
    return 0


def _cmd_maxchange(args: argparse.Namespace) -> int:
    before = _load(args.before, args.int_keys)
    after = _load(args.after, args.int_keys)
    finder = MaxChangeFinder(args.l, depth=args.depth, width=args.width,
                             seed=args.seed)
    finder.first_pass(before, after)
    finder.second_pass(before, after)
    rows = [
        [str(r.item), r.count_before, r.count_after, r.change,
         r.estimated_change]
        for r in finder.report(args.k)
    ]
    print(format_table(
        ["item", "before", "after", "change", "sketch estimate"], rows,
        title=f"top-{args.k} changes {args.before} -> {args.after}",
    ))
    return 0


def _cmd_percent_change(args: argparse.Namespace) -> int:
    from repro.core.relative_change import RelativeChangeFinder

    before = _load(args.before, args.int_keys)
    after = _load(args.after, args.int_keys)
    finder = RelativeChangeFinder(
        args.l, floor=args.floor, depth=args.depth, width=args.width,
        seed=args.seed,
    )
    finder.first_pass(before, after)
    finder.second_pass(before, after)
    rows = [
        [str(r.item), r.count_before, r.count_after,
         f"{r.percent_change:+.1%}"]
        for r in finder.report(args.k, min_after=args.min_after)
    ]
    print(format_table(
        ["item", "before", "after", "percent change"], rows,
        title=(
            f"top-{args.k} percent changes {args.before} -> {args.after} "
            f"(floor={args.floor})"
        ),
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Count Sketch frequent-items toolkit "
                    "(Charikar, Chen & Farach-Colton reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topk = subparsers.add_parser(
        "topk", help="approximate top-k items of a stream file"
    )
    topk.add_argument("--input", required=True, help="stream file, one item per line")
    topk.add_argument("--k", type=int, default=10, help="items to report")
    _add_sketch_arguments(topk)
    _add_parallel_arguments(topk)
    _add_metrics_arguments(topk)
    topk.set_defaults(handler=_cmd_topk)

    estimate = subparsers.add_parser(
        "estimate", help="sketch a stream and estimate given items' counts"
    )
    estimate.add_argument("--input", required=True)
    estimate.add_argument("items", nargs="+", help="items to estimate")
    _add_sketch_arguments(estimate)
    _add_parallel_arguments(estimate)
    _add_metrics_arguments(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    maxchange = subparsers.add_parser(
        "maxchange", help="items with the largest count change (2 passes)"
    )
    maxchange.add_argument("--before", required=True, help="first stream file")
    maxchange.add_argument("--after", required=True, help="second stream file")
    maxchange.add_argument("--k", type=int, default=10)
    maxchange.add_argument("--l", type=int, default=40,
                           help="exact-count candidate set size")
    _add_sketch_arguments(maxchange)
    _add_metrics_arguments(maxchange)
    maxchange.set_defaults(handler=_cmd_maxchange)

    percent = subparsers.add_parser(
        "percent-change",
        help="items with the largest percent change (the §5 open problem)",
    )
    percent.add_argument("--before", required=True)
    percent.add_argument("--after", required=True)
    percent.add_argument("--k", type=int, default=10)
    percent.add_argument("--l", type=int, default=40)
    percent.add_argument("--floor", type=float, default=8.0,
                         help="smoothing floor balancing absolute vs "
                              "relative change")
    percent.add_argument("--min-after", type=int, default=0,
                         help="require this many occurrences in the "
                              "second stream")
    _add_sketch_arguments(percent)
    percent.set_defaults(handler=_cmd_percent_change)

    experiment = subparsers.add_parser(
        "experiment", help="run a paper experiment and print its report"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _run_with_metrics(args, args.handler)


if __name__ == "__main__":
    sys.exit(main())
