"""Command-line interface.

The subcommands cover the library's day-to-day uses on on-disk streams
(one item per line; ``--int-keys`` parses lines as integers):

* ``repro topk`` — the §3.2 one-pass tracker: the approximate top-k items.
* ``repro estimate`` — sketch a stream, print estimates for given items.
* ``repro maxchange`` — the §4.2 two-pass algorithm over two stream files.
* ``repro percent-change`` — the §5 open-problem heuristic over two files.
* ``repro experiment`` — run any named paper experiment (or ``run_all``)
  and print its report (same output the benchmarks persist under
  ``benchmarks/out/``).
* ``repro store`` — work with durable ``.rcs`` snapshots
  (``inspect`` / ``merge`` / ``diff``; see :mod:`repro.store`).
* ``repro serve`` — run the online sketch server (:mod:`repro.service`):
  live tables ingesting over TCP while answering estimate/top-k queries.
* ``repro query`` — client verbs against a running server
  (``create`` / ``ingest`` / ``estimate`` / ``topk`` / ``stats`` /
  ``metrics`` / ``checkpoint`` / ``shutdown`` / ``ping``); every verb
  accepts ``--cluster SPEC`` to aim at a sharded fleet instead.
* ``repro cluster`` — run a sharded fleet (:mod:`repro.cluster`):
  ``serve`` launches and supervises N shard servers, ``rebalance``
  re-shapes a stopped fleet's checkpoints to a new shard count by
  exact snapshot re-merge (§3.2 linearity).
* ``repro traffic`` — drive a seeded multi-tenant workload
  (:mod:`repro.traffic`) against a live server or cluster: Zipfian keys
  and tenants, open- or closed-loop arrivals, reporting saturation
  throughput, p50/p99/p999 latency, shed counts, per-tenant fairness,
  and a mid-load bit-exactness probe.
* ``repro cache`` — sketch-guided cache admission (:mod:`repro.cache`):
  ``simulate`` races W-TinyLFU against LRU/LFU baselines on seeded
  synthetic traces, ``stats`` inspects a saved admission-sketch
  snapshot and scores items against it.

Exit codes are uniform across every subcommand: 0 on success, 1 for
usage errors (bad flags or flag combinations), 2 for data errors
(unreadable streams, corrupt or mismatched snapshots, connection
failures).

Input files are consumed incrementally (never materialized in memory), so
multi-GB logs stream through in bounded space; ``topk`` and ``estimate``
accept ``--workers N`` to shard ingestion across processes, with a merge
that is exact by the §3.2 linearity.

``topk`` and ``estimate`` persist state: ``--save-state PATH`` snapshots
the summary on exit (``--checkpoint-every N`` also snapshots it every
``N`` items mid-stream), ``--resume PATH`` restores a snapshot and skips
the already-consumed stream prefix, and — with ``--workers > 1`` —
``--checkpoint-dir DIR`` persists every absorbed shard so a killed
parallel run resumes where it stopped.  ``repro estimate --sketch
snap.rcs key1 key2`` queries a saved snapshot with no stream input at
all.

``topk``, ``estimate``, and ``maxchange`` accept ``--metrics-out PATH``
to collect runtime metrics (``repro.observability``) — sketch updates,
position-cache hit rates, heap churn, per-shard merge timings — and dump
them as JSON or Prometheus exposition text on exit.

Examples::

    repro topk --input queries.txt --k 10
    repro topk --input queries.txt --k 10 --workers 4
    repro topk --input queries.txt --save-state day.rcs --checkpoint-every 100000
    repro estimate --sketch day.rcs alpha beta
    repro store diff day1.rcs day2.rcs --items alpha beta --k 5
    repro maxchange --before week1.txt --after week2.txt --k 5
    repro experiment table1
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from collections.abc import Callable, Hashable, Sequence
from typing import TYPE_CHECKING, NoReturn

if TYPE_CHECKING:
    from repro.cluster.coordinator import ClusterClient
    from repro.service.client import ServiceClient
    from repro.service.server import SketchServer
    from repro.service.tables import TableSpec

    _QueryClient = ServiceClient | ClusterClient

from repro.core.maxchange import MaxChangeFinder
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.experiments.report import format_table
from repro.observability import (
    MetricsRegistry,
    set_registry,
    write_json,
    write_prometheus,
)
from repro.parallel import (
    DEFAULT_CHUNK_SIZE,
    IngestSummary,
    parallel_sketch,
    parallel_topk,
)
from repro.store import (
    CheckpointManager,
    SketchArchive,
    StoreError,
    inspect as inspect_snapshot,
    load as load_snapshot,
    load_with_meta,
    save as save_snapshot,
)
from repro.streams.io import TextStreamReader

EXPERIMENTS = (
    "table1",
    "error_vs_b",
    "failure_vs_t",
    "approxtop_quality",
    "zipf_space_scaling",
    "sampling_space",
    "maxchange_experiment",
    "hierarchical_maxchange",
    "autoconfig",
    "windowed_accuracy",
    "relative_change_floor",
    "space_accounting",
    "ablation_estimator",
    "ablation_sign_hash",
    "ablation_heap_counts",
    "ablation_hash_family",
    "throughput",
    "parallel_scaling",
    "run_all",
)


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--depth", type=int, default=5,
                        help="sketch rows t (default 5)")
    parser.add_argument("--width", type=int, default=512,
                        help="sketch counters per row b (default 512)")
    parser.add_argument("--seed", type=int, default=0,
                        help="hash seed (default 0)")
    parser.add_argument("--int-keys", action="store_true",
                        help="parse stream lines as integers")


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shard the stream across this many worker processes "
             "(default 1 = serial); the merged sketch is exact by §3.2 "
             "linearity",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="items per shard chunk when --workers > 1 "
             f"(default {DEFAULT_CHUNK_SIZE})",
    )


def _add_state_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--save-state", metavar="PATH", default=None,
        help="snapshot the summary to PATH (.rcs) when the stream ends; "
             "atomic, checksummed, exact (see docs/persistence.md)",
    )
    parser.add_argument(
        "--checkpoint-every", metavar="N", type=int, default=None,
        help="with --save-state: also snapshot every N stream items, so "
             "a killed run can --resume from the last checkpoint",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="restore the summary from a snapshot and skip the stream "
             "prefix it already consumed (requires the same input "
             "stream); sketch dimension flags are ignored — the snapshot "
             "carries them",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="with --workers > 1: persist every absorbed shard under DIR "
             "and resume an interrupted run by re-invoking the same "
             "command",
    )


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="collect runtime metrics (sketch updates, position-cache "
             "hits/misses, heap churn, per-shard merge timings) and write "
             "them to PATH on exit; without this flag the no-op registry "
             "keeps instrumentation overhead near zero",
    )
    parser.add_argument(
        "--metrics-format", choices=("json", "prometheus"), default=None,
        help="metrics file format (default: inferred from the --metrics-out "
             "extension, .prom/.txt = prometheus, else json)",
    )


def _run_with_metrics(
    args: argparse.Namespace, command: Callable[[argparse.Namespace], int]
) -> int:
    """Run ``command(args)``, exporting metrics when ``--metrics-out`` asks.

    The collecting registry is installed *before* the command builds its
    sketches/trackers (handles are captured at construction time) and
    restored afterwards, so library callers and tests never see a CLI
    registry leak.
    """
    if getattr(args, "metrics_out", None) is None:
        return command(args)
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        code = command(args)
    finally:
        set_registry(previous)
    fmt = args.metrics_format
    if fmt is None:
        suffix = args.metrics_out.rsplit(".", 1)[-1].lower()
        fmt = "prometheus" if suffix in ("prom", "txt") else "json"
    if fmt == "prometheus":
        write_prometheus(registry, args.metrics_out)
    else:
        write_json(registry, args.metrics_out)
    print(f"metrics: wrote {fmt} to {args.metrics_out}")
    return code


def _load(path: str, int_keys: bool) -> TextStreamReader:
    """Open a stream file as a lazy, re-iterable reader.

    The file is never materialized in memory: single-pass commands consume
    it line by line, and the two-pass commands re-open it per pass.
    """
    return TextStreamReader(path, as_int=int_keys)


def _print_ingest_summary(summary: IngestSummary) -> None:
    print(
        f"ingest: {summary.n_workers} workers ({summary.executor}), "
        f"{summary.n_shards} shards of <= {summary.chunk_size} items, "
        f"{summary.items_per_second:,.0f} items/s, "
        f"merge {summary.merge_seconds:.3f}s"
    )


#: Exit-code convention, uniform across every subcommand.
EXIT_OK = 0
EXIT_USAGE = 1
EXIT_DATA = 2


class _Parser(argparse.ArgumentParser):
    """argparse exits 2 on usage errors; the repo convention reserves 2
    for data errors, so flag problems exit :data:`EXIT_USAGE` instead.
    Subparsers inherit this class automatically."""

    def error(self, message: str) -> NoReturn:
        self.print_usage(sys.stderr)
        self.exit(EXIT_USAGE, f"{self.prog}: error: {message}\n")


def _fail(message: str) -> int:
    """Report a data error (bad input, mismatched snapshots, I/O)."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_DATA


def _usage_fail(message: str) -> int:
    """Report a usage error (flag combinations argparse cannot check)."""
    print(f"error: {message}", file=sys.stderr)
    return EXIT_USAGE


def _check_state_flags(args: argparse.Namespace) -> str | None:
    """Validate the persistence flag combinations; returns an error or None."""
    if args.checkpoint_every is not None and args.save_state is None:
        return "--checkpoint-every requires --save-state (the checkpoint path)"
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        return "--checkpoint-every must be at least 1"
    if args.workers > 1:
        if args.save_state or args.resume or args.checkpoint_every is not None:
            return (
                "--save-state/--resume/--checkpoint-every apply to serial "
                "runs; with --workers > 1 use --checkpoint-dir"
            )
        return None
    if args.checkpoint_dir:
        return (
            "--checkpoint-dir applies to --workers > 1; serial runs "
            "checkpoint with --save-state --checkpoint-every"
        )
    return None


def _restore_items_consumed(meta: dict[str, object], path: str) -> int:
    consumed = meta.get("items_consumed", 0)
    if not isinstance(consumed, int) or consumed < 0:
        raise StoreError(
            f"{path} does not record a valid items_consumed count; it was "
            "not written by --save-state"
        )
    return consumed


def _ingest_with_state(
    summary: TopKTracker | CountSketch,
    args: argparse.Namespace,
    stream: TextStreamReader,
    consumed: int,
) -> None:
    """Feed the unconsumed stream tail into ``summary``, honoring
    ``--save-state`` / ``--checkpoint-every``."""
    source = (
        itertools.islice(iter(stream), consumed, None)
        if consumed else iter(stream)
    )
    if args.save_state and args.checkpoint_every is not None:
        manager = CheckpointManager(
            summary, args.save_state,
            every_items=args.checkpoint_every, items_consumed=consumed,
        )
        manager.extend(source)
        print(
            f"state: {manager.checkpoints_written} snapshot(s) -> "
            f"{args.save_state}"
        )
        return
    for item in source:
        summary.update(item)
        consumed += 1
    if args.save_state:
        save_snapshot(
            summary, args.save_state, meta={"items_consumed": consumed}
        )
        print(f"state: snapshot -> {args.save_state}")


def _cmd_topk(args: argparse.Namespace) -> int:
    problem = _check_state_flags(args)
    if problem is not None:
        return _usage_fail(problem)
    stream = _load(args.input, args.int_keys)
    if args.workers > 1:
        top, summary = parallel_topk(
            stream, args.k, args.depth, args.width, seed=args.seed,
            n_workers=args.workers, chunk_size=args.chunk_size,
            checkpoint_dir=args.checkpoint_dir,
        )
        total_items = summary.total_items
        counters = args.depth * args.width + len(top)
        stored = len(top)
    else:
        consumed = 0
        if args.resume:
            loaded, meta = load_with_meta(args.resume)
            if not isinstance(loaded, TopKTracker):
                return _fail(
                    f"{args.resume} holds a "
                    f"{type(loaded).__name__}, not the TopKTracker "
                    "snapshot topk --resume needs"
                )
            tracker = loaded
            consumed = _restore_items_consumed(meta, args.resume)
        else:
            tracker = TopKTracker(args.k, depth=args.depth,
                                  width=args.width, seed=args.seed)
        _ingest_with_state(tracker, args, stream, consumed)
        top = tracker.top()
        total_items = tracker.items_processed
        counters = tracker.counters_used()
        stored = tracker.items_stored()
        summary = None
    rows = [
        [rank, str(item), count]
        for rank, (item, count) in enumerate(top, start=1)
    ]
    print(format_table(
        ["rank", "item", "approx count"], rows,
        title=f"top-{args.k} of {args.input} ({total_items} items)",
    ))
    print(f"space: {counters} counters, {stored} stored items")
    if summary is not None:
        _print_ingest_summary(summary)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    queries = [int(q) if args.int_keys else q for q in args.items]
    if args.sketch is not None:
        # Query a saved snapshot directly: no stream input involved.
        if args.input or args.resume or args.save_state or args.workers > 1:
            return _usage_fail(
                "--sketch queries a saved snapshot; it cannot be combined "
                "with --input/--resume/--save-state/--workers"
            )
        summary_obj = load_snapshot(args.sketch)
        rows = [[str(q), summary_obj.estimate(q)] for q in queries]
        print(format_table(["item", "estimate"], rows,
                           title=f"estimates from snapshot {args.sketch}"))
        return 0
    if args.input is None:
        return _usage_fail("provide --input (a stream file) or --sketch (a "
                           "saved snapshot)")
    problem = _check_state_flags(args)
    if problem is not None:
        return _usage_fail(problem)
    stream = _load(args.input, args.int_keys)
    if args.workers > 1:
        sketch, summary = parallel_sketch(
            stream, args.depth, args.width, seed=args.seed,
            n_workers=args.workers, chunk_size=args.chunk_size,
            checkpoint_dir=args.checkpoint_dir,
        )
    else:
        consumed = 0
        if args.resume:
            loaded, meta = load_with_meta(args.resume)
            if not isinstance(loaded, CountSketch):
                return _fail(
                    f"{args.resume} holds a {type(loaded).__name__}, not "
                    "the CountSketch snapshot estimate --resume needs"
                )
            sketch = loaded
            consumed = _restore_items_consumed(meta, args.resume)
        else:
            sketch = CountSketch(args.depth, args.width, seed=args.seed)
        _ingest_with_state(sketch, args, stream, consumed)
        summary = None
    rows = [[str(q), sketch.estimate(q)] for q in queries]
    print(format_table(["item", "estimate"], rows,
                       title=f"estimates over {args.input}"))
    if summary is not None:
        _print_ingest_summary(summary)
    return 0


def _cmd_maxchange(args: argparse.Namespace) -> int:
    before = _load(args.before, args.int_keys)
    after = _load(args.after, args.int_keys)
    finder = MaxChangeFinder(args.l, depth=args.depth, width=args.width,
                             seed=args.seed)
    finder.first_pass(before, after)
    finder.second_pass(before, after)
    rows = [
        [str(r.item), r.count_before, r.count_after, r.change,
         r.estimated_change]
        for r in finder.report(args.k)
    ]
    print(format_table(
        ["item", "before", "after", "change", "sketch estimate"], rows,
        title=f"top-{args.k} changes {args.before} -> {args.after}",
    ))
    return 0


def _cmd_percent_change(args: argparse.Namespace) -> int:
    from repro.core.relative_change import RelativeChangeFinder

    before = _load(args.before, args.int_keys)
    after = _load(args.after, args.int_keys)
    finder = RelativeChangeFinder(
        args.l, floor=args.floor, depth=args.depth, width=args.width,
        seed=args.seed,
    )
    finder.first_pass(before, after)
    finder.second_pass(before, after)
    rows = [
        [str(r.item), r.count_before, r.count_after,
         f"{r.percent_change:+.1%}"]
        for r in finder.report(args.k, min_after=args.min_after)
    ]
    print(format_table(
        ["item", "before", "after", "percent change"], rows,
        title=(
            f"top-{args.k} percent changes {args.before} -> {args.after} "
            f"(floor={args.floor})"
        ),
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    for path in args.paths:
        info = inspect_snapshot(path)
        print(f"{path}:")
        print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    from repro.core.sparse import SparseCountSketch
    from repro.core.vectorized import VectorizedCountSketch

    if len(args.inputs) < 2:
        return _usage_fail("merge needs at least two input snapshots")
    mergeable = (CountSketch, SparseCountSketch, VectorizedCountSketch)
    merged = load_snapshot(args.inputs[0])
    if not isinstance(merged, mergeable):
        return _fail(
            f"{args.inputs[0]} holds a {type(merged).__name__}; merge "
            "supports plain sketches (dense, sparse, vectorized)"
        )
    for path in args.inputs[1:]:
        other = load_snapshot(path)
        if type(other) is not type(merged):
            return _fail(
                f"cannot merge {type(other).__name__} ({path}) into "
                f"{type(merged).__name__} ({args.inputs[0]})"
            )
        try:
            merged.merge(other)
        except ValueError as error:
            return _fail(f"{path}: {error}")
    written = save_snapshot(merged, args.out)
    print(
        f"merged {len(args.inputs)} snapshots -> {args.out} "
        f"({written} bytes, total_weight={merged.total_weight})"
    )
    return 0


def _diff_rows(
    before: CountSketch, after: CountSketch,
    items: Sequence[Hashable], k: int,
) -> list[list[object]]:
    difference = after - before
    scored = sorted(
        (
            (item, before.estimate(item), after.estimate(item),
             difference.estimate(item))
            for item in dict.fromkeys(items)
        ),
        key=lambda row: (-abs(row[3]), repr(row[0])),
    )
    return [
        [str(item), est_before, est_after, change]
        for item, est_before, est_after, change in scored[:k]
    ]


def _cmd_store_diff(args: argparse.Namespace) -> int:
    items = [int(q) if args.int_keys else q for q in args.items]
    if args.archive is not None:
        try:
            epoch_a, epoch_b = int(args.before), int(args.after)
        except ValueError:
            return _usage_fail(
                "with --archive, BEFORE and AFTER are epoch indices"
            )
        archive = SketchArchive(args.archive)
        entries = archive.diff(
            epoch_a, epoch_b, k=args.k, items=items or None
        )
        rows: list[list[object]] = [
            [str(e.item), e.estimate_before, e.estimate_after,
             e.estimated_change]
            for e in entries
        ]
        title = (
            f"top-{args.k} estimated changes: epoch {epoch_a} -> "
            f"{epoch_b} of {args.archive}"
        )
    else:
        if not items:
            return _usage_fail(
                "provide --items to score (snapshot diffs can only rank "
                "items somebody names; --archive mode has stored "
                "candidate lists)"
            )
        before = load_snapshot(args.before)
        after = load_snapshot(args.after)
        for path, sketch in ((args.before, before), (args.after, after)):
            if not isinstance(sketch, CountSketch):
                return _fail(
                    f"{path} holds a {type(sketch).__name__}; diff needs "
                    "two dense Count Sketch snapshots sharing one hash "
                    "family"
                )
        if not before.compatible_with(after):
            return _fail(
                "snapshots are not hash-compatible: differences are only "
                "meaningful between sketches built with the same "
                "(depth, width, seed)"
            )
        rows = _diff_rows(before, after, items, args.k)
        title = f"top-{args.k} estimated changes {args.before} -> {args.after}"
    print(format_table(
        ["item", "before est", "after est", "estimated change"], rows,
        title=title,
    ))
    return 0


def _parse_table_flag(value: str) -> TableSpec:
    """Parse ``NAME[:KIND[:key=val,...]]`` into a ``TableSpec``.

    Examples: ``queries``, ``queries:topk``,
    ``queries:topk:k=20,depth=6,width=1024,seed=7``.
    """
    from repro.service.tables import TableSpec

    parts = value.split(":")
    if len(parts) > 3:
        raise ValueError(
            f"malformed --table {value!r}; use NAME[:KIND[:key=val,...]]")
    payload: dict[str, object] = {"name": parts[0]}
    if len(parts) > 1 and parts[1]:
        payload["kind"] = parts[1]
    if len(parts) > 2 and parts[2]:
        for pair in parts[2].split(","):
            key, sep, raw = pair.partition("=")
            if not sep or not key or not raw:
                raise ValueError(
                    f"malformed table option {pair!r} in --table "
                    f"{value!r}; use key=value"
                )
            try:
                payload[key] = int(raw)
            except ValueError:
                raise ValueError(
                    f"table option {key!r} needs an integer value, "
                    f"got {raw!r}"
                ) from None
    try:
        return TableSpec.from_dict(payload)
    except ValueError as error:
        raise ValueError(f"--table {value!r}: {error}") from None


def _parse_weight_flag(value: str) -> tuple[str, int]:
    """Parse one ``--table-weight NAME=W`` flag."""
    name, sep, raw = value.partition("=")
    if not sep or not name or not raw:
        raise ValueError(
            f"malformed --table-weight {value!r}; use NAME=WEIGHT"
        )
    try:
        return name, int(raw)
    except ValueError:
        raise ValueError(
            f"--table-weight {value!r}: weight must be an integer, "
            f"got {raw!r}"
        ) from None


async def _serve_until_stopped(
    server: SketchServer, host: str, port: int
) -> None:
    import asyncio
    import signal

    bound_host, bound_port = await server.start(host, port)
    print(f"serving on {bound_host}:{bound_port}", flush=True)
    for table in server.tables.values():
        print(
            f"table {table.spec.name}: kind={table.spec.kind} "
            f"records_applied={table.records_applied}",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, server.request_stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await server.wait_stopped()
    print("serve: graceful stop complete", flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.observability import get_registry, metrics_enabled
    from repro.service.server import SketchServer

    try:
        specs = [_parse_table_flag(value) for value in args.table]
    except ValueError as error:
        return _usage_fail(str(error))
    if not specs:
        return _usage_fail(
            "provide at least one --table NAME[:KIND[:key=val,...]]")
    if (
        args.checkpoint_every is not None or
        args.checkpoint_every_seconds is not None
    ) and args.checkpoint_dir is None:
        return _usage_fail(
            "--checkpoint-every/--checkpoint-every-seconds require "
            "--checkpoint-dir (where should the snapshots go?)"
        )
    try:
        weights = tuple(
            _parse_weight_flag(value) for value in args.table_weight)
    except ValueError as error:
        return _usage_fail(str(error))
    limits = None
    if (
        args.max_connections is not None
        or args.ingest_rate is not None
        or args.ingest_burst is not None
        or args.query_rate is not None
        or args.query_burst is not None
        or args.fair_quantum is not None
        or weights
    ):
        from repro.service.limits import ServiceLimits

        try:
            limits = ServiceLimits(
                max_connections=args.max_connections,
                ingest_rate=args.ingest_rate,
                ingest_burst=args.ingest_burst,
                query_rate=args.query_rate,
                query_burst=args.query_burst,
                fair_quantum=args.fair_quantum,
                weights=weights,
            )
        except ValueError as error:
            return _usage_fail(str(error))
    registry = get_registry() if metrics_enabled() else None
    try:
        server = SketchServer(
            specs,
            queue_capacity=args.queue_capacity,
            max_coalesce=args.max_batch,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_items=args.checkpoint_every,
            checkpoint_every_seconds=args.checkpoint_every_seconds,
            registry=registry,
            limits=limits,
            estimate_cache=args.estimate_cache,
        )
    except ValueError as error:
        return _usage_fail(str(error))
    asyncio.run(_serve_until_stopped(server, args.host, args.port))
    return EXIT_OK


def _cmd_traffic(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.client import AsyncServiceClient, ServiceError
    from repro.traffic import TrafficReport, TrafficRunner, WorkloadSpec

    try:
        spec = WorkloadSpec(
            tenants=args.tenants,
            keys_per_tenant=args.keys_per_tenant,
            zipf_key=args.zipf_key,
            zipf_tenant=args.zipf_tenant,
            query_fraction=args.query_fraction,
            batch_size=args.batch_size,
            query_items=args.query_items,
            arrival=args.arrival,
            rate=args.rate,
            burst_factor=args.burst_factor,
            burst_period=args.burst_period,
            seed=args.seed,
            table_prefix=args.table_prefix,
            table_kind=args.table_kind,
            depth=args.depth,
            width=args.width,
        )
        runner = TrafficRunner(spec, clients=args.clients,
                               duration=args.duration,
                               max_inflight=args.max_inflight)
    except ValueError as error:
        return _usage_fail(str(error))

    if args.cluster:
        from repro.cluster.coordinator import ClusterCoordinator
        from repro.cluster.fleet import read_cluster_spec

        try:
            fleet = read_cluster_spec(args.cluster)
        except (OSError, ValueError) as error:
            return _fail(str(error))

        def connect() -> object:
            return ClusterCoordinator.connect(fleet.endpoints,
                                              wire=args.wire)
    else:

        def connect() -> object:
            return AsyncServiceClient.connect(args.host, args.port,
                                              wire=args.wire)

    async def drive() -> TrafficReport:
        return await runner.run(connect, setup=not args.no_setup,
                                probe=not args.no_probe,
                                verify=not args.no_verify)

    try:
        report = asyncio.run(drive())
    except (ServiceError, OSError) as error:
        return _fail(str(error))

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"traffic: {report.total_ops} ops in {report.duration:.2f}s "
            f"({report.throughput:.0f} ops/s), "
            f"{report.total_errors} refused/failed, "
            f"{report.skipped} skipped at the inflight cap"
        )
        for kind in sorted(report.latency):
            stats = report.latency[kind]
            print(
                f"  {kind}: n={stats['count']} "
                f"p50={stats['p50_ms']:.2f}ms "
                f"p99={stats['p99_ms']:.2f}ms "
                f"p999={stats['p999_ms']:.2f}ms"
            )
        for code in sorted(report.errors):
            print(f"  refused {code}: {report.errors[code]}")
        print(f"  tenant fairness (min/max): {report.fairness_ratio:.3f}")
        if report.probe is not None:
            verdict = ("bit-equal" if report.probe["bit_equal"]
                       else "MISMATCH")
            print(
                f"  probe: {report.probe['keys_exact']}/"
                f"{report.probe['keys_checked']} keys exact ({verdict})"
            )
        if report.verification is not None:
            verdict = ("clean" if report.verification["no_silent_drops"]
                       else "SILENT DROPS")
            print(f"  acknowledged-vs-applied: {verdict}")
    if report.probe is not None and not report.probe["bit_equal"]:
        return _fail("probe estimates diverged from the offline summary")
    if (
        report.verification is not None
        and not report.verification["no_silent_drops"]
    ):
        return _fail("acknowledged records were not all applied")
    return EXIT_OK


def _connect_client(args: argparse.Namespace) -> _QueryClient:
    if getattr(args, "cluster", None):
        from repro.cluster.coordinator import ClusterClient
        from repro.cluster.fleet import read_cluster_spec

        spec = read_cluster_spec(args.cluster)
        return ClusterClient(spec.endpoints, timeout=args.timeout,
                             wire=getattr(args, "wire", "auto"))
    from repro.service.client import ServiceClient

    return ServiceClient(args.host, args.port, timeout=args.timeout,
                         wire=getattr(args, "wire", "auto"))


def _query_target(args: argparse.Namespace) -> str:
    cluster = getattr(args, "cluster", None)
    if cluster:
        return f"cluster {cluster}"
    return f"{args.host}:{args.port}"


def _cmd_query(args: argparse.Namespace) -> int:
    import concurrent.futures

    from repro.service.client import ServiceError

    try:
        client = _connect_client(args)
    except (ServiceError, OSError) as error:
        # Connection refusals surface as one documented line, never a
        # raw ConnectionRefusedError traceback.
        return _fail(str(error))
    try:
        return int(args.query_handler(client, args))
    except ServiceError as error:
        return _fail(str(error))
    except (TimeoutError, concurrent.futures.TimeoutError):
        return _fail(
            f"request to {_query_target(args)} timed out after "
            f"{args.timeout:.1f}s"
        )
    finally:
        client.close()


def _query_ping(client: _QueryClient, args: argparse.Namespace) -> int:
    info = client.ping()
    print(json.dumps(info, indent=2, sort_keys=True))
    return EXIT_OK


def _query_create(client: _QueryClient, args: argparse.Namespace) -> int:
    try:
        spec = _parse_table_flag(args.table)
    except ValueError as error:
        return _usage_fail(str(error))
    try:
        created = client.create_table(spec)
    except ValueError as error:
        # e.g. a window table aimed at a cluster: not shardable.
        return _usage_fail(str(error))
    verb = "created" if created else "already exists (same spec)"
    print(f"table {spec.name!r}: {verb}")
    return EXIT_OK


def _query_ingest(client: _QueryClient, args: argparse.Namespace) -> int:
    if args.batch_size < 1:
        return _usage_fail("--batch-size must be at least 1")
    if args.skip < 0:
        return _usage_fail("--skip cannot be negative")
    stream = _load(args.input, args.int_keys)
    source = (
        itertools.islice(iter(stream), args.skip, None)
        if args.skip else iter(stream)
    )
    total = 0
    batch: list[tuple[Hashable, int]] = []
    # wait=True applies each batch before the next send: natural flow
    # control, so a well-behaved producer never sees `overloaded`.
    for item in source:
        batch.append((item, 1))
        if len(batch) >= args.batch_size:
            client.ingest(args.table, batch, wait=True)
            total += len(batch)
            batch = []
    if batch:
        client.ingest(args.table, batch, wait=True)
        total += len(batch)
    skipped = f" (skipped {args.skip})" if args.skip else ""
    print(f"ingested {total} records into {args.table!r}{skipped}")
    return EXIT_OK


def _query_estimate(client: _QueryClient, args: argparse.Namespace) -> int:
    queries = [int(q) if args.int_keys else q for q in args.items]
    estimates = client.estimate(args.table, queries)
    rows = [[str(item), value]
            for item, value in zip(queries, estimates, strict=True)]
    print(format_table(["item", "estimate"], rows,
                       title=f"live estimates from table {args.table!r}"))
    return EXIT_OK


def _query_topk(client: _QueryClient, args: argparse.Namespace) -> int:
    top = client.topk(args.table, args.k)
    rows = [
        [rank, str(item), count]
        for rank, (item, count) in enumerate(top, start=1)
    ]
    print(format_table(["rank", "item", "approx count"], rows,
                       title=f"live top-k of table {args.table!r}"))
    return EXIT_OK


def _query_stats(client: _QueryClient, args: argparse.Namespace) -> int:
    stats = client.stats(args.table)
    stats.pop("ok", None)
    stats.pop("id", None)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return EXIT_OK


def _query_metrics(client: _QueryClient, args: argparse.Namespace) -> int:
    scraped = client.metrics(args.format)
    if isinstance(scraped, list):
        # Cluster scrape: one body per shard, labelled so a reader (or a
        # Prometheus file collector) can tell the shards apart.
        body = "".join(
            f"# shard {index}\n{shard_body}"
            + ("" if shard_body.endswith("\n") else "\n")
            for index, shard_body in enumerate(scraped)
        )
    else:
        body = scraped
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(body, encoding="utf-8")
        print(f"metrics: wrote {args.format} to {args.out}")
    else:
        print(body, end="" if body.endswith("\n") else "\n")
    return EXIT_OK


def _query_checkpoint(client: _QueryClient, args: argparse.Namespace) -> int:
    written = client.checkpoint(args.table)
    print(f"checkpoint: {written} bytes written")
    return EXIT_OK


def _query_shutdown(client: _QueryClient, args: argparse.Namespace) -> int:
    client.shutdown()
    print("server is stopping")
    return EXIT_OK


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster.fleet import (
        fleet_status,
        launch_fleet,
        stop_fleet,
        write_cluster_spec,
    )

    try:
        specs = [_parse_table_flag(value) for value in args.table]
    except ValueError as error:
        return _usage_fail(str(error))
    if not specs:
        return _usage_fail(
            "provide at least one --table NAME[:KIND[:key=val,...]]")
    for spec in specs:
        if spec.kind == "window":
            return _usage_fail(
                f"--table {spec.name}: window tables cannot be sharded "
                "(jumping-window rotation counts local arrivals); serve "
                "them from a single `repro serve` process"
            )
    if args.shards < 1:
        return _usage_fail("--shards must be at least 1")
    if (
        args.checkpoint_every is not None or
        args.checkpoint_every_seconds is not None
    ) and args.checkpoint_dir is None:
        return _usage_fail(
            "--checkpoint-every/--checkpoint-every-seconds require "
            "--checkpoint-dir (where should the snapshots go?)"
        )
    serve_args = ["--queue-capacity", str(args.queue_capacity),
                  "--max-batch", str(args.max_batch)]
    if args.checkpoint_every is not None:
        serve_args += ["--checkpoint-every", str(args.checkpoint_every)]
    if args.checkpoint_every_seconds is not None:
        serve_args += ["--checkpoint-every-seconds",
                       str(args.checkpoint_every_seconds)]

    shards = launch_fleet(
        args.shards, specs,
        host=args.host,
        checkpoint_root=args.checkpoint_dir,
        serve_args=serve_args,
    )
    stop_requested = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop_requested.set()

    previous = [signal.signal(signal.SIGINT, _request_stop),
                signal.signal(signal.SIGTERM, _request_stop)]
    try:
        write_cluster_spec(args.spec_out, [(s.host, s.port) for s in shards],
                           specs)
        print(f"cluster spec written to {args.spec_out}", flush=True)
        for status in fleet_status(shards):
            print(
                f"shard {status['index']}: serving on "
                f"{status['host']}:{status['port']} (pid {status['pid']})",
                flush=True,
            )
        dead_shard: int | None = None
        while not stop_requested.is_set():
            for shard in shards:
                if shard.process.poll() is not None:
                    dead_shard = shard.index
                    break
            if dead_shard is not None:
                break
            stop_requested.wait(0.5)
        codes = stop_fleet(shards)
        if dead_shard is not None:
            return _fail(
                f"shard {dead_shard} exited unexpectedly with code "
                f"{codes[dead_shard]}; stopped the rest of the fleet "
                "(resume with the same --checkpoint-dir to recover)"
            )
        print(f"cluster: graceful stop complete, exit codes {codes}",
              flush=True)
        return EXIT_OK
    finally:
        signal.signal(signal.SIGINT, previous[0])
        signal.signal(signal.SIGTERM, previous[1])


def _cmd_cluster_rebalance(args: argparse.Namespace) -> int:
    from repro.cluster.fleet import rebalance_cluster

    if args.shards < 1:
        return _usage_fail("--shards must be at least 1")
    merged = rebalance_cluster(args.src, args.out, args.shards)
    for name in sorted(merged):
        print(
            f"table {name!r}: merged {merged[name]} shard snapshot(s) "
            "onto shard 0"
        )
    print(
        f"rebalanced {args.src} -> {args.out} ({args.shards} shards); "
        f"start the new fleet with `repro cluster serve --shards "
        f"{args.shards} --checkpoint-dir {args.out} ...`"
    )
    return EXIT_OK


def _cmd_cache_simulate(args: argparse.Namespace) -> int:
    from repro.cache import (
        CachePolicy,
        FrequencySketch,
        TinyLFUCache,
        make_policy,
        shifting_hotset_trace,
        simulate,
        zipf_trace,
    )

    policies = list(dict.fromkeys(args.policy)) or ["lru", "lfu", "tinylfu"]
    capacities = list(dict.fromkeys(args.capacity)) or [1000]
    if args.requests < 1:
        return _usage_fail("--requests must be at least 1")
    if args.keys < 1:
        return _usage_fail("--keys must be at least 1")
    if args.phases < 1:
        return _usage_fail("--phases must be at least 1")
    snapshot_flags = args.save_sketch or args.load_sketch
    if snapshot_flags and "tinylfu" not in policies:
        return _usage_fail(
            "--save-sketch/--load-sketch concern the TinyLFU admission "
            "sketch; include tinylfu in --policy"
        )
    if snapshot_flags and len(capacities) != 1:
        return _usage_fail(
            "--save-sketch/--load-sketch need exactly one --capacity "
            "(which run's sketch would the snapshot belong to?)"
        )
    if args.trace == "shifting":
        trace = shifting_hotset_trace(
            args.requests, args.keys, args.zipf, seed=args.seed,
            phases=args.phases,
        )
    else:
        trace = zipf_trace(args.requests, args.keys, args.zipf,
                           seed=args.seed)
    rows: list[list[object]] = []
    saved_tinylfu: TinyLFUCache | None = None
    for capacity in capacities:
        for name in policies:
            try:
                if name == "tinylfu" and args.load_sketch:
                    oracle = FrequencySketch.load(args.load_sketch)
                    policy: CachePolicy = TinyLFUCache(
                        capacity, frequency=oracle)
                else:
                    policy = make_policy(name, capacity, seed=args.seed)
            except (TypeError, ValueError) as error:
                return _fail(str(error))
            result = simulate(policy, trace)
            if isinstance(policy, TinyLFUCache):
                saved_tinylfu = policy
            rows.append([
                result.policy, result.capacity, result.requests,
                result.hits, f"{result.hit_ratio:.4f}",
            ])
    print(format_table(
        ["policy", "capacity", "requests", "hits", "hit ratio"], rows,
        title=(
            f"cache simulation: {args.trace} trace "
            f"(n={args.requests}, m={args.keys}, z={args.zipf}, "
            f"seed={args.seed})"
        ),
    ))
    if args.save_sketch and saved_tinylfu is not None:
        written = saved_tinylfu.frequency.save(args.save_sketch)
        print(
            f"admission sketch: snapshot -> {args.save_sketch} "
            f"({written} bytes)"
        )
    return EXIT_OK


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.cache import FrequencySketch

    try:
        oracle = FrequencySketch.load(args.sketch)
    except (TypeError, ValueError) as error:
        return _fail(str(error))
    sketch = oracle.sketch
    print(json.dumps(
        {
            "sample_size": oracle.sample_size,
            "samples": oracle.samples,
            "resets": oracle.resets,
            "doorkeeper_bits": oracle.doorkeeper.num_bits,
            "doorkeeper_probes": oracle.doorkeeper.probes,
            "sketch_depth": sketch.depth,
            "sketch_width": sketch.width,
            "sketch_total_weight": sketch.total_weight,
        },
        indent=2, sort_keys=True,
    ))
    if args.items:
        queries = [int(q) if args.int_keys else q for q in args.items]
        rows = [[str(q), oracle.estimate(q)] for q in queries]
        print(format_table(
            ["item", "admission estimate"], rows,
            title=f"decayed frequencies from {args.sketch}",
        ))
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import main as lint_main

    argv: list[str] = []
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "human":
        argv += ["--format", args.format]
    if args.select is not None:
        argv += ["--select", args.select]
    if args.ignore is not None:
        argv += ["--ignore", args.ignore]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.include_fixtures:
        argv.append("--include-fixtures")
    argv += list(args.paths)
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = _Parser(
        prog="repro",
        description="Count Sketch frequent-items toolkit "
                    "(Charikar, Chen & Farach-Colton reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topk = subparsers.add_parser(
        "topk", help="approximate top-k items of a stream file"
    )
    topk.add_argument("--input", required=True, help="stream file, one item per line")
    topk.add_argument("--k", type=int, default=10, help="items to report")
    _add_sketch_arguments(topk)
    _add_parallel_arguments(topk)
    _add_state_arguments(topk)
    _add_metrics_arguments(topk)
    topk.set_defaults(handler=_cmd_topk)

    estimate = subparsers.add_parser(
        "estimate", help="sketch a stream and estimate given items' counts"
    )
    estimate.add_argument("--input", default=None,
                          help="stream file, one item per line (omit when "
                               "querying a snapshot with --sketch)")
    estimate.add_argument("--sketch", metavar="PATH", default=None,
                          help="estimate from a saved .rcs snapshot "
                               "instead of ingesting a stream")
    estimate.add_argument("items", nargs="+", help="items to estimate")
    _add_sketch_arguments(estimate)
    _add_parallel_arguments(estimate)
    _add_state_arguments(estimate)
    _add_metrics_arguments(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    maxchange = subparsers.add_parser(
        "maxchange", help="items with the largest count change (2 passes)"
    )
    maxchange.add_argument("--before", required=True, help="first stream file")
    maxchange.add_argument("--after", required=True, help="second stream file")
    maxchange.add_argument("--k", type=int, default=10)
    maxchange.add_argument("--l", type=int, default=40,
                           help="exact-count candidate set size")
    _add_sketch_arguments(maxchange)
    _add_metrics_arguments(maxchange)
    maxchange.set_defaults(handler=_cmd_maxchange)

    percent = subparsers.add_parser(
        "percent-change",
        help="items with the largest percent change (the §5 open problem)",
    )
    percent.add_argument("--before", required=True)
    percent.add_argument("--after", required=True)
    percent.add_argument("--k", type=int, default=10)
    percent.add_argument("--l", type=int, default=40)
    percent.add_argument("--floor", type=float, default=8.0,
                         help="smoothing floor balancing absolute vs "
                              "relative change")
    percent.add_argument("--min-after", type=int, default=0,
                         help="require this many occurrences in the "
                              "second stream")
    _add_sketch_arguments(percent)
    percent.set_defaults(handler=_cmd_percent_change)

    experiment = subparsers.add_parser(
        "experiment", help="run a paper experiment and print its report"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.set_defaults(handler=_cmd_experiment)

    store = subparsers.add_parser(
        "store", help="inspect, merge, and diff durable .rcs snapshots"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_inspect = store_sub.add_parser(
        "inspect", help="describe snapshot files without rebuilding them"
    )
    store_inspect.add_argument("paths", nargs="+",
                               help="snapshot files (.rcs)")
    store_inspect.set_defaults(handler=_cmd_store_inspect)

    store_merge = store_sub.add_parser(
        "merge",
        help="merge hash-compatible sketch snapshots (exact by §3.2 "
             "linearity)",
    )
    store_merge.add_argument("--out", required=True,
                             help="destination snapshot path")
    store_merge.add_argument("inputs", nargs="+",
                             help="two or more snapshots to merge")
    store_merge.set_defaults(handler=_cmd_store_merge)

    store_diff = store_sub.add_parser(
        "diff",
        help="estimated per-item change between two snapshots (or two "
             "archive epochs with --archive)",
    )
    store_diff.add_argument("before",
                            help="snapshot path (or epoch index with "
                                 "--archive)")
    store_diff.add_argument("after",
                            help="snapshot path (or epoch index with "
                                 "--archive)")
    store_diff.add_argument("--archive", metavar="DIR", default=None,
                            help="treat BEFORE/AFTER as epoch indices of "
                                 "this sketch archive")
    store_diff.add_argument("--items", nargs="*", default=[],
                            help="candidate items to score (default with "
                                 "--archive: the epochs' stored "
                                 "candidates)")
    store_diff.add_argument("--k", type=int, default=10,
                            help="changes to report (default 10)")
    store_diff.add_argument("--int-keys", action="store_true",
                            help="parse --items as integers")
    store_diff.set_defaults(handler=_cmd_store_diff)

    serve = subparsers.add_parser(
        "serve",
        help="run the online sketch server (repro.service): live tables "
             "ingesting over TCP while answering estimate/top-k queries",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9431,
                       help="bind port; 0 picks a free port and prints it "
                            "(default 9431)")
    serve.add_argument(
        "--table", action="append", default=[],
        metavar="NAME[:KIND[:key=val,...]]",
        help="table to serve (repeatable); KIND is sketch, vectorized, "
             "topk, or window; options: depth, width, seed, k, window, "
             "buckets — e.g. queries:topk:k=20,depth=6,width=1024",
    )
    serve.add_argument("--queue-capacity", type=int, default=256,
                       help="pending ingest batches per table before "
                            "producers get an explicit `overloaded` "
                            "response (default 256)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="ingest batches coalesced per apply call "
                            "(default 64)")
    serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="persist every table under DIR and resume "
                            "bit-for-bit on restart")
    serve.add_argument("--checkpoint-every", metavar="N", type=int,
                       default=None,
                       help="with --checkpoint-dir: snapshot a table "
                            "after N applied records")
    serve.add_argument("--checkpoint-every-seconds", metavar="T",
                       type=float, default=None,
                       help="with --checkpoint-dir: snapshot a table "
                            "after T seconds (default 30 when no trigger "
                            "is given)")
    serve.add_argument("--max-connections", type=int, default=None,
                       metavar="N",
                       help="open-connection cap; excess connections get "
                            "one `overloaded` frame and are closed "
                            "(default: unlimited)")
    serve.add_argument("--ingest-rate", type=float, default=None,
                       metavar="R",
                       help="per-table ingest quota in records/second; "
                            "refusals answer `quota_exceeded` "
                            "(default: unlimited)")
    serve.add_argument("--ingest-burst", type=int, default=None,
                       metavar="N",
                       help="ingest token-bucket capacity in records "
                            "(default: one second of --ingest-rate)")
    serve.add_argument("--query-rate", type=float, default=None,
                       metavar="R",
                       help="per-table query quota in queries/second "
                            "(default: unlimited)")
    serve.add_argument("--query-burst", type=int, default=None,
                       metavar="N",
                       help="query token-bucket capacity "
                            "(default: one second of --query-rate)")
    serve.add_argument("--fair-quantum", type=int, default=None,
                       metavar="N",
                       help="base records per weighted-fair applier turn; "
                            "enables round-robin draining across tables "
                            "(default: off)")
    serve.add_argument("--table-weight", action="append", default=[],
                       metavar="NAME=W",
                       help="fairness weight for a table (repeatable; "
                            "unlisted tables weigh 1; needs "
                            "--fair-quantum)")
    serve.add_argument("--estimate-cache", type=int, default=None,
                       metavar="CAPACITY",
                       help="cache up to CAPACITY estimate answers "
                            "(W-TinyLFU admission), invalidated on any "
                            "ingest to the table (default: off)")
    _add_metrics_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    query = subparsers.add_parser(
        "query", help="talk to a running `repro serve` instance"
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default="127.0.0.1",
                            help="server address (default 127.0.0.1)")
    connection.add_argument("--port", type=int, default=9431,
                            help="server port (default 9431)")
    connection.add_argument("--timeout", type=float, default=30.0,
                            help="per-request timeout in seconds "
                                 "(default 30)")
    connection.add_argument("--wire", choices=("auto", "json", "binary"),
                            default="auto",
                            help="ingest wire: 'auto' negotiates binary "
                                 "frames when the server supports them, "
                                 "'json' forces the canonical JSON "
                                 "protocol, 'binary' refuses to fall "
                                 "back (default auto)")
    connection.add_argument("--cluster", metavar="SPEC", default=None,
                            help="query a sharded fleet instead of one "
                                 "server: path to the cluster spec JSON "
                                 "written by `repro cluster serve` "
                                 "(overrides --host/--port)")

    query_ping = query_sub.add_parser(
        "ping", parents=[connection],
        help="server liveness and protocol version")
    query_ping.set_defaults(handler=_cmd_query, query_handler=_query_ping)

    query_create = query_sub.add_parser(
        "create", parents=[connection],
        help="create a table on the running server")
    query_create.add_argument("--table", required=True,
                              metavar="NAME[:KIND[:key=val,...]]",
                              help="table spec (same syntax as serve "
                                   "--table)")
    query_create.set_defaults(handler=_cmd_query,
                              query_handler=_query_create)

    query_ingest = query_sub.add_parser(
        "ingest", parents=[connection],
        help="stream a file into a live table (batched, flow-controlled)")
    query_ingest.add_argument("--table", required=True)
    query_ingest.add_argument("--input", required=True,
                              help="stream file, one item per line")
    query_ingest.add_argument("--int-keys", action="store_true",
                              help="parse stream lines as integers")
    query_ingest.add_argument("--batch-size", type=int, default=1000,
                              help="records per ingest request "
                                   "(default 1000)")
    query_ingest.add_argument("--skip", type=int, default=0,
                              metavar="N",
                              help="skip the first N records (resume a "
                                   "producer: use records_applied from "
                                   "`repro query stats`)")
    query_ingest.set_defaults(handler=_cmd_query,
                              query_handler=_query_ingest)

    query_estimate = query_sub.add_parser(
        "estimate", parents=[connection],
        help="frequency estimates from a live table")
    query_estimate.add_argument("--table", required=True)
    query_estimate.add_argument("items", nargs="+",
                                help="items to estimate")
    query_estimate.add_argument("--int-keys", action="store_true",
                                help="parse items as integers")
    query_estimate.set_defaults(handler=_cmd_query,
                                query_handler=_query_estimate)

    query_topk = query_sub.add_parser(
        "topk", parents=[connection],
        help="current top-k of a live topk table")
    query_topk.add_argument("--table", required=True)
    query_topk.add_argument("--k", type=int, default=None,
                            help="items to report (default: the table's "
                                 "k)")
    query_topk.set_defaults(handler=_cmd_query, query_handler=_query_topk)

    query_stats = query_sub.add_parser(
        "stats", parents=[connection],
        help="per-table (or server-wide) counters and queue state")
    query_stats.add_argument("--table", default=None)
    query_stats.set_defaults(handler=_cmd_query,
                             query_handler=_query_stats)

    query_metrics = query_sub.add_parser(
        "metrics", parents=[connection],
        help="scrape the server's metrics export")
    query_metrics.add_argument("--format",
                               choices=("prometheus", "json"),
                               default="prometheus")
    query_metrics.add_argument("--out", metavar="PATH", default=None,
                               help="write to PATH instead of stdout")
    query_metrics.set_defaults(handler=_cmd_query,
                               query_handler=_query_metrics)

    query_checkpoint = query_sub.add_parser(
        "checkpoint", parents=[connection],
        help="force a durability snapshot now")
    query_checkpoint.add_argument("--table", default=None)
    query_checkpoint.set_defaults(handler=_cmd_query,
                                  query_handler=_query_checkpoint)

    query_shutdown = query_sub.add_parser(
        "shutdown", parents=[connection],
        help="stop the server gracefully (drain, snapshot, exit)")
    query_shutdown.set_defaults(handler=_cmd_query,
                                query_handler=_query_shutdown)

    cluster = subparsers.add_parser(
        "cluster",
        help="run or re-shape a sharded fleet of sketch servers "
             "(repro.cluster): answers stay bit-equal to one offline "
             "sketch by §3.2 linearity",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)

    cluster_serve = cluster_sub.add_parser(
        "serve",
        help="launch N shard servers on free ports, write the cluster "
             "spec, and supervise until SIGTERM",
    )
    cluster_serve.add_argument("--shards", type=int, default=2,
                               help="fleet size (default 2)")
    cluster_serve.add_argument("--host", default="127.0.0.1",
                               help="bind address for every shard "
                                    "(default 127.0.0.1)")
    cluster_serve.add_argument(
        "--table", action="append", default=[],
        metavar="NAME[:KIND[:key=val,...]]",
        help="table every shard serves (repeatable; same syntax as "
             "serve --table; window tables cannot be sharded)",
    )
    cluster_serve.add_argument(
        "--spec-out", metavar="PATH", default="cluster.json",
        help="where to write the cluster spec JSON that `repro query "
             "--cluster` reads (default ./cluster.json)",
    )
    cluster_serve.add_argument(
        "--checkpoint-dir", metavar="ROOT", default=None,
        help="persist the fleet under ROOT (manifest pins the shard "
             "count and table specs; shard i resumes from "
             "ROOT/shard-00i)",
    )
    cluster_serve.add_argument("--checkpoint-every", metavar="N",
                               type=int, default=None,
                               help="with --checkpoint-dir: snapshot a "
                                    "table after N applied records")
    cluster_serve.add_argument("--checkpoint-every-seconds", metavar="T",
                               type=float, default=None,
                               help="with --checkpoint-dir: snapshot a "
                                    "table after T seconds")
    cluster_serve.add_argument("--queue-capacity", type=int, default=256,
                               help="per-shard pending ingest batches "
                                    "(default 256)")
    cluster_serve.add_argument("--max-batch", type=int, default=64,
                               help="per-shard ingest coalescing limit "
                                    "(default 64)")
    cluster_serve.set_defaults(handler=_cmd_cluster_serve)

    cluster_rebalance = cluster_sub.add_parser(
        "rebalance",
        help="re-shape a cluster checkpoint to a new shard count by "
             "exact snapshot re-merge (offline; fleet must be stopped)",
    )
    cluster_rebalance.add_argument("--src", required=True, metavar="ROOT",
                                   help="existing cluster checkpoint "
                                        "root")
    cluster_rebalance.add_argument("--out", required=True, metavar="ROOT",
                                   help="fresh destination checkpoint "
                                        "root")
    cluster_rebalance.add_argument("--shards", type=int, required=True,
                                   help="the new fleet size")
    cluster_rebalance.set_defaults(handler=_cmd_cluster_rebalance)

    traffic = subparsers.add_parser(
        "traffic",
        help="drive a seeded multi-tenant workload against a live "
             "server or cluster (repro.traffic) and report saturation "
             "throughput, tail latency, shed counts, and fairness",
    )
    traffic.add_argument("--host", default="127.0.0.1",
                         help="server address (default 127.0.0.1)")
    traffic.add_argument("--port", type=int, default=9431,
                         help="server port (default 9431)")
    traffic.add_argument("--cluster", metavar="SPEC", default=None,
                         help="drive a sharded fleet instead of one "
                              "server: path to the cluster spec JSON "
                              "(overrides --host/--port)")
    traffic.add_argument("--wire", choices=("auto", "json", "binary"),
                         default="auto",
                         help="ingest wire preference (default auto)")
    traffic.add_argument("--clients", type=int, default=4,
                         help="concurrent client connections (default 4)")
    traffic.add_argument("--duration", type=float, default=5.0,
                         help="seconds of load (default 5)")
    traffic.add_argument("--max-inflight", type=int, default=64,
                         help="open-loop ops outstanding per client "
                              "before arrivals are counted as skipped "
                              "(default 64)")
    traffic.add_argument("--tenants", type=int, default=4,
                         help="tenant tables (default 4)")
    traffic.add_argument("--keys-per-tenant", type=int, default=512,
                         help="distinct keys per tenant (default 512)")
    traffic.add_argument("--zipf-key", type=float, default=1.1,
                         help="Zipf skew of key popularity within a "
                              "tenant (default 1.1)")
    traffic.add_argument("--zipf-tenant", type=float, default=0.0,
                         help="Zipf skew across tenants; 0 is uniform, "
                              "larger concentrates load on tenant 0 "
                              "(default 0)")
    traffic.add_argument("--query-fraction", type=float, default=0.2,
                         help="fraction of ops that are estimate "
                              "queries (default 0.2)")
    traffic.add_argument("--batch-size", type=int, default=32,
                         help="records per ingest op (default 32)")
    traffic.add_argument("--query-items", type=int, default=8,
                         help="items per estimate op (default 8)")
    traffic.add_argument("--arrival",
                         choices=("closed", "poisson", "burst"),
                         default="closed",
                         help="arrival process (default closed-loop)")
    traffic.add_argument("--rate", type=float, default=0.0,
                         help="per-client ops/second for the open-loop "
                              "arrivals (required for poisson/burst)")
    traffic.add_argument("--burst-factor", type=float, default=4.0,
                         help="spike multiplier for --arrival burst "
                              "(default 4)")
    traffic.add_argument("--burst-period", type=float, default=1.0,
                         help="seconds per spike/quiet cycle for "
                              "--arrival burst (default 1)")
    traffic.add_argument("--seed", type=int, default=0,
                         help="workload seed (default 0)")
    traffic.add_argument("--table-prefix", default="tenant",
                         help="tenant table name prefix (default "
                              "'tenant')")
    traffic.add_argument("--table-kind",
                         choices=("sketch", "vectorized", "topk",
                                  "window"),
                         default="sketch",
                         help="summary kind for the tenant tables "
                              "(default sketch)")
    traffic.add_argument("--depth", type=int, default=5,
                         help="sketch depth for the tenant tables "
                              "(default 5)")
    traffic.add_argument("--width", type=int, default=256,
                         help="sketch width for the tenant tables "
                              "(default 256)")
    traffic.add_argument("--no-setup", action="store_true",
                         help="assume the tenant tables already exist")
    traffic.add_argument("--no-probe", action="store_true",
                         help="skip the mid-load exactness probe")
    traffic.add_argument("--no-verify", action="store_true",
                         help="skip the acknowledged-vs-applied check")
    traffic.add_argument("--json", action="store_true",
                         help="print the full report as JSON")
    traffic.set_defaults(handler=_cmd_traffic)

    cache = subparsers.add_parser(
        "cache",
        help="sketch-guided cache admission (repro.cache): race W-TinyLFU "
             "against LRU/LFU baselines on seeded synthetic traces",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_simulate = cache_sub.add_parser(
        "simulate",
        help="replay a seeded trace against one or more cache policies "
             "and report hit ratios",
    )
    cache_simulate.add_argument(
        "--policy", action="append", default=[],
        choices=("lru", "lfu", "tinylfu"),
        help="policy to simulate (repeatable; default: all three)",
    )
    cache_simulate.add_argument(
        "--capacity", action="append", type=int, default=[],
        metavar="N",
        help="cache capacity in keys (repeatable; default 1000)",
    )
    cache_simulate.add_argument(
        "--trace", choices=("zipf", "shifting"), default="zipf",
        help="trace family: i.i.d. Zipf draws, or Zipf with the hot set "
             "re-permuted every phase (default zipf)",
    )
    cache_simulate.add_argument("--requests", type=int, default=100_000,
                                help="trace length (default 100000)")
    cache_simulate.add_argument("--keys", type=int, default=50_000,
                                help="distinct keys m (default 50000)")
    cache_simulate.add_argument("--zipf", type=float, default=1.1,
                                help="Zipf parameter z (default 1.1)")
    cache_simulate.add_argument("--phases", type=int, default=5,
                                help="hot-set rotations for --trace "
                                     "shifting (default 5)")
    cache_simulate.add_argument("--seed", type=int, default=0,
                                help="trace and policy seed (default 0)")
    cache_simulate.add_argument(
        "--save-sketch", metavar="PATH", default=None,
        help="snapshot the TinyLFU admission sketch to PATH (.rcs) after "
             "the run (requires tinylfu and exactly one --capacity)",
    )
    cache_simulate.add_argument(
        "--load-sketch", metavar="PATH", default=None,
        help="warm-start TinyLFU from a saved admission sketch instead "
             "of an empty one",
    )
    cache_simulate.set_defaults(handler=_cmd_cache_simulate)

    cache_stats = cache_sub.add_parser(
        "stats",
        help="inspect a saved admission-sketch snapshot; optionally "
             "score items against it",
    )
    cache_stats.add_argument("--sketch", required=True, metavar="PATH",
                             help="admission-sketch snapshot (.rcs) "
                                  "written by simulate --save-sketch")
    cache_stats.add_argument("items", nargs="*",
                             help="items to score (optional)")
    cache_stats.add_argument("--int-keys", action="store_true",
                             help="parse items as integers")
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo's AST + dataflow rule suite (RS001-RS012); "
             "exits 0 clean, 1 findings, 2 on a syntax error or bad "
             "--select/--ignore/--baseline argument",
    )
    lint.add_argument("paths", nargs="*", default=[],
                      help="files or directories to lint "
                           "(default: src tests)")
    lint.add_argument("--format", choices=("human", "json"),
                      default="human",
                      help="output format (default: human)")
    lint.add_argument("--select", metavar="RULES", default=None,
                      help="only report these rules; comma-separated "
                           "codes and ranges (e.g. RS009-RS012)")
    lint.add_argument("--ignore", metavar="RULES", default=None,
                      help="drop these rules; same syntax as --select")
    lint.add_argument("--baseline", metavar="FILE", default=None,
                      help="allowlist of known findings — the "
                           "--format json output of a previous run")
    lint.add_argument("--include-fixtures", action="store_true",
                      help="also lint files under fixtures/ directories")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_with_metrics(args, args.handler)
    except (StoreError, OSError) as error:
        return _fail(str(error))


if __name__ == "__main__":
    sys.exit(main())
