"""The cluster coordinator: scatter-gather over sharded sketch servers.

:class:`ClusterCoordinator` owns one :class:`~repro.service.client.
AsyncServiceClient` per shard.  Ingest is routed by
:func:`~repro.cluster.routing.jump_hash_array` over the same
``encode_key`` u64 images the sketches hash (one encoding pass covers
routing *and* sketching); queries scatter to every shard and gather
exact answers:

* ``estimate`` — each shard returns its per-row signed counter readouts
  (the new ``estimate_rows`` op).  By §3.2 linearity those integers sum,
  row by row, to the readouts of the merged sketch, so the coordinator
  adds them and applies the summary kind's own median — **bit-equal** to
  querying one offline sketch fed every record.  Integer sums commute
  and never round, so neither the partition nor the gather order can
  perturb the answer.
* ``topk`` — shard-local candidate lists are unioned and every candidate
  is re-scored globally through the same summed readouts (the
  union-then-rescore step of :func:`repro.parallel.parallel_topk`),
  ranked by ``(-estimate, repr(item))``.
* ``maxchange`` — the §3.2 *difference* of two tables, evaluated as
  row-readout differences and ranked by ``(-|change|, repr(item))``,
  mirroring :meth:`repro.store.archive.SketchArchive.diff`.

``window`` tables are not routable: jumping-window rotation depends on
each shard's local arrival count, which is not linear across shards.
The coordinator refuses them at ``create_table`` time.

:class:`ClusterClient` is the synchronous facade (private event loop on
a daemon thread), mirroring :class:`~repro.service.client.ServiceClient`
method-for-method so the CLI query path works against either.
"""

from __future__ import annotations

import asyncio
import statistics
import threading
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.cluster.routing import partition_keys
from repro.hashing.vectorized import encode_keys
from repro.observability.registry import MetricsRegistry, get_registry
from repro.service.client import AsyncServiceClient
from repro.service.tables import TableSpec
from repro.store.archive import ArchiveDiffEntry

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable, Sequence

    from repro.service.server import SketchServer

__all__ = ["ClusterClient", "ClusterCoordinator"]


class _ClusterMetrics:
    """Coordinator metric handles, captured once at construction."""

    __slots__ = (
        "ingest_batches",
        "ingest_records",
        "queries",
        "scatter_seconds",
        "shards",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.ingest_records = registry.counter(
            "cluster_ingest_records_total")
        self.ingest_batches = registry.counter(
            "cluster_ingest_batches_total")
        self.queries = registry.counter("cluster_queries_total")
        self.scatter_seconds = registry.histogram("cluster_scatter_seconds")
        self.shards = registry.gauge("cluster_shards")


def _median_rows(kind: str, rows: Sequence[Sequence[int]]) -> list[float]:
    """Finalize summed row readouts with the *kind's own* median.

    Each entry of ``rows`` is one item's depth-length list of summed
    integer readouts.  The scalar kinds (``sketch``, and ``topk`` whose
    inner sketch is scalar) take ``statistics.median`` over per-row
    float casts — exactly :meth:`CountSketch.estimate`'s arithmetic,
    since ``float(a·s) == float(a)·s`` for ``s = ±1``.  ``vectorized``
    goes through the same float64 array and ``np.median`` reduction as
    :meth:`VectorizedCountSketch.estimate_batch`.
    """
    if not rows:
        return []
    if kind == "vectorized":
        stacked = np.array(rows, dtype=np.float64).T
        return [float(value) for value in np.median(stacked, axis=0)]
    return [
        statistics.median([float(value) for value in item_rows])
        for item_rows in rows
    ]


def _sum_rows(
    per_shard: Sequence[list[list[int]]],
) -> list[list[int]]:
    """Elementwise integer sum of per-shard ``estimate_rows`` payloads."""
    if not per_shard:
        return []
    summed = [list(item_rows) for item_rows in per_shard[0]]
    for shard_rows in per_shard[1:]:
        for item_index, item_rows in enumerate(shard_rows):
            target = summed[item_index]
            for row_index, value in enumerate(item_rows):
                target[row_index] += value
    return summed


class ClusterCoordinator:
    """Scatter-gather front end over N shard servers.

    Args:
        clients: one connected :class:`AsyncServiceClient` per shard,
            in shard-index order (the order IS the routing table — a
            record with key image ``key`` goes to
            ``clients[jump_hash(key, len(clients))]``).
    """

    def __init__(self, clients: Sequence[AsyncServiceClient]) -> None:
        if not clients:
            raise ValueError("a cluster needs at least one shard client")
        self._clients = list(clients)
        self._table_specs: dict[str, dict[str, Any]] = {}
        registry = get_registry()
        self._metrics = (
            _ClusterMetrics(registry) if registry.enabled else None
        )
        if self._metrics is not None:
            self._metrics.shards.set(len(self._clients))

    @classmethod
    async def connect(
        cls,
        endpoints: Sequence[tuple[str, int]],
        *,
        wire: str = "auto",
    ) -> ClusterCoordinator:
        """Open one TCP connection per shard endpoint, in order."""
        clients = await asyncio.gather(*[
            AsyncServiceClient.connect(host, port, wire=wire)
            for host, port in endpoints
        ])
        return cls(list(clients))

    @classmethod
    def in_process(
        cls, servers: Sequence[SketchServer], *, wire: str = "auto"
    ) -> ClusterCoordinator:
        """Attach to in-process servers (tests, benchmarks)."""
        return cls([
            AsyncServiceClient.in_process(server, wire=wire)
            for server in servers
        ])

    @property
    def n_shards(self) -> int:
        """The fleet size (fixed for the coordinator's lifetime)."""
        return len(self._clients)

    @property
    def clients(self) -> list[AsyncServiceClient]:
        """The per-shard clients, in routing order."""
        return self._clients

    # -- fan-out plumbing ---------------------------------------------------

    async def _gather(self, coros: Iterable[Any]) -> list[Any]:
        start = time.perf_counter()
        try:
            return list(await asyncio.gather(*coros))
        finally:
            if self._metrics is not None:
                self._metrics.scatter_seconds.observe(
                    time.perf_counter() - start)
                self._metrics.queries.inc()

    async def _table_spec(self, table: str) -> dict[str, Any]:
        """The table's pinned spec dict (cached; one ``stats`` on miss)."""
        spec = self._table_specs.get(table)
        if spec is None:
            response = await self._clients[0].stats(table)
            spec = dict(response["table"]["spec"])
            self._table_specs[table] = spec
        return spec

    # -- administration -----------------------------------------------------

    async def ping(self) -> list[dict[str, Any]]:
        """Liveness of every shard, in routing order."""
        return await self._gather(
            client.ping() for client in self._clients)

    async def create_table(self, spec: TableSpec) -> bool:
        """Create ``spec`` on every shard; ``True`` if any shard created
        it anew.  ``window`` tables are refused: their rotation depends
        on shard-local arrival counts and is not linear across shards.
        """
        if spec.kind == "window":
            raise ValueError(
                "window tables cannot be sharded: jumping-window rotation "
                "counts local arrivals, which is not linear across shards; "
                "serve them from a single repro.service process"
            )
        created = await self._gather(
            client.create_table(spec) for client in self._clients)
        self._table_specs[spec.name] = spec.to_dict()
        return any(bool(flag) for flag in created)

    async def drop_table(self, table: str) -> int:
        """Drop ``table`` everywhere; returns total records it held."""
        dropped = await self._gather(
            client.drop_table(table) for client in self._clients)
        self._table_specs.pop(table, None)
        return sum(int(count) for count in dropped)

    # -- ingest -------------------------------------------------------------

    async def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Route one batch of ``(item, count)`` records to its shards.

        The batch is encoded once (``encode_keys``); the resulting u64
        images drive both jump-hash routing here and bucket hashing on
        the shard.  Linear-sketch tables ship the integer key image
        itself (``encode_key`` is the identity mod ``2**64`` on ints,
        so the shard hashes the same image); ``topk`` tables ship the
        original items, which their candidate heaps must store.

        ``wait=True`` acknowledges only after every routed sub-batch is
        *applied* on its shard — the cluster-wide read barrier.
        Returns the number of records routed.

        Shard-side refusals pass through untranslated: a shard whose
        table quota or ingest queue refuses its sub-batch raises the
        same :class:`~repro.service.client.QuotaExceededError` /
        :class:`~repro.service.client.OverloadedError` here.  Refused
        sub-batches were never enqueued on their shard (all-or-nothing
        per shard), but sub-batches routed to *other* shards in the
        same call may already be acknowledged — retry the whole batch
        only on linear-sketch tables, where re-adding commutes (§3.2).
        """
        pairs = [(item, int(count)) for item, count in records]
        if not pairs:
            return 0
        spec = await self._table_spec(table)
        ship_originals = spec["kind"] == "topk"
        keys = encode_keys([item for item, _ in pairs])
        shards = partition_keys(keys, self.n_shards)
        calls = []
        for shard, positions in enumerate(shards):
            if positions.size == 0:
                continue
            if ship_originals:
                routed = [pairs[index] for index in positions]
            else:
                routed = [(int(keys[index]), pairs[index][1])
                          for index in positions]
            calls.append(
                self._clients[shard].ingest(table, routed, wait=wait))
        await self._gather(calls)
        if self._metrics is not None:
            self._metrics.ingest_batches.inc()
            self._metrics.ingest_records.inc(len(pairs))
        return len(pairs)

    async def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: route plain items, each with count 1."""
        return await self.ingest(table, ((item, 1) for item in items),
                                 wait=wait)

    # -- queries ------------------------------------------------------------

    async def estimate_rows(
        self, table: str, items: Sequence[Hashable]
    ) -> list[list[int]]:
        """Scatter ``estimate_rows`` and sum the integer readouts.

        The result is exactly the merged sketch's per-row readouts for
        each item (§3.2: shard readouts sum), before any median."""
        per_shard = await self._gather(
            client.estimate_rows(table, items)
            for client in self._clients
        )
        return _sum_rows(per_shard)

    async def estimate(
        self, table: str, items: Sequence[Hashable]
    ) -> list[float]:
        """Frequency estimates over every shard's acknowledged records,
        bit-equal to one offline sketch fed the same stream.

        For ``topk`` tables this answers from the merged *sketch* (the
        same re-score estimator :func:`repro.parallel.parallel_topk`
        uses), not from shard-local heap priorities, which are not
        meaningful across shards.
        """
        items = list(items)
        if not items:
            return []
        spec = await self._table_spec(table)
        return _median_rows(str(spec["kind"]),
                            await self.estimate_rows(table, items))

    async def topk(
        self, table: str, k: int | None = None
    ) -> list[tuple[Hashable, float]]:
        """Global top-k: shard candidate union, re-scored exactly.

        Every shard contributes its full tracked candidate list; the
        union is re-scored through the summed row readouts (merged-
        sketch estimates) and ranked by ``(-estimate, repr(item))`` —
        the identical union-then-rescore step of
        :func:`repro.parallel.parallel_topk`.  Never-updated shards
        contribute empty candidate lists and all-zero readouts, which
        are exact by linearity.
        """
        spec = await self._table_spec(table)
        if k is None:
            k = int(spec.get("k", 10))
        if k < 1:
            raise ValueError("k must be at least 1")
        per_shard = await self._gather(
            client.topk(table) for client in self._clients)
        union: dict[Hashable, None] = {}
        for shard_top in per_shard:
            for item, _ in shard_top:
                union.setdefault(item)
        candidates = list(union)
        if not candidates:
            return []
        scores = _median_rows(
            str(spec["kind"]), await self.estimate_rows(table, candidates))
        ranked = sorted(
            zip(candidates, scores, strict=True),
            key=lambda pair: (-pair[1], repr(pair[0])),
        )
        return ranked[:k]

    async def maxchange(
        self,
        before: str,
        after: str,
        *,
        k: int = 10,
        items: Iterable[Hashable] | None = None,
    ) -> list[ArchiveDiffEntry]:
        """The ``k`` items whose frequency changed most between tables.

        Evaluates the §3.2 *difference sketch* ``after - before``
        without materialising it: per-item row readouts of both tables
        are summed across shards, subtracted, and finalized with the
        kind's median — bit-equal to
        :meth:`repro.store.archive.SketchArchive.diff` over the merged
        sketches.  Candidates default to the union of both tables'
        shard-local top-k lists (both must then be ``topk`` tables);
        pass ``items`` to score an explicit set against any linear kind.
        """
        if k < 0:
            raise ValueError("k must be nonnegative")
        spec_before = await self._table_spec(before)
        spec_after = await self._table_spec(after)
        kind = str(spec_before["kind"])
        if str(spec_after["kind"]) != kind:
            raise ValueError(
                f"tables {before!r} ({kind}) and {after!r} "
                f"({spec_after['kind']}) have different kinds; their "
                "sketches cannot be subtracted"
            )
        if items is None:
            per_shard = await self._gather(
                [client.topk(before) for client in self._clients]
                + [client.topk(after) for client in self._clients]
            )
            probe: dict[Hashable, None] = {}
            for shard_top in per_shard:
                for item, _ in shard_top:
                    probe.setdefault(item)
            candidates: list[Hashable] = list(probe)
        else:
            seen: dict[Hashable, None] = {}
            for item in items:
                seen.setdefault(item)
            candidates = list(seen)
        if not candidates:
            return []
        rows_before, rows_after = await self._gather([
            self.estimate_rows(before, candidates),
            self.estimate_rows(after, candidates),
        ])
        diff_rows = [
            [a - b for a, b in zip(item_after, item_before, strict=True)]
            for item_before, item_after in zip(rows_before, rows_after,
                                               strict=True)
        ]
        changes = _median_rows(kind, diff_rows)
        est_before = _median_rows(kind, rows_before)
        est_after = _median_rows(kind, rows_after)
        entries = [
            ArchiveDiffEntry(
                item=item,
                estimated_change=change,
                estimate_before=b,
                estimate_after=a,
            )
            for item, change, b, a in zip(
                candidates, changes, est_before, est_after, strict=True)
        ]
        entries.sort(key=lambda e: (-e.abs_change, repr(e.item)))
        return entries[:k]

    # -- observability and lifecycle ----------------------------------------

    async def stats(self, table: str | None = None) -> dict[str, Any]:
        """Cluster stats: fleet size plus per-shard stats payloads."""
        per_shard = await self._gather(
            client.stats(table) for client in self._clients)
        shards = [
            {"shard": index,
             **{key: value for key, value in payload.items()
                if key not in ("ok", "id")}}
            for index, payload in enumerate(per_shard)
        ]
        return {"n_shards": self.n_shards, "shards": shards}

    async def metrics(self, fmt: str = "prometheus") -> list[str]:
        """Every shard's metrics export body, in routing order."""
        return [
            str(body) for body in await self._gather(
                client.metrics(fmt) for client in self._clients)
        ]

    async def checkpoint(self, table: str | None = None) -> int:
        """Snapshot every shard now; returns total bytes written."""
        written = await self._gather(
            client.checkpoint(table) for client in self._clients)
        return sum(int(count) for count in written)

    async def shutdown(self) -> None:
        """Ask every shard to stop gracefully."""
        await self._gather(
            client.shutdown() for client in self._clients)

    async def close(self) -> None:
        """Close every shard connection (the servers keep running)."""
        await asyncio.gather(*[
            client.close() for client in self._clients])


class ClusterClient:
    """Synchronous facade over :class:`ClusterCoordinator`.

    Mirrors :class:`~repro.service.client.ServiceClient`: a private
    event loop on a daemon thread, every method blocking up to
    ``timeout`` seconds.  Usable as a context manager.

    Args:
        endpoints: ``(host, port)`` per shard, in routing order.
        timeout: per-call deadline in seconds.
        wire: ingest wire preference, forwarded to every shard client.
    """

    def __init__(
        self,
        endpoints: Sequence[tuple[str, int]],
        *,
        timeout: float = 30.0,
        wire: str = "auto",
    ) -> None:
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-cluster-client",
            daemon=True,
        )
        self._thread.start()
        try:
            self._coordinator = self._run(
                ClusterCoordinator.connect(list(endpoints), wire=wire))
        except BaseException:
            self._stop_loop()
            raise

    def _run(self, coro: Any) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(self._timeout)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    @property
    def n_shards(self) -> int:
        """The fleet size."""
        return self._coordinator.n_shards

    def ping(self) -> list[dict[str, Any]]:
        """Liveness of every shard, in routing order."""
        return list(self._run(self._coordinator.ping()))

    def create_table(self, spec: TableSpec) -> bool:
        """Create a table on every shard."""
        return bool(self._run(self._coordinator.create_table(spec)))

    def drop_table(self, table: str) -> int:
        """Drop a table everywhere; returns total records it held."""
        return int(self._run(self._coordinator.drop_table(table)))

    def ingest(
        self,
        table: str,
        records: Iterable[tuple[Hashable, int]],
        *,
        wait: bool = False,
    ) -> int:
        """Route one batch of ``(item, count)`` records to its shards."""
        return int(self._run(self._coordinator.ingest(
            table, list(records), wait=wait)))

    def ingest_items(
        self, table: str, items: Iterable[Hashable], *, wait: bool = False
    ) -> int:
        """Sugar: route plain items, each with count 1."""
        return int(self._run(self._coordinator.ingest_items(
            table, list(items), wait=wait)))

    def estimate(self, table: str, items: Sequence[Hashable]) -> list[float]:
        """Cluster-exact frequency estimates (see the async docstring)."""
        return list(self._run(self._coordinator.estimate(table,
                                                         list(items))))

    def estimate_rows(
        self, table: str, items: Sequence[Hashable]
    ) -> list[list[int]]:
        """Summed per-row readouts across shards (merged-sketch ints)."""
        return list(self._run(self._coordinator.estimate_rows(
            table, list(items))))

    def topk(self, table: str,
             k: int | None = None) -> list[tuple[Hashable, float]]:
        """Global top-k via candidate union and exact re-scoring."""
        return list(self._run(self._coordinator.topk(table, k)))

    def maxchange(
        self,
        before: str,
        after: str,
        *,
        k: int = 10,
        items: Iterable[Hashable] | None = None,
    ) -> list[ArchiveDiffEntry]:
        """Largest frequency changes between two tables."""
        return list(self._run(self._coordinator.maxchange(
            before, after, k=k,
            items=None if items is None else list(items))))

    def stats(self, table: str | None = None) -> dict[str, Any]:
        """Cluster stats: fleet size plus per-shard payloads."""
        return dict(self._run(self._coordinator.stats(table)))

    def metrics(self, fmt: str = "prometheus") -> list[str]:
        """Every shard's metrics export body, in routing order."""
        return list(self._run(self._coordinator.metrics(fmt)))

    def checkpoint(self, table: str | None = None) -> int:
        """Snapshot every shard now; returns total bytes written."""
        return int(self._run(self._coordinator.checkpoint(table)))

    def shutdown(self) -> None:
        """Ask every shard to stop gracefully."""
        self._run(self._coordinator.shutdown())

    def close(self) -> None:
        """Close every shard connection and stop the private loop."""
        try:
            self._run(self._coordinator.close())
        finally:
            self._stop_loop()

    def __enter__(self) -> ClusterClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
