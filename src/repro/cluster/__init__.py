"""Horizontally sharded serving: N sketch servers, one exact answer.

The paper's §3.2 linearity makes a sharded deployment *exact*, not
approximate: for any partition of the stream, the sum of the shard
sketches equals the single sketch over everything.  This package turns
that identity into a cluster tier over :mod:`repro.service`:

* :mod:`~repro.cluster.routing` — jump consistent hashing over the same
  pre-encoded u64 key images the sketches hash (one ``encode_key`` pass
  covers routing and sketching).
* :mod:`~repro.cluster.coordinator` — :class:`ClusterCoordinator` /
  :class:`ClusterClient`: scatter-gather ``estimate`` / ``topk`` /
  ``maxchange`` whose answers are bit-equal to one offline sketch fed
  the same records (per-row integer readouts sum across shards; the
  median is applied once, by the summary kind's own arithmetic).
* :mod:`~repro.cluster.fleet` — cluster spec files, the ``repro
  cluster serve`` process supervisor, manifest pinning that refuses a
  silent shard-count change, and offline snapshot-re-merge rebalancing
  over the ``.rcs`` format.

CLI: ``repro cluster serve`` / ``repro cluster rebalance``, and
``repro query <verb> --cluster SPEC`` to aim any query verb at a fleet.
See ``docs/cluster.md`` for topology, routing, and failure semantics.
"""

from repro.cluster.coordinator import ClusterClient, ClusterCoordinator
from repro.cluster.fleet import (
    MERGEABLE_KINDS,
    ClusterSpecFile,
    ShardProcess,
    fleet_status,
    launch_fleet,
    merge_shard_summaries,
    pin_cluster_manifest,
    read_cluster_spec,
    rebalance_cluster,
    shard_directory,
    stop_fleet,
    write_cluster_spec,
)
from repro.cluster.routing import (
    MAX_SHARDS,
    jump_hash,
    jump_hash_array,
    partition_keys,
)

__all__ = [
    "MAX_SHARDS",
    "MERGEABLE_KINDS",
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterSpecFile",
    "ShardProcess",
    "fleet_status",
    "jump_hash",
    "jump_hash_array",
    "launch_fleet",
    "merge_shard_summaries",
    "partition_keys",
    "pin_cluster_manifest",
    "read_cluster_spec",
    "rebalance_cluster",
    "shard_directory",
    "stop_fleet",
    "write_cluster_spec",
]
