"""Consistent-hash routing over pre-encoded 64-bit key images.

The cluster routes every record by *jump consistent hash* (Lamport &
Lemire, "A Fast, Minimal Memory, Consistent Hash Algorithm") applied to
the same ``encode_key`` u64 image the sketches hash — routing and
sketching share one encoding pass, and a record's shard is a pure
function of ``(key, n_shards)``.  Jump hash needs no ring state, and
growing ``n_shards`` from ``n`` to ``n+1`` moves only ``1/(n+1)`` of
the keyspace — the property rebalancing relies on.

Exactness note: *where* a record lands never affects *what* the cluster
answers.  §3.2 linearity means the sum of the shard sketches equals the
single sketch over the whole stream for **any** partition; consistent
hashing only minimises snapshot movement when the fleet resizes.

Both a scalar and a vectorized implementation are provided; they agree
bit-for-bit (a property test enforces it), so the coordinator can route
whole ingest batches as one NumPy pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.hashing.vectorized import encode_keys

if TYPE_CHECKING:
    from collections.abc import Hashable, Iterable

__all__ = ["MAX_SHARDS", "jump_hash", "jump_hash_array", "partition_keys"]

_MASK64 = (1 << 64) - 1
_MULTIPLIER = 2862933555777941757

#: Upper bound on the fleet size.  Far above any realistic deployment,
#: and small enough that the float64 arithmetic in the vectorized
#: implementation stays exact (``(b + 1) · 2^31 < 2^53``).
MAX_SHARDS = 1 << 20


def _check_shards(n_shards: int) -> None:
    if not isinstance(n_shards, int) or isinstance(n_shards, bool):
        raise TypeError("n_shards must be an integer")
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if n_shards > MAX_SHARDS:
        raise ValueError(f"n_shards must be at most {MAX_SHARDS}")


def jump_hash(key: int, n_shards: int) -> int:
    """The shard index in ``[0, n_shards)`` for one u64 key image.

    Args:
        key: a pre-encoded :func:`repro.hashing.encode.encode_key`
            image (any int is wrapped mod ``2**64`` first).
        n_shards: the fleet size.
    """
    _check_shards(n_shards)
    key &= _MASK64
    b, j = -1, 0
    while j < n_shards:
        b = j
        key = (key * _MULTIPLIER + 1) & _MASK64
        j = int(float(b + 1) * float(1 << 31) / float((key >> 33) + 1))
    return b


def jump_hash_array(
    keys: Iterable[Hashable] | np.ndarray, n_shards: int
) -> np.ndarray:
    """Vectorized :func:`jump_hash`: one int64 shard index per key.

    Accepts a pre-encoded uint64 array (the fast path the coordinator
    uses) or any iterable of items, which is encoded first.  Agrees
    bit-for-bit with the scalar implementation.
    """
    _check_shards(n_shards)
    if isinstance(keys, np.ndarray) and keys.dtype == np.uint64:
        state = keys.copy()
    else:
        state = encode_keys(keys).copy()
    b = np.full(state.shape, -1, dtype=np.int64)
    j = np.zeros(state.shape, dtype=np.int64)
    if n_shards == 1:
        return np.zeros(state.shape, dtype=np.int64)
    active = np.ones(state.shape, dtype=bool)
    multiplier = np.uint64(_MULTIPLIER)
    one = np.uint64(1)
    shift = np.uint64(33)
    while True:
        b[active] = j[active]
        state[active] = state[active] * multiplier + one
        # (b+1)·2^31 and (key>>33)+1 are both < 2^53, so the float64
        # quotient truncates exactly like the scalar int() path.
        j[active] = (
            (b[active] + 1).astype(np.float64)
            * np.float64(1 << 31)
            / ((state[active] >> shift).astype(np.float64) + 1.0)
        ).astype(np.int64)
        active = j < n_shards
        if not bool(active.any()):
            return b


def partition_keys(
    keys: np.ndarray, n_shards: int
) -> list[np.ndarray]:
    """Index arrays grouping ``keys`` by shard, order-preserving.

    Returns one int64 position array per shard; ``keys[result[s]]`` are
    the keys routed to shard ``s``, in their original batch order (so
    per-shard application order matches arrival order — order matters
    for ``topk`` admission even though it never matters for linear
    sketches).
    """
    shards = jump_hash_array(keys, n_shards)
    return [
        np.flatnonzero(shards == shard).astype(np.int64)
        for shard in range(n_shards)
    ]
