"""Fleet management: shard processes, pinned manifests, rebalancing.

A cluster deployment is N independent ``repro serve`` processes plus a
*cluster spec* — a small JSON file recording the shard endpoints in
routing order, which is all a :class:`~repro.cluster.coordinator.
ClusterClient` needs to attach.  This module owns that file, the
subprocess supervisor behind ``repro cluster serve``, and the offline
snapshot-re-merge behind ``repro cluster rebalance``.

Durability layout (``--checkpoint-dir ROOT``)::

    ROOT/
        manifest.json      # ShardCheckpointStore manifest: pins the
                           # fleet size and every table spec
        shard-000/         # shard 0's own service checkpoint dir
            service.json   #   (service manifest + one .rcs per table)
            flows.rcs
        shard-001/
            ...

The root manifest reuses :class:`~repro.store.ShardCheckpointStore`'s
pin-or-verify posture: a resume with a different shard count (or
different table specs) is refused loudly — silently resuming N
snapshots into an M-shard fleet would route keys to shards holding the
wrong counters.  Changing the fleet size is an explicit *rebalance*:
the §3.2 compatibility-checked merge collapses every shard's snapshot
into one exact sketch (empty shards contribute zero counters — the sum
is unchanged), which seeds the new layout.  Answers before and after a
rebalance are bit-equal, because the global counter sums are.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.countsketch import CountSketch
from repro.core.vectorized import VectorizedCountSketch
from repro.service.tables import TableSpec
from repro.store.checkpoint import (
    CheckpointMismatchError,
    ShardCheckpointStore,
)
from repro.store.codec import load_with_meta, save
from repro.store.format import StoreError, atomic_write_bytes

if TYPE_CHECKING:
    from collections.abc import Iterable, Sequence

    from repro.store.codec import Snapshotable

__all__ = [
    "ClusterSpecFile",
    "MERGEABLE_KINDS",
    "ShardProcess",
    "fleet_status",
    "launch_fleet",
    "merge_shard_summaries",
    "pin_cluster_manifest",
    "read_cluster_spec",
    "rebalance_cluster",
    "shard_directory",
    "stop_fleet",
    "write_cluster_spec",
]

_SPEC_VERSION = 1

#: Kinds whose shard snapshots merge exactly (§3.2 linearity).  ``topk``
#: heap state and ``window`` rotation are insert-ordered, not linear, so
#: their tables cannot be collapsed by snapshot re-merge.
MERGEABLE_KINDS = ("sketch", "vectorized")


class ClusterSpecFile:
    """A parsed cluster spec: shard endpoints plus pinned table specs."""

    __slots__ = ("endpoints", "tables")

    def __init__(self, endpoints: list[tuple[str, int]],
                 tables: list[TableSpec]) -> None:
        self.endpoints = endpoints
        self.tables = tables

    @property
    def n_shards(self) -> int:
        """The fleet size."""
        return len(self.endpoints)

    def __repr__(self) -> str:
        return (
            f"ClusterSpecFile(n_shards={self.n_shards}, "
            f"tables={[spec.name for spec in self.tables]})"
        )


def write_cluster_spec(
    path: str | Path,
    endpoints: Sequence[tuple[str, int]],
    specs: Sequence[TableSpec],
) -> None:
    """Atomically write the cluster spec JSON for ``ClusterClient``s."""
    payload = {
        "version": _SPEC_VERSION,
        "n_shards": len(endpoints),
        "shards": [
            {"host": host, "port": port} for host, port in endpoints
        ],
        "tables": [spec.to_dict() for spec in specs],
    }
    atomic_write_bytes(
        Path(path),
        json.dumps(payload, sort_keys=True, indent=2).encode("utf-8"),
    )


def read_cluster_spec(path: str | Path) -> ClusterSpecFile:
    """Parse a cluster spec file written by :func:`write_cluster_spec`.

    Raises:
        StoreError: when the file is missing, malformed, or has a
            version this build does not understand.
    """
    spec_path = Path(path)
    if not spec_path.exists():
        raise StoreError(
            f"cluster spec {spec_path} does not exist; start a fleet "
            "with `repro cluster serve` first"
        )
    try:
        payload = json.loads(spec_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise StoreError(
            f"{spec_path} is not a valid cluster spec: {error}"
        ) from error
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _SPEC_VERSION
        or not isinstance(payload.get("shards"), list)
        or not payload["shards"]
    ):
        raise StoreError(
            f"{spec_path} is not a version-{_SPEC_VERSION} cluster spec "
            "with at least one shard"
        )
    endpoints: list[tuple[str, int]] = []
    for entry in payload["shards"]:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("host"), str)
            or not isinstance(entry.get("port"), int)
        ):
            raise StoreError(
                f"{spec_path} shard entries need 'host' and 'port'")
        endpoints.append((entry["host"], entry["port"]))
    tables = []
    for payload_spec in payload.get("tables", []):
        try:
            tables.append(TableSpec.from_dict(payload_spec))
        except (ValueError, TypeError) as error:
            raise StoreError(
                f"{spec_path} pins an invalid table spec: {error}"
            ) from error
    return ClusterSpecFile(endpoints, tables)


# -- durability ------------------------------------------------------------


def shard_directory(root: str | Path, index: int) -> Path:
    """Shard ``index``'s service checkpoint directory under ``root``."""
    if index < 0:
        raise ValueError("shard index cannot be negative")
    return Path(root) / f"shard-{index:03d}"


def pin_cluster_manifest(
    root: str | Path,
    *,
    n_shards: int,
    specs: Sequence[TableSpec],
) -> ShardCheckpointStore:
    """Pin (or verify) the fleet shape in ``root``'s manifest.

    Reuses :meth:`ShardCheckpointStore.ensure_manifest`, with a
    dedicated shard-count precheck so the most operationally likely
    drift — resuming with a different ``--shards`` — gets an error that
    says exactly how to proceed instead of a generic parameter list.

    Raises:
        CheckpointMismatchError: when ``root`` was written by a fleet
            of a different size or with different table specs.
    """
    store = ShardCheckpointStore(root)
    existing = store.read_manifest()
    if existing is not None:
        recorded = existing.get("n_shards")
        if recorded != n_shards:
            raise CheckpointMismatchError(
                f"cluster checkpoint {Path(root)} was written by a "
                f"{recorded}-shard fleet, but this run wants {n_shards} "
                f"shards; resume with --shards {recorded}, or change the "
                "fleet size explicitly with `repro cluster rebalance` "
                "(snapshots re-merge exactly by §3.2 linearity)"
            )
    store.ensure_manifest({
        "kind": "cluster",
        "version": _SPEC_VERSION,
        "n_shards": n_shards,
        "tables": [
            spec.to_dict() for spec in sorted(specs, key=lambda s: s.name)
        ],
    })
    return store


def merge_shard_summaries(
    spec: TableSpec, summaries: Iterable[Snapshotable]
) -> Snapshotable:
    """Collapse shard summaries into one, via the compat-checked merge.

    Degenerate cases are exact by construction: zero summaries yield the
    spec's empty summary (all-zero counters), one summary merges onto
    zeros unchanged, and never-updated shards contribute nothing to the
    sums.

    Raises:
        StoreError: for non-linear kinds, or when a summary does not
            match ``spec`` (the §3.2 compatibility check then never
            runs on mismatched types).
    """
    if spec.kind not in MERGEABLE_KINDS:
        raise StoreError(
            f"table {spec.name!r} is {spec.kind!r}: its state is "
            "insert-ordered, not linear, so shard snapshots cannot be "
            "re-merged; only " + " and ".join(MERGEABLE_KINDS) +
            " tables can be rebalanced"
        )
    merged = spec.build()
    for summary in summaries:
        if not spec.matches_summary(summary):
            raise StoreError(
                f"shard snapshot for table {spec.name!r} holds a "
                f"{type(summary).__name__}, expected the spec's "
                f"{spec.kind!r} summary"
            )
        if isinstance(merged, CountSketch) and isinstance(
                summary, CountSketch):
            merged.merge(summary)
        elif isinstance(merged, VectorizedCountSketch) and isinstance(
                summary, VectorizedCountSketch):
            merged.merge(summary)
    return merged


def rebalance_cluster(
    src_root: str | Path,
    dst_root: str | Path,
    n_shards: int,
) -> dict[str, int]:
    """Re-shape a cluster checkpoint root to a new fleet size, offline.

    Every table's shard snapshots are loaded (missing files mean the
    shard never checkpointed that table — an empty sketch), merged
    through the §3.2 compatibility-checked merge, and written as shard
    0 of the new layout; the remaining shards start empty.  Global
    counter sums are preserved exactly, so cluster answers before and
    after the rebalance are bit-equal.  The new fleet then refills
    shards organically as routed ingest arrives.

    Args:
        src_root: existing cluster checkpoint root (with a manifest).
        dst_root: destination root; must not already hold a manifest.
        n_shards: the new fleet size.

    Returns:
        Per-table count of source snapshots merged.

    Raises:
        StoreError: for a missing/invalid source manifest, an occupied
            destination, or non-linear table kinds.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    src = Path(src_root)
    dst = Path(dst_root)
    src_store = ShardCheckpointStore(src)
    manifest = src_store.read_manifest()
    if manifest is None:
        raise StoreError(
            f"{src} has no cluster manifest; nothing to rebalance"
        )
    old_n = manifest.get("n_shards")
    if not isinstance(old_n, int) or old_n < 1:
        raise StoreError(f"{src} manifest lacks a valid n_shards count")
    specs = [TableSpec.from_dict(payload)
             for payload in manifest.get("tables", [])]
    if ShardCheckpointStore(dst).read_manifest() is not None:
        raise StoreError(
            f"destination {dst} already holds a cluster manifest; "
            "rebalance into a fresh directory"
        )
    merged_counts: dict[str, int] = {}
    for spec in specs:
        if spec.kind not in MERGEABLE_KINDS:
            raise StoreError(
                f"table {spec.name!r} is {spec.kind!r} and cannot be "
                "rebalanced by snapshot re-merge; drop it or re-ingest "
                "its stream into the new fleet"
            )
        summaries: list[Snapshotable] = []
        total_items = 0
        for index in range(old_n):
            path = shard_directory(src, index) / f"{spec.name}.rcs"
            if not path.exists():
                continue  # never-checkpointed shard: an empty sketch
            summary, meta = load_with_meta(path)
            consumed = meta.get("items_consumed", 0)
            total_items += consumed if isinstance(consumed, int) else 0
            summaries.append(summary)
        merged = merge_shard_summaries(spec, summaries)
        target = shard_directory(dst, 0) / f"{spec.name}.rcs"
        target.parent.mkdir(parents=True, exist_ok=True)
        save(merged, target, meta={"items_consumed": total_items})
        merged_counts[spec.name] = len(summaries)
    for index in range(n_shards):
        shard_directory(dst, index).mkdir(parents=True, exist_ok=True)
    pin_cluster_manifest(dst, n_shards=n_shards, specs=specs)
    return merged_counts


# -- process supervision ---------------------------------------------------


class ShardProcess:
    """One spawned ``repro serve`` shard and its bound endpoint."""

    __slots__ = ("index", "process", "host", "port")

    def __init__(self, index: int, process: subprocess.Popen[str],
                 host: str, port: int) -> None:
        self.index = index
        self.process = process
        self.host = host
        self.port = port

    def __repr__(self) -> str:
        return (
            f"ShardProcess(index={self.index}, "
            f"endpoint={self.host}:{self.port}, "
            f"pid={self.process.pid})"
        )


def _shard_command(
    specs: Sequence[TableSpec],
    host: str,
    checkpoint_dir: Path | None,
    serve_args: Sequence[str],
) -> list[str]:
    command = [sys.executable, "-m", "repro.cli", "serve",
               "--host", host, "--port", "0"]
    for spec in specs:
        options = ",".join(
            f"{key}={value}"
            for key, value in sorted(spec.to_dict().items())
            if key not in ("name", "kind")
        )
        command.extend(["--table", f"{spec.name}:{spec.kind}:{options}"])
    if checkpoint_dir is not None:
        command.extend(["--checkpoint-dir", str(checkpoint_dir)])
    command.extend(serve_args)
    return command


def _await_serving_line(shard: subprocess.Popen[str], index: int) -> tuple[str, int]:
    assert shard.stdout is not None
    while True:
        line = shard.stdout.readline()
        if not line:
            shard.wait()
            raise StoreError(
                f"shard {index} exited with code {shard.returncode} "
                "before binding its port"
            )
        if line.startswith("serving on "):
            endpoint = line[len("serving on "):].strip()
            host, _, port = endpoint.rpartition(":")
            return host, int(port)


def launch_fleet(
    n_shards: int,
    specs: Sequence[TableSpec],
    *,
    host: str = "127.0.0.1",
    checkpoint_root: str | Path | None = None,
    serve_args: Sequence[str] = (),
    env: dict[str, str] | None = None,
) -> list[ShardProcess]:
    """Spawn ``n_shards`` shard server subprocesses, each on a free port.

    Every shard runs ``repro serve --port 0`` with the same table specs;
    with a ``checkpoint_root`` the fleet shape is pinned in the root
    manifest first (refusing a shard-count change — see
    :func:`pin_cluster_manifest`) and shard ``i`` persists under
    ``ROOT/shard-00i``.  Shards that fail to bind abort the whole
    launch, terminating any already-started siblings.

    Returns the running shards in routing order.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    if checkpoint_root is not None:
        pin_cluster_manifest(checkpoint_root,
                             n_shards=n_shards, specs=specs)
    if env is None:
        # Shards import repro.cli; make sure this build's package root
        # is importable even when the parent was launched via PYTHONPATH.
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing_path = env.get("PYTHONPATH", "")
        if package_root not in existing_path.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + os.pathsep + existing_path
                if existing_path else package_root
            )
    shards: list[ShardProcess] = []
    try:
        for index in range(n_shards):
            checkpoint_dir = (
                shard_directory(checkpoint_root, index)
                if checkpoint_root is not None else None
            )
            process = subprocess.Popen(
                _shard_command(specs, host, checkpoint_dir, serve_args),
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            try:
                bound_host, bound_port = _await_serving_line(process, index)
            except BaseException:
                # Not yet in ``shards``, so the outer cleanup cannot see
                # this shard: kill and reap it here or the subprocess
                # (and its stdout pipe) outlives the failed launch.
                process.kill()
                process.wait()
                if process.stdout is not None:
                    process.stdout.close()
                raise
            shards.append(
                ShardProcess(index, process, bound_host, bound_port))
    except BaseException:
        stop_fleet(shards, timeout=5.0)
        raise
    return shards


def stop_fleet(
    shards: Sequence[ShardProcess], *, timeout: float = 30.0
) -> list[int]:
    """SIGTERM every shard (graceful drain + snapshot) and reap them.

    Shards still alive after ``timeout`` seconds are killed.  Returns
    the exit codes in routing order.
    """
    for shard in shards:
        if shard.process.poll() is None:
            shard.process.send_signal(signal.SIGTERM)
    deadline = time.monotonic() + timeout
    codes: list[int] = []
    for shard in shards:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            shard.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            shard.process.kill()
            shard.process.wait()
        if shard.process.stdout is not None:
            shard.process.stdout.close()
        codes.append(int(shard.process.returncode or 0))
    return codes


def fleet_status(shards: Sequence[ShardProcess]) -> list[dict[str, Any]]:
    """A plain-dict snapshot of the fleet (for logs and the CLI)."""
    return [
        {
            "index": shard.index,
            "host": shard.host,
            "port": shard.port,
            "pid": shard.process.pid,
            "alive": shard.process.poll() is None,
        }
        for shard in shards
    ]
