"""Manku–Motwani Lossy Counting (cited in §2 as [15]).

A deterministic one-pass algorithm for iceberg queries: with error
parameter ``ε`` the stream is processed in buckets of width ``w = ⌈1/ε⌉``;
each entry stores ``(count, Δ)`` where ``Δ`` is the maximum undercount
possible given when the entry was created.  At every bucket boundary ``b``,
entries with ``count + Δ ≤ b`` are pruned.

Guarantees (verified by the tests):

* estimated counts undercount by at most ``ε·n``;
* every item with true count ≥ ``ε·n`` survives (no false negatives for a
  query threshold ``s ≥ ε``);
* at most ``(1/ε)·log(ε·n)`` entries are live.
"""

from __future__ import annotations

import math
from collections.abc import Hashable


class LossyCounting:
    """Lossy Counting with error parameter ``ε``.

    Args:
        epsilon: the additive undercount bound as a fraction of ``n``.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self._epsilon = epsilon
        self._bucket_width = math.ceil(1.0 / epsilon)
        self._entries: dict[Hashable, tuple[int, int]] = {}  # item -> (count, delta)
        self._total = 0
        self._current_bucket = 1

    @property
    def epsilon(self) -> float:
        """The error parameter ``ε``."""
        return self._epsilon

    @property
    def total(self) -> int:
        """Total stream items observed."""
        return self._total

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError("count must be positive")
        for _ in range(count):
            self._total += 1
            entry = self._entries.get(item)
            if entry is not None:
                self._entries[item] = (entry[0] + 1, entry[1])
            else:
                self._entries[item] = (1, self._current_bucket - 1)
            if self._total % self._bucket_width == 0:
                self._prune()
                self._current_bucket += 1

    def _prune(self) -> None:
        """Drop entries whose maximum possible count is ≤ current bucket."""
        bucket = self._current_bucket
        self._entries = {
            item: (count, delta)
            for item, (count, delta) in self._entries.items()
            if count + delta > bucket
        }

    def estimate(self, item: Hashable) -> float:
        """Lower-bound estimate (undercounts by at most ``ε·n``)."""
        entry = self._entries.get(item)
        return float(entry[0]) if entry is not None else 0.0

    def frequent_items(self, support: float) -> list[tuple[Hashable, float]]:
        """Iceberg query: items with count ≥ ``(support − ε)·n``.

        Contains every item with true count ≥ ``support·n`` (no false
        negatives) and nothing with true count < ``(support − ε)·n``.
        """
        if not 0 < support <= 1:
            raise ValueError("support must be in (0, 1]")
        threshold = (support - self._epsilon) * self._total
        results = [
            (item, float(count))
            for item, (count, __) in self._entries.items()
            if count >= threshold
        ]
        results.sort(key=lambda pair: pair[1], reverse=True)
        return results

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` entries with the largest counts."""
        ranked = sorted(
            self._entries.items(), key=lambda pair: pair[1][0], reverse=True
        )
        return [(item, float(count)) for item, (count, __) in ranked[:k]]

    def counters_used(self) -> int:
        """Two numbers (count, Δ) per live entry."""
        return 2 * len(self._entries)

    def items_stored(self) -> int:
        """One stored object per live entry."""
        return len(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def __repr__(self) -> str:
        return (
            f"LossyCounting(epsilon={self._epsilon}, "
            f"entries={len(self._entries)})"
        )
