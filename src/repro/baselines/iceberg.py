"""Fang et al.'s multiple-hash iceberg-query scheme (§2's reference [4]).

The paper's survey notes that Fang et al. "propose a heuristic 1-pass
multiple-hash scheme which has a similar flavor to our algorithm": hash
every item into ``k`` independent counter arrays (a counting Bloom
filter); an item can only have frequency ≥ T if *all* of its counters
reach T, so pass 1 cheaply identifies a candidate superset and an
optional pass 2 counts the candidates exactly.

Where the Count Sketch refines this: signed updates make the counters
unbiased *estimators* rather than one-sided filters, and the median
replaces the min — which is exactly what turns a candidate filter into a
frequency estimator with the Eq. 5 guarantee.  Implemented here as the
§2 baseline, with the defining soundness property (no false negatives:
every item with count ≥ T passes the filter) kept exact and tested.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.hashing.bucket import BucketHashFamily
from repro.hashing.encode import encode_key
from repro.hashing.mersenne import KWiseFamily


class MultiHashIceberg:
    """The multiple-hash coarse-counting filter for iceberg queries.

    Args:
        depth: number of independent counter arrays (hash functions).
        width: counters per array.
        seed: hash seed.
    """

    def __init__(self, depth: int = 3, width: int = 1024, seed: int = 0) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._depth = depth
        self._width = width
        family = BucketHashFamily(
            KWiseFamily(independence=2, seed=seed, salt="iceberg"), width
        )
        self._bucket_hashes = tuple(family.draw(depth))
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    @property
    def depth(self) -> int:
        """Number of counter arrays."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per array."""
        return self._width

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    def update(self, item: Hashable, count: int = 1) -> None:
        """Pass 1: increment one counter per array."""
        if count < 1:
            raise ValueError("count must be positive")
        key = encode_key(item)
        for row, bucket_hash in enumerate(self._bucket_hashes):
            self._counters[row, bucket_hash(key)] += count
        self._total += count

    def min_counter(self, item: Hashable) -> int:
        """The smallest of the item's counters (its frequency upper bound
        certificate — identical to a Count-Min estimate)."""
        key = encode_key(item)
        return int(
            min(
                self._counters[row, bucket_hash(key)]
                for row, bucket_hash in enumerate(self._bucket_hashes)
            )
        )

    def passes_filter(self, item: Hashable, threshold: float) -> bool:
        """True iff the item *may* have count ≥ ``threshold``.

        Sound: never false for an item whose true count reaches the
        threshold (all its counters dominate its count).  Complete only
        up to hash collisions — light items sharing every bucket with
        heavy ones leak through, which is the scheme's heuristic part.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        return self.min_counter(item) >= threshold

    def candidates(
        self, items: Iterable[Hashable], threshold: float
    ) -> list[Hashable]:
        """Filter a collection of items down to the candidate superset.

        Pass 2 of the original scheme scans the data source again and
        applies this filter to each record; any iterable of (distinct or
        repeated) items works here.
        """
        seen: set[Hashable] = set()
        result = []
        for item in items:
            if item in seen:
                continue
            seen.add(item)
            if self.passes_filter(item, threshold):
                result.append(item)
        return result

    def iceberg_query(
        self, second_pass: Iterable[Hashable], threshold: float
    ) -> list[tuple[Hashable, int]]:
        """The full 2-pass query: exact counts for filter survivors.

        Args:
            second_pass: a replay of the stream.
            threshold: the iceberg threshold T (absolute count).

        Returns:
            Every item with exact count ≥ ``threshold``, heaviest first —
            exact, because the filter is sound and pass 2 counts exactly.
        """
        exact: dict[Hashable, int] = {}
        for item in second_pass:
            if item in exact:
                exact[item] += 1
            elif self.passes_filter(item, threshold):
                exact[item] = 1
        results = [
            (item, count)
            for item, count in exact.items()
            if count >= threshold
        ]
        results.sort(key=lambda pair: pair[1], reverse=True)
        return results

    def counters_used(self) -> int:
        """Total counters ``depth × width``."""
        return self._depth * self._width

    def items_stored(self) -> int:
        """The filter itself stores no stream objects."""
        return 0

    def __repr__(self) -> str:
        return (
            f"MultiHashIceberg(depth={self._depth}, width={self._width}, "
            f"total={self._total})"
        )
