"""Exact frequency counting — the ground truth every experiment scores
against, and the memory-intensive strawman the paper's introduction rules
out ("keeping a counter for each distinct element [is] infeasible")."""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable


class ExactCounter:
    """One exact counter per distinct item."""

    def __init__(self) -> None:
        self._counts: Counter[Hashable] = Counter()
        self._total = 0

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    def update(self, item: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        self._counts[item] += count
        self._total += count

    def extend(self, stream: Iterable[Hashable]) -> None:
        """Record every item of ``stream``."""
        for item in stream:
            self._counts[item] += 1
            self._total += 1

    def estimate(self, item: Hashable) -> float:
        """The exact count of ``item`` (0 if never seen)."""
        return float(self._counts.get(item, 0))

    def count(self, item: Hashable) -> int:
        """The exact integer count of ``item``."""
        return self._counts.get(item, 0)

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The exact ``k`` most frequent items."""
        return [(item, float(c)) for item, c in self._counts.most_common(k)]

    def counts(self) -> Counter[Hashable]:
        """A copy of the full count table."""
        return Counter(self._counts)

    def counters_used(self) -> int:
        """One counter per distinct item seen."""
        return len(self._counts)

    def items_stored(self) -> int:
        """One stored object per distinct item seen."""
        return len(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"ExactCounter(distinct={len(self._counts)}, total={self._total})"
