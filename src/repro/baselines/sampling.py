"""The SAMPLING algorithm — the paper's main comparator (§2, §4.1).

"Keep a uniform random sample of the elements stored as a list of items
plus a counter for each item.  If the same object is added more than once,
we simply increment its counter."

Each stream occurrence is included in the sample independently with a fixed
probability ``p``; an item's counter holds its number of *sampled*
occurrences, so ``counter / p`` is an unbiased estimate of its true count.
To ensure the top-``k`` items all appear in the sample w.h.p., the paper
sets ``p ≥ O(log(k/δ) / n_k)`` (§4.1), giving a solution to
CANDIDATETOP(S, k, x) where ``x`` is the number of distinct sampled items —
the quantity §4.1 measures as the algorithm's space and that Table 1
tabulates per Zipf regime.
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable

from repro.hashing.family import seeded_rng


def required_probability(nk: float, k: int, delta: float = 0.05) -> float:
    """§4.1's inclusion probability ``p = log(k/δ) / n_k`` (capped at 1).

    Args:
        nk: count of the k-th most frequent item.
        k: number of top items to capture.
        delta: failure probability budget.
    """
    if nk <= 0:
        raise ValueError("n_k must be positive")
    if k < 1:
        raise ValueError("k must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return min(1.0, math.log(max(k, 2) / delta) / nk)


class SamplingSummary:
    """Uniform Bernoulli sampling with per-item occurrence counters.

    Args:
        probability: the per-occurrence inclusion probability ``p``.
        seed: seed of the sampling coin flips.
    """

    def __init__(self, probability: float, seed: int = 0) -> None:
        if not 0 < probability <= 1:
            raise ValueError("probability must be in (0, 1]")
        self._probability = probability
        self._rng: random.Random = seeded_rng(seed, "sampling")
        self._sample: dict[Hashable, int] = {}
        self._total = 0

    @classmethod
    def for_candidate_top(
        cls, nk: float, k: int, delta: float = 0.05, seed: int = 0
    ) -> SamplingSummary:
        """Dimension the sampler per §4.1 to capture the top ``k`` w.h.p."""
        return cls(required_probability(nk, k, delta), seed=seed)

    @property
    def probability(self) -> float:
        """The inclusion probability ``p``."""
        return self._probability

    def update(self, item: Hashable, count: int = 1) -> None:
        """Offer ``count`` occurrences of ``item`` to the sampler."""
        self._total += count
        if count == 1:
            if self._rng.random() < self._probability:
                self._sample[item] = self._sample.get(item, 0) + 1
            return
        if count < 0:
            raise ValueError("count must be nonnegative")
        # Binomial thinning for weighted offers: each of the `count`
        # occurrences flips its own coin.
        sampled = sum(
            1 for _ in range(count) if self._rng.random() < self._probability
        )
        if sampled:
            self._sample[item] = self._sample.get(item, 0) + sampled

    def estimate(self, item: Hashable) -> float:
        """Unbiased count estimate: sampled occurrences over ``p``."""
        return self._sample.get(item, 0) / self._probability

    def sampled_count(self, item: Hashable) -> int:
        """Raw number of sampled occurrences of ``item``."""
        return self._sample.get(item, 0)

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` items with the most sampled occurrences (scaled)."""
        ranked = sorted(
            self._sample.items(), key=lambda pair: pair[1], reverse=True
        )
        return [
            (item, count / self._probability) for item, count in ranked[:k]
        ]

    def sample_size(self) -> int:
        """Total sampled occurrences ``x`` (counting repetitions)."""
        return sum(self._sample.values())

    def counters_used(self) -> int:
        """One counter per *distinct* sampled item (the §4.1 space measure)."""
        return len(self._sample)

    def items_stored(self) -> int:
        """One stored object per distinct sampled item."""
        return len(self._sample)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._sample

    def __repr__(self) -> str:
        return (
            f"SamplingSummary(p={self._probability:.3g}, "
            f"distinct={len(self._sample)})"
        )
