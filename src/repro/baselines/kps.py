"""The Karp–Shenker–Papadimitriou algorithm (§2, §4.1, Table 1).

A deterministic one-pass algorithm with ``c`` counters that returns a
superset of all items with frequency above ``n/(c+1)`` — the third column
of Table 1.  It is the classical Misra–Gries FREQUENT algorithm: keep up to
``c`` (item, count) pairs; on a new item with no free slot, decrement every
counter (dropping zeros) instead of inserting.

Guarantees (which the tests verify):

* every item with true count > ``n/(c+1)`` is present at the end;
* each tracked count undercounts by at most ``n/(c+1)``.

As §4.1 notes, KPS solves CANDIDATETOP (set ``θ = n_k/n``, i.e.
``c = ⌈n/n_k⌉`` counters) but not APPROXTOP: it "returns many low frequency
elements along with the high frequency ones", and its counts carry no
per-item accuracy guarantee beyond the additive ``n/(c+1)``.
"""

from __future__ import annotations

import math
from collections.abc import Hashable


def counters_for_candidate_top(n: int, nk: float) -> int:
    """§4.1's setting ``θ = n_k/n`` → ``c = ⌈n/n_k⌉`` counters."""
    if n < 1:
        raise ValueError("n must be positive")
    if nk <= 0:
        raise ValueError("n_k must be positive")
    return max(1, math.ceil(n / nk))


class KPSFrequent:
    """Misra–Gries / KPS FREQUENT with a fixed counter budget.

    Args:
        capacity: the number of counters ``c``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._counters: dict[Hashable, int] = {}
        self._total = 0

    @property
    def capacity(self) -> int:
        """The counter budget ``c``."""
        return self._capacity

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item`` (weighted Misra–Gries).

        The weighted generalization preserves the classical guarantees: the
        total decremented mass is spread over ``capacity + 1`` items at a
        time, so undercounting stays below ``n/(c+1)``.
        """
        if count < 1:
            raise ValueError("count must be positive")
        self._total += count
        if item in self._counters:
            self._counters[item] += count
            return
        if len(self._counters) < self._capacity:
            self._counters[item] = count
            return
        # No free slot: absorb the new item's weight against the smallest
        # counters (the weighted decrement-all step).
        decrement = min(count, min(self._counters.values()))
        surviving = {}
        for tracked, value in self._counters.items():
            if value > decrement:
                surviving[tracked] = value - decrement
        self._counters = surviving
        remaining = count - decrement
        if remaining > 0:
            # The new item survives its own decrement with leftover weight;
            # a slot is guaranteed free because the minimum counter died.
            self._counters[item] = remaining

    def estimate(self, item: Hashable) -> float:
        """Lower-bound estimate (0 for untracked items)."""
        return float(self._counters.get(item, 0))

    def candidates(self) -> list[Hashable]:
        """All tracked items (the guaranteed superset of frequent items)."""
        return list(self._counters)

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` tracked items with the largest residual counts."""
        ranked = sorted(
            self._counters.items(), key=lambda pair: pair[1], reverse=True
        )
        return [(item, float(c)) for item, c in ranked[:k]]

    def counters_used(self) -> int:
        """Counters currently held (≤ capacity)."""
        return len(self._counters)

    def items_stored(self) -> int:
        """Stored objects: one per live counter."""
        return len(self._counters)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._counters

    def __repr__(self) -> str:
        return f"KPSFrequent(capacity={self._capacity}, live={len(self._counters)})"
