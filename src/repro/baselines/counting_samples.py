"""Gibbons–Matias "counting samples" (§2 of the paper).

The concise-samples idea plus one optimization the paper quotes: "so long
as we are setting aside space for a count of an item in the sample anyway,
we may as well keep an exact count for the occurrences of the item after it
has been added to the sample."  Inclusion is still decided by threshold
coin flips, so the *membership* distribution is unchanged; only the counts
become exact-after-entry (more accurate — and the same trick the Count
Sketch tracker's heap uses).

On overflow the threshold is raised and every entry is subjected to the
Gibbons–Matias demotion process: one coin at ``τ'/τ`` to keep the entry
intact; on failure, repeatedly decrement the count and flip at ``τ'`` until
a success (keep with the reduced count) or the count reaches zero (evict).

Estimates add the standard ``1/τ − 1`` compensation for the occurrences
missed before the item entered the sample.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.hashing.family import seeded_rng


class CountingSamples:
    """A counting sample maintained under an entry budget.

    Args:
        capacity: maximum number of (item, count) entries.
        shrink: multiplicative threshold decay ``γ`` on overflow.
        seed: coin-flip seed.
    """

    def __init__(self, capacity: int, shrink: float = 0.9, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0 < shrink < 1:
            raise ValueError("shrink must be in (0, 1)")
        self._capacity = capacity
        self._shrink = shrink
        self._rng: random.Random = seeded_rng(seed, "counting-samples")
        self._threshold = 1.0
        self._sample: dict[Hashable, int] = {}
        self._total = 0

    @property
    def threshold(self) -> float:
        """The current inclusion probability ``τ``."""
        return self._threshold

    @property
    def capacity(self) -> int:
        """Maximum number of tracked entries."""
        return self._capacity

    def update(self, item: Hashable, count: int = 1) -> None:
        """Offer ``count`` occurrences of ``item``."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        self._total += count
        for _ in range(count):
            if item in self._sample:
                # Counted exactly once a member — the GM optimization.
                self._sample[item] += 1
                continue
            if self._threshold >= 1.0 or self._rng.random() < self._threshold:
                self._sample[item] = 1
                if len(self._sample) > self._capacity:
                    self._evict()

    def _evict(self) -> None:
        """Raise the threshold and demote entries until the sample fits."""
        while len(self._sample) > self._capacity:
            new_threshold = self._threshold * self._shrink
            first_keep = new_threshold / self._threshold
            for item in list(self._sample):
                if self._rng.random() < first_keep:
                    continue
                count = self._sample[item] - 1
                while count > 0 and self._rng.random() >= new_threshold:
                    count -= 1
                if count > 0:
                    self._sample[item] = count
                else:
                    del self._sample[item]
            self._threshold = new_threshold

    def estimate(self, item: Hashable) -> float:
        """Count plus the ``1/τ − 1`` compensation for the missed prefix."""
        count = self._sample.get(item, 0)
        if count == 0:
            return 0.0
        return count + (1.0 / self._threshold) - 1.0

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` items with the largest compensated counts."""
        ranked = sorted(
            self._sample.items(), key=lambda pair: pair[1], reverse=True
        )
        return [(item, self.estimate(item)) for item, __ in ranked[:k]]

    def counters_used(self) -> int:
        """One counter per tracked entry."""
        return len(self._sample)

    def items_stored(self) -> int:
        """One stored object per tracked entry."""
        return len(self._sample)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._sample

    def __repr__(self) -> str:
        return (
            f"CountingSamples(capacity={self._capacity}, "
            f"threshold={self._threshold:.3g}, entries={len(self._sample)})"
        )
