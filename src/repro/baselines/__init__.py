"""Baseline frequent-items algorithms.

Everything the paper compares against or cites as related work (§2, §4.1,
Table 1), implemented from scratch against the same
:mod:`repro.core.sketch_base` protocols as the Count Sketch tracker:

* :class:`~repro.baselines.exact.ExactCounter` — ground truth.
* :class:`~repro.baselines.sampling.SamplingSummary` — the SAMPLING
  algorithm (the paper's main comparator in Table 1).
* :class:`~repro.baselines.concise_samples.ConciseSamples` and
  :class:`~repro.baselines.counting_samples.CountingSamples` — the two
  Gibbons–Matias variants surveyed in §2.
* :class:`~repro.baselines.kps.KPSFrequent` — Karp–Shenker–Papadimitriou
  (equivalently Misra–Gries FREQUENT), the third column of Table 1.
* :class:`~repro.baselines.lossy_counting.LossyCounting` and
  :class:`~repro.baselines.sticky_sampling.StickySampling` — the
  Manku–Motwani iceberg-query algorithms cited in §2.
* :class:`~repro.baselines.iceberg.MultiHashIceberg` — Fang et al.'s
  multiple-hash scheme, the §2 "similar flavor" precursor.
* :class:`~repro.baselines.space_saving.SpaceSaving` — the later
  counter-based state of the art, included as an extension baseline.
* :class:`~repro.baselines.countmin.CountMinSketch` — the sign-free sketch,
  included for the A2 ablation (what the sign hashes buy).
"""

from repro.baselines.concise_samples import ConciseSamples
from repro.baselines.counting_samples import CountingSamples
from repro.baselines.countmin import CountMinSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.iceberg import MultiHashIceberg
from repro.baselines.kps import KPSFrequent
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.sampling import SamplingSummary
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.sticky_sampling import StickySampling

__all__ = [
    "ConciseSamples",
    "CountingSamples",
    "CountMinSketch",
    "ExactCounter",
    "KPSFrequent",
    "LossyCounting",
    "MultiHashIceberg",
    "SamplingSummary",
    "SpaceSaving",
    "StickySampling",
]
