"""Manku–Motwani Sticky Sampling (cited in §2 as [15]).

The probabilistic sibling of Lossy Counting: entries are *created* by
sampling at a rate that halves as the stream grows, but once created are
counted exactly (the "sticky" part — the same exact-after-entry idea as
counting samples and the Count Sketch tracker's heap).

With support ``s``, error ``ε`` and failure probability ``δ``, let
``t = (1/ε)·log(1/(s·δ))``.  The first ``2t`` items are sampled at rate 1,
the next ``2t`` at rate 1/2, then ``4t`` at rate 1/4, and so on.  When the
rate halves, each entry flips a diminishing sequence of coins (decrementing
its count on each tails) — exactly the Gibbons–Matias demotion — so the
sample remains distributed as if gathered at the new rate throughout.

Guarantee: all items with count ≥ ``s·n`` are reported, and reported counts
undercount by at most ``ε·n``, with probability ``1 − δ``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Hashable

from repro.hashing.family import seeded_rng


class StickySampling:
    """Sticky Sampling for iceberg queries.

    Args:
        support: the query support threshold ``s``.
        epsilon: the undercount bound as a fraction of ``n`` (``ε < s``).
        delta: failure probability.
        seed: coin-flip seed.
    """

    def __init__(
        self,
        support: float,
        epsilon: float | None = None,
        delta: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not 0 < support < 1:
            raise ValueError("support must be in (0, 1)")
        if epsilon is None:
            epsilon = support / 10.0
        if not 0 < epsilon < support:
            raise ValueError("epsilon must be in (0, support)")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self._support = support
        self._epsilon = epsilon
        self._delta = delta
        self._rng: random.Random = seeded_rng(seed, "sticky-sampling")
        self._t = (1.0 / epsilon) * math.log(1.0 / (support * delta))
        self._rate = 1  # one in `rate` items is sampled
        self._next_rate_change = 2.0 * self._t
        self._entries: dict[Hashable, int] = {}
        self._total = 0

    @property
    def support(self) -> float:
        """The support threshold ``s``."""
        return self._support

    @property
    def epsilon(self) -> float:
        """The error parameter ``ε``."""
        return self._epsilon

    @property
    def rate(self) -> int:
        """Current sampling rate denominator (sample one in ``rate``)."""
        return self._rate

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        if count < 1:
            raise ValueError("count must be positive")
        for _ in range(count):
            self._total += 1
            if self._total > self._next_rate_change:
                self._halve_rate()
            if item in self._entries:
                self._entries[item] += 1
            elif self._rng.random() < 1.0 / self._rate:
                self._entries[item] = 1

    def _halve_rate(self) -> None:
        """Double the rate denominator and demote existing entries."""
        self._rate *= 2
        self._next_rate_change += self._t * self._rate
        for item in list(self._entries):
            # Diminish: flip fair coins; each tails decrements the count.
            count = self._entries[item]
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                self._entries[item] = count
            else:
                del self._entries[item]

    def estimate(self, item: Hashable) -> float:
        """The sticky count (undercounts by ≤ ``ε·n`` w.h.p.)."""
        return float(self._entries.get(item, 0))

    def frequent_items(self) -> list[tuple[Hashable, float]]:
        """Items with count ≥ ``(s − ε)·n`` — the iceberg answer set."""
        threshold = (self._support - self._epsilon) * self._total
        results = [
            (item, float(count))
            for item, count in self._entries.items()
            if count >= threshold
        ]
        results.sort(key=lambda pair: pair[1], reverse=True)
        return results

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` entries with the largest sticky counts."""
        ranked = sorted(
            self._entries.items(), key=lambda pair: pair[1], reverse=True
        )
        return [(item, float(count)) for item, count in ranked[:k]]

    def counters_used(self) -> int:
        """One counter per live entry."""
        return len(self._entries)

    def items_stored(self) -> int:
        """One stored object per live entry."""
        return len(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def __repr__(self) -> str:
        return (
            f"StickySampling(support={self._support}, rate=1/{self._rate}, "
            f"entries={len(self._entries)})"
        )
