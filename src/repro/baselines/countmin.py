"""The Count-Min sketch (Cormode & Muthukrishnan, 2005).

Count-Min is the Count Sketch with the sign hashes removed and the median
replaced by a minimum: each row only *adds*, so every row overestimates and
the min is the tightest row.  Errors scale with the tail **L1** norm
(``ε·‖n‖₁`` with width ``e/ε``) instead of Count Sketch's tail **L2**
(Eq. 5) — better for very skewed streams, worse for flat ones, and always
biased upward.

It is implemented here for the A2 ablation: comparing it head-to-head with
the Count Sketch isolates exactly what the paper's ±1 sign hashes buy
(unbiasedness, two-sided error, and the L2 error scale).  The
``conservative`` flag enables conservative update, the standard practical
improvement (only raise the counters that equal the current minimum).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.hashing.bucket import BucketHashFamily
from repro.hashing.encode import encode_key
from repro.hashing.family import HashFunction
from repro.hashing.mersenne import KWiseFamily


class CountMinSketch:
    """A Count-Min sketch with ``depth`` rows of ``width`` counters.

    Args:
        depth: number of rows.
        width: counters per row.
        seed: seed of the default bucket-hash family.
        conservative: use conservative update (tighter, but the sketch
            stops being linear — no merge of conservative sketches).
        bucket_hashes: optional explicit bucket hashes, one per row.
    """

    def __init__(
        self,
        depth: int,
        width: int,
        seed: int = 0,
        conservative: bool = False,
        bucket_hashes: Sequence[HashFunction] | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._depth = depth
        self._width = width
        self._seed = seed
        self._conservative = conservative
        if bucket_hashes is None:
            family = BucketHashFamily(
                KWiseFamily(independence=2, seed=seed, salt="cm-buckets"),
                width,
            )
            bucket_hashes = family.draw(depth)
        else:
            bucket_hashes = list(bucket_hashes)
            if len(bucket_hashes) != depth:
                raise ValueError(f"expected {depth} bucket hashes")
        self._bucket_hashes = tuple(bucket_hashes)
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self._total = 0

    @property
    def depth(self) -> int:
        """Number of rows."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    def _buckets(self, key: int) -> list[int]:
        return [h(key) for h in self._bucket_hashes]

    def update(self, item: Hashable, count: int = 1) -> None:
        """Add ``count`` occurrences of ``item`` (must be nonnegative)."""
        if count < 0:
            raise ValueError(
                "Count-Min counters are nonnegative; use CountSketch for "
                "signed updates"
            )
        key = encode_key(item)
        buckets = self._buckets(key)
        self._total += count
        if not self._conservative:
            for row, bucket in enumerate(buckets):
                self._counters[row, bucket] += count
            return
        current = min(
            int(self._counters[row, bucket])
            for row, bucket in enumerate(buckets)
        )
        target = current + count
        for row, bucket in enumerate(buckets):
            if self._counters[row, bucket] < target:
                self._counters[row, bucket] = target

    def estimate(self, item: Hashable) -> float:
        """The min-over-rows estimate (never below the true count)."""
        key = encode_key(item)
        return float(
            min(
                int(self._counters[row, bucket])
                for row, bucket in enumerate(self._buckets(key))
            )
        )

    def merge(self, other: CountMinSketch) -> None:
        """In-place merge of a compatible (non-conservative) sketch."""
        if self._conservative or other._conservative:
            raise ValueError("conservative Count-Min sketches cannot merge")
        if (
            self._depth != other._depth
            or self._width != other._width
            or self._bucket_hashes != other._bucket_hashes
        ):
            raise ValueError("sketches are not compatible")
        self._counters += other._counters
        self._total += other._total

    def counters_used(self) -> int:
        """Total counters ``depth × width``."""
        return self._depth * self._width

    def items_stored(self) -> int:
        """A bare sketch stores no stream objects."""
        return 0

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(depth={self._depth}, width={self._width}, "
            f"conservative={self._conservative})"
        )
