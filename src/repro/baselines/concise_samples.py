"""Gibbons–Matias "concise samples" (§2 of the paper).

A uniform sample under a *space budget* rather than a known stream length:
start including every element (threshold ``τ = 1``); whenever the concise
footprint — singletons cost one slot, repeated items cost two (value +
count) — exceeds the budget, lower the inclusion probability to
``τ' = γ·τ`` and subject every sampled occurrence to an independent
``τ'/τ`` survival coin (binomial thinning), repeating until the sample
fits.  The invariant is that at any time the sample is distributed exactly
as a Bernoulli(``τ``) sample of the prefix so far.

As the paper notes, the final threshold ``τ_f`` "depends on the input
stream and the sequence of τ's in some complicated way, and no clean
theoretical bound for this algorithm is available" — which is precisely the
gap the Count Sketch fills.  It is reproduced here as the §2 baseline.
"""

from __future__ import annotations

import random
from collections.abc import Hashable

from repro.hashing.family import seeded_rng


class ConciseSamples:
    """A concise sample maintained under a footprint budget.

    Args:
        capacity: the footprint budget (singleton = 1 slot, pair = 2).
        shrink: the multiplicative threshold decay ``γ`` applied on
            overflow (``0 < γ < 1``).
        seed: coin-flip seed.
    """

    def __init__(self, capacity: int, shrink: float = 0.9, seed: int = 0) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        if not 0 < shrink < 1:
            raise ValueError("shrink must be in (0, 1)")
        self._capacity = capacity
        self._shrink = shrink
        self._rng: random.Random = seeded_rng(seed, "concise-samples")
        self._threshold = 1.0
        self._sample: dict[Hashable, int] = {}
        self._total = 0

    @property
    def threshold(self) -> float:
        """The current inclusion probability ``τ``."""
        return self._threshold

    @property
    def capacity(self) -> int:
        """The footprint budget."""
        return self._capacity

    def footprint(self) -> int:
        """Concise footprint: 1 slot per singleton, 2 per repeated item."""
        return sum(1 if c == 1 else 2 for c in self._sample.values())

    def update(self, item: Hashable, count: int = 1) -> None:
        """Offer ``count`` occurrences of ``item``."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        self._total += count
        for _ in range(count):
            if self._threshold >= 1.0 or self._rng.random() < self._threshold:
                self._sample[item] = self._sample.get(item, 0) + 1
                if self.footprint() > self._capacity:
                    self._evict()

    def _evict(self) -> None:
        """Lower the threshold and thin the sample until it fits."""
        while self.footprint() > self._capacity:
            new_threshold = self._threshold * self._shrink
            keep_probability = new_threshold / self._threshold
            for item in list(self._sample):
                survivors = sum(
                    1
                    for _ in range(self._sample[item])
                    if self._rng.random() < keep_probability
                )
                if survivors:
                    self._sample[item] = survivors
                else:
                    del self._sample[item]
            self._threshold = new_threshold

    def estimate(self, item: Hashable) -> float:
        """Horvitz–Thompson estimate: sampled occurrences over ``τ``."""
        return self._sample.get(item, 0) / self._threshold

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` items with the most sampled occurrences (scaled)."""
        ranked = sorted(
            self._sample.items(), key=lambda pair: pair[1], reverse=True
        )
        return [(item, c / self._threshold) for item, c in ranked[:k]]

    def counters_used(self) -> int:
        """Counters held: one per repeated sampled item."""
        return sum(1 for c in self._sample.values() if c > 1)

    def items_stored(self) -> int:
        """Stored objects: every distinct sampled item."""
        return len(self._sample)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._sample

    def __repr__(self) -> str:
        return (
            f"ConciseSamples(capacity={self._capacity}, "
            f"threshold={self._threshold:.3g}, distinct={len(self._sample)})"
        )
