"""The SpaceSaving algorithm (Metwally, Agrawal & El Abbadi, 2005).

Published after the paper, SpaceSaving became the counter-based state of
the art for exactly the problem the paper studies, so it is included as an
extension baseline.  With ``c`` counters: an arriving tracked item is
incremented; an untracked item *replaces* the minimum entry, inheriting its
count plus one, and records that inherited count as its error bound.

Guarantees (verified by the tests):

* every tracked count satisfies ``true ≤ estimate ≤ true + error``
  (overestimates, in contrast to the undercounting KPS);
* ``error ≤ min-count ≤ n/c``;
* every item with true count > ``n/c`` is tracked.

The min entry is found via the same :class:`~repro.core.heap.IndexedMinHeap`
substrate the Count Sketch tracker uses.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.heap import IndexedMinHeap


class SpaceSaving:
    """SpaceSaving with a fixed budget of ``capacity`` counters.

    Args:
        capacity: the number of (item, count, error) entries.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._heap = IndexedMinHeap()  # priority = estimated count
        self._errors: dict[Hashable, int] = {}
        self._total = 0

    @property
    def capacity(self) -> int:
        """The counter budget ``c``."""
        return self._capacity

    @property
    def total(self) -> int:
        """Total stream weight observed."""
        return self._total

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item`` (weighted variant)."""
        if count < 1:
            raise ValueError("count must be positive")
        self._total += count
        if item in self._heap:
            self._heap.add_to(item, count)
            return
        if len(self._heap) < self._capacity:
            self._heap.push(item, count)
            self._errors[item] = 0
            return
        evicted, min_count = self._heap.pop_min()
        del self._errors[evicted]
        self._heap.push(item, min_count + count)
        self._errors[item] = int(min_count)

    def estimate(self, item: Hashable) -> float:
        """Upper-bound estimate (0 for untracked items)."""
        if item in self._heap:
            return self._heap.priority(item)
        return 0.0

    def error(self, item: Hashable) -> int:
        """The overcount bound of a tracked item's estimate.

        Raises:
            KeyError: if ``item`` is not tracked.
        """
        return self._errors[item]

    def guaranteed_count(self, item: Hashable) -> float:
        """Lower bound on the true count: ``estimate − error``."""
        if item not in self._heap:
            return 0.0
        return self._heap.priority(item) - self._errors[item]

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` tracked items with the largest estimates."""
        return self._heap.as_sorted_list()[:k]

    def guaranteed_top(self, k: int) -> list[tuple[Hashable, float]]:
        """Tracked items whose *guaranteed* count beats the (k+1)-st estimate.

        These are provably among the true top items regardless of
        adversarial input — SpaceSaving's distinctive self-certification.
        """
        ranked = self._heap.as_sorted_list()
        if len(ranked) <= k:
            return ranked
        cutoff = ranked[k][1]
        return [
            (item, count)
            for item, count in ranked[:k]
            if count - self._errors[item] >= cutoff
        ]

    def counters_used(self) -> int:
        """Two numbers (count, error) per tracked entry."""
        return 2 * len(self._heap)

    def items_stored(self) -> int:
        """One stored object per tracked entry."""
        return len(self._heap)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._heap

    def __repr__(self) -> str:
        return f"SpaceSaving(capacity={self._capacity}, live={len(self._heap)})"
