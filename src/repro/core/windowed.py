"""Jumping-window frequent items via sketch subtraction.

An extension the paper's linearity makes nearly free: to track frequencies
over "the last W items" instead of the whole stream, keep a ring of ``B``
sub-sketches, each covering ``W/B`` consecutive items, all built with the
same hash functions.  The window estimate is the estimate under the *sum*
of the live sub-sketches; when the newest bucket fills, the oldest
sub-sketch is subtracted out and recycled.  This is the classic
jumping-window construction — the covered span never exceeds ``W`` and
stays above ``W − 2·W/B`` (staleness bounded by two buckets), at roughly
``B×`` the space of a single sketch.

The paper's search-engine motivation ("the most frequent queries handled
in some period of time", §1) is literally a windowed query; this module
closes that loop.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

import numpy as np

from repro.core.countsketch import CountSketch
from repro.core.sketch_base import coerce_counter_array
from repro.observability.registry import get_registry


class JumpingWindowSketch:
    """Count Sketch estimates over a jumping window of the last ``W`` items.

    Args:
        window: the window size ``W`` in items.
        buckets: number of sub-sketches ``B`` (granularity; the effective
            window wobbles by one bucket, ``W/B`` items).
        depth: rows per sub-sketch.
        width: counters per row per sub-sketch.
        seed: hash seed shared by every sub-sketch (required for the
            subtraction to be meaningful).
    """

    def __init__(
        self,
        window: int,
        buckets: int = 8,
        depth: int = 5,
        width: int = 256,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if not 1 <= buckets <= window:
            raise ValueError("need 1 <= buckets <= window")
        self._window = window
        self._bucket_capacity = max(1, window // buckets)
        self._num_buckets = buckets
        self._seed = seed
        self._depth = depth
        self._width = width
        # The aggregate sketch of every live bucket, maintained
        # incrementally; per-bucket sketches allow exact expiry.
        self._aggregate = CountSketch(depth, width, seed=seed)
        self._ring: list[CountSketch] = [CountSketch(depth, width, seed=seed)]
        self._current_fill = 0
        self._items_seen = 0
        registry = get_registry()
        self._m_rotations = registry.counter("window_rotations_total")
        self._m_expired = registry.counter("window_buckets_expired_total")

    @property
    def window(self) -> int:
        """The nominal window size ``W``."""
        return self._window

    @property
    def items_seen(self) -> int:
        """Total items ever observed."""
        return self._items_seen

    def covered(self) -> int:
        """Number of trailing items the current estimates cover.

        Never exceeds ``W``; once the stream is long enough it stays in
        ``(W − 2·W/B, W]`` (the lower edge is approached right after a
        bucket rotation, the upper just before one).
        """
        return self._aggregate.total_weight

    def update(self, item: Hashable, count: int = 1) -> None:
        """Observe ``count`` occurrences of ``item`` (newest position).

        The weight is applied in per-bucket batches — each batch fills the
        newest bucket up to its capacity with a single weighted sketch
        update (linearity, §3.2), then rotates exactly where an
        item-at-a-time loop would.  Cost is ``O(count / (W/B))`` sketch
        updates instead of ``O(count)``, with rotation, expiry, and
        :meth:`covered` semantics unchanged.
        """
        if count < 1:
            raise ValueError("count must be positive")
        remaining = count
        while remaining > 0:
            batch = min(remaining, self._bucket_capacity - self._current_fill)
            self._ring[-1].update(item, batch)
            self._aggregate.update(item, batch)
            self._items_seen += batch
            self._current_fill += batch
            remaining -= batch
            if self._current_fill >= self._bucket_capacity:
                self._rotate()

    def _rotate(self) -> None:
        """Seal the newest bucket; expire old ones so the next fill cannot
        push the covered span past ``W``."""
        self._ring.append(CountSketch(self._depth, self._width,
                                      seed=self._seed))
        self._current_fill = 0
        self._m_rotations.inc()
        # Invariant: after rotation, covered ≤ W − bucket_capacity, so the
        # newly filling bucket keeps covered ≤ W at every instant.
        while (
            self._aggregate.total_weight
            > self._window - self._bucket_capacity
            and len(self._ring) > 1
        ):
            expired = self._ring.pop(0)
            self._m_expired.inc()
            if expired.total_weight == 0:
                continue
            # Linearity (§3.2): subtraction removes the bucket exactly.
            self._aggregate.merge(-expired)

    def estimate(self, item: Hashable) -> float:
        """Estimated occurrences of ``item`` within the covered window."""
        return self._aggregate.estimate(item)

    # -- serialization -------------------------------------------------------

    def _sub_sketch_state(self, sketch: CountSketch) -> dict[str, Any]:
        """Counters + weight of one sub-sketch (hashes derive from seed)."""
        return {
            "counters": sketch.counters.copy(),
            "total_weight": sketch.total_weight,
        }

    def _restore_sub_sketch(self, state: dict[str, Any]) -> CountSketch:
        sketch = CountSketch(self._depth, self._width, seed=self._seed)
        sketch._counters = coerce_counter_array(
            state["counters"], self._depth, self._width
        )
        sketch._total_weight = state["total_weight"]
        return sketch

    def state_dict(self) -> dict[str, Any]:
        """Serialize the window: ring buckets, aggregate, and fill state.

        Every sub-sketch is built from the shared ``seed``, so only the
        counter blocks and weights travel; a restored window continues
        rotating and expiring exactly where the original would.
        """
        return {
            "window": self._window,
            "buckets": self._num_buckets,
            "depth": self._depth,
            "width": self._width,
            "seed": self._seed,
            "current_fill": self._current_fill,
            "items_seen": self._items_seen,
            "aggregate": self._sub_sketch_state(self._aggregate),
            "ring": [self._sub_sketch_state(s) for s in self._ring],
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> JumpingWindowSketch:
        """Rebuild a window serialized by :meth:`state_dict`.

        Raises:
            ValueError: if the ring is empty, the aggregate is not the
                sum of the ring buckets, or a counter block fails its own
                validation.
        """
        window = cls(
            state["window"],
            buckets=state["buckets"],
            depth=state["depth"],
            width=state["width"],
            seed=state["seed"],
        )
        ring_states = state["ring"]
        if not ring_states:
            raise ValueError("a jumping window needs at least one ring bucket")
        window._ring = [window._restore_sub_sketch(s) for s in ring_states]
        window._aggregate = window._restore_sub_sketch(state["aggregate"])
        window._current_fill = state["current_fill"]
        window._items_seen = state["items_seen"]
        total = np.zeros(
            (state["depth"], state["width"]), dtype=np.int64
        )
        for bucket in window._ring:
            total += bucket.counters
        if not np.array_equal(total, window._aggregate.counters):
            raise ValueError(
                "aggregate counters are not the sum of the ring buckets: "
                "the snapshot is internally inconsistent"
            )
        return window

    def counters_used(self) -> int:
        """Counters across the aggregate and all live ring buckets."""
        return (len(self._ring) + 1) * self._depth * self._width

    def items_stored(self) -> int:
        """No stream objects are stored."""
        return 0

    def __repr__(self) -> str:
        return (
            f"JumpingWindowSketch(window={self._window}, "
            f"buckets={self._num_buckets}, live={len(self._ring)}, "
            f"covered={self.covered()})"
        )
