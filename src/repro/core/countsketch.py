"""The COUNT SKETCH data structure (§3 of the paper).

A Count Sketch is a ``t × b`` array of integer counters plus ``t`` bucket
hash functions ``h_i : O → [b]`` and ``t`` pairwise-independent sign hash
functions ``s_i : O → {+1, −1}``.  The two operations of §3.2:

* ``ADD(C, q)``  — for each row ``i``, ``counter[i][h_i(q)] += s_i(q)``
  (generalized here to weighted updates, which is what makes the sketch a
  linear map and enables the §4.2 difference trick).
* ``ESTIMATE(C, q)`` — ``median_i { counter[i][h_i(q)] · s_i(q) }``.

Per row the estimate is unbiased (Lemma 1); the median over
``t = Θ(log n/δ)`` rows concentrates within ``8γ`` of the true count
(Lemmas 3–4) where ``γ = sqrt(Σ_{q' > k} n_{q'}² / b)`` (Eq. 5).

Because the update is a linear function of the frequency vector, two
sketches that share hash functions can be added, subtracted and scaled;
:meth:`CountSketch.__sub__` is the engine of the max-change algorithm.

The sketch also supports AMS-style second-moment estimation
(:meth:`estimate_f2`, :meth:`inner_product`): each row's self/inner dot
product is an unbiased F2/inner-product estimator — the paper builds on
exactly this machinery of Alon, Matias & Szegedy.
"""

from __future__ import annotations

import itertools
import math
import statistics
from fractions import Fraction
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.hashing.bucket import BucketHash, BucketHashFamily
from repro.hashing.encode import encode_key
from repro.hashing.family import HashFunction
from repro.hashing.mersenne import KWiseFamily, PolynomialHash
from repro.hashing.sign import SignHash, SignHashFamily
from repro.core.sketch_base import coerce_counter_array
from repro.observability.registry import MetricsRegistry, get_registry

#: Maximum number of items kept in the per-sketch hash-position cache.  The
#: cache trades memory for speed on streams with repeated items (every
#: realistic stream).  When full, a batch of the oldest entries is evicted
#: (dicts iterate in insertion order) rather than clearing wholesale —
#: a full clear makes every item a miss on high-cardinality streams, so the
#: dict grows to the limit, gets cleared, and repeats (cache thrash).
_POSITION_CACHE_LIMIT = 1 << 20

#: Fraction of the cache (as a right-shift) evicted per over-limit event.
_POSITION_CACHE_EVICT_SHIFT = 3


class _SketchMetrics:
    """Metric handles captured once per sketch when collection is on.

    Sketches built under the default :class:`~repro.observability.
    NullRegistry` carry ``_metrics = None`` instead, so the disabled-path
    cost is one attribute load and an ``is not None`` test per event.
    """

    __slots__ = (
        "updates", "estimates", "cache_hits", "cache_misses",
        "cache_evictions",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.updates = registry.counter("countsketch_updates_total")
        self.estimates = registry.counter("countsketch_estimates_total")
        self.cache_hits = registry.counter(
            "countsketch_position_cache_hits_total"
        )
        self.cache_misses = registry.counter(
            "countsketch_position_cache_misses_total"
        )
        self.cache_evictions = registry.counter(
            "countsketch_position_cache_evictions_total"
        )


class CountSketch:
    """A Count Sketch with ``depth`` rows of ``width`` counters each.

    Args:
        depth: number of hash-table rows ``t``.  Use an odd value so the
            median is a single row estimate; see
            :func:`repro.core.params.suggest_depth`.
        width: counters per row ``b``; see
            :func:`repro.core.params.width_for_approxtop`.
        seed: seed for the default hash families.  Two sketches built with
            the same ``(depth, width, seed)`` share hash functions and are
            therefore mergeable/subtractable, per §3.2.
        bucket_hashes: optional explicit bucket hash functions (one per
            row, each with ``range_size == width``); overrides ``seed``.
        sign_hashes: optional explicit sign hash functions (one per row).
    """

    __slots__ = (
        "_depth",
        "_width",
        "_seed",
        "_bucket_hashes",
        "_sign_hashes",
        "_counters",
        "_total_weight",
        "_position_cache",
        "_metrics",
    )

    def __init__(
        self,
        depth: int,
        width: int,
        seed: int = 0,
        bucket_hashes: Sequence[HashFunction] | None = None,
        sign_hashes: Sequence[HashFunction] | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._depth = depth
        self._width = width
        self._seed = seed

        if bucket_hashes is None:
            bucket_family = BucketHashFamily(
                KWiseFamily(independence=2, seed=seed, salt="buckets"), width
            )
            bucket_hashes = bucket_family.draw(depth)
        else:
            bucket_hashes = list(bucket_hashes)
            if len(bucket_hashes) != depth:
                raise ValueError(
                    f"expected {depth} bucket hashes, got {len(bucket_hashes)}"
                )
            for h in bucket_hashes:
                if h.range_size != width:
                    raise ValueError(
                        "every bucket hash must have range_size == width"
                    )
        if sign_hashes is None:
            sign_family = SignHashFamily(
                KWiseFamily(independence=2, seed=seed, salt="signs")
            )
            sign_hashes = sign_family.draw(depth)
        else:
            sign_hashes = list(sign_hashes)
            if len(sign_hashes) != depth:
                raise ValueError(
                    f"expected {depth} sign hashes, got {len(sign_hashes)}"
                )

        self._bucket_hashes = tuple(bucket_hashes)
        self._sign_hashes = tuple(sign_hashes)
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self._total_weight = 0
        self._position_cache: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
        registry = get_registry()
        self._metrics = _SketchMetrics(registry) if registry.enabled else None

    # -- basic properties ---------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of rows ``t``."""
        return self._depth

    @property
    def width(self) -> int:
        """Counters per row ``b``."""
        return self._width

    @property
    def seed(self) -> int:
        """Seed the default hash families were derived from."""
        return self._seed

    @property
    def total_weight(self) -> int:
        """Net weight of all updates applied (stream length for +1 updates)."""
        return self._total_weight

    @property
    def counters(self) -> np.ndarray:
        """A read-only view of the ``depth × width`` counter array."""
        view = self._counters.view()
        view.flags.writeable = False
        return view

    def counters_used(self) -> int:
        """Total number of counters: ``depth * width`` (the paper's ``tb``)."""
        return self._depth * self._width

    def items_stored(self) -> int:
        """A bare sketch stores no stream objects."""
        return 0

    # -- hashing ------------------------------------------------------------

    def _positions(self, key: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return (bucket indices, signs), one per row, for encoded ``key``."""
        metrics = self._metrics
        cached = self._position_cache.get(key)
        if cached is not None:
            if metrics is not None:
                metrics.cache_hits.inc()
            return cached
        if metrics is not None:
            metrics.cache_misses.inc()
        buckets = tuple(h(key) for h in self._bucket_hashes)
        signs = tuple(s(key) for s in self._sign_hashes)
        cache = self._position_cache
        if len(cache) >= _POSITION_CACHE_LIMIT:
            evict = max(1, _POSITION_CACHE_LIMIT >> _POSITION_CACHE_EVICT_SHIFT)
            for stale in list(itertools.islice(iter(cache), evict)):
                del cache[stale]
            if metrics is not None:
                metrics.cache_evictions.inc(evict)
        cache[key] = (buckets, signs)
        return buckets, signs

    # -- updates ------------------------------------------------------------

    def update(self, item: Hashable, count: int = 1) -> None:
        """Apply ``ADD`` with weight ``count`` (may be negative).

        ``update(q)`` is exactly the paper's ``ADD(C, q)``;
        ``update(q, -1)`` is the subtraction step of the §4.2 first pass.
        """
        key = encode_key(item)
        buckets, signs = self._positions(key)
        counters = self._counters
        for row in range(self._depth):
            counters[row, buckets[row]] += signs[row] * count
        self._total_weight += count
        if self._metrics is not None:
            self._metrics.updates.inc()

    def update_counts(self, counts: Mapping[Hashable, int]) -> None:
        """Apply a batch of weighted updates, one per distinct item.

        Feeding a pre-aggregated ``collections.Counter`` of a stream produces
        a sketch identical to item-at-a-time updates (linearity) at a
        fraction of the cost — the idiom the experiment harness uses.
        """
        for item, count in counts.items():
            self.update(item, count)

    def extend(self, stream: Iterable[Hashable]) -> None:
        """Apply ``ADD`` for each item of ``stream`` in order."""
        for item in stream:
            self.update(item)

    # -- queries ------------------------------------------------------------

    def estimate(self, item: Hashable) -> float:
        """Return ``ESTIMATE(C, item)``: the median of per-row estimates.

        With odd ``depth`` the result is an integer-valued float; with even
        ``depth`` the standard midpoint-average median is used.
        """
        key = encode_key(item)
        buckets, signs = self._positions(key)
        counters = self._counters
        row_estimates = [
            float(counters[row, buckets[row]]) * signs[row]
            for row in range(self._depth)
        ]
        if self._metrics is not None:
            self._metrics.estimates.inc()
        return statistics.median(row_estimates)

    def row_estimates(self, item: Hashable) -> list[float]:
        """Return the ``depth`` individual per-row estimates for ``item``.

        Exposed for the estimator ablation (median vs mean, experiment A1)
        and for the variance experiments.
        """
        key = encode_key(item)
        buckets, signs = self._positions(key)
        counters = self._counters
        return [
            float(counters[row, buckets[row]]) * signs[row]
            for row in range(self._depth)
        ]

    def row_values(self, item: Hashable) -> list[int]:
        """Return the per-row *signed counter readouts* for ``item`` as ints.

        ``row_values(q)[i]`` is exactly ``counters[i][h_i(q)] · s_i(q)`` —
        the integer whose median (over rows) is :meth:`estimate`.  Exposed
        for distributed scatter-gather: by §3.2 linearity the readouts of
        sharded sketches *sum* to the readouts of their merge, so a
        coordinator can add per-shard row values and take one median,
        bit-equal to querying the merged sketch.
        """
        key = encode_key(item)
        buckets, signs = self._positions(key)
        counters = self._counters
        return [
            int(counters[row, buckets[row]]) * signs[row]
            for row in range(self._depth)
        ]

    def estimate_mean(self, item: Hashable) -> float:
        """Estimate using the *mean* combiner §3.1 warns against.

        Unbiased but fragile: collisions with heavy hitters blow up single
        rows and the mean follows them, which is exactly why the paper uses
        the median.  Kept for the A1 ablation.
        """
        estimates = self.row_estimates(item)
        return sum(estimates) / len(estimates)

    def estimate_f2(self) -> float:
        """AMS-style estimate of the second frequency moment ``F2 = Σ n_q²``.

        Each row's sum of squared counters is an unbiased F2 estimator (the
        signs cancel cross terms in expectation); the median over rows
        concentrates.  The paper's γ (Eq. 5) is ``sqrt(F2_tail / b)``, so
        this estimator lets a deployment size ``b`` from the stream itself.
        """
        row_sums = (self._counters.astype(np.float64) ** 2).sum(axis=1)
        return float(np.median(row_sums))

    def inner_product(self, other: CountSketch) -> float:
        """Estimate ``Σ_q n_q(self) · n_q(other)`` from two sketches.

        Requires compatible sketches (shared hash functions).
        """
        self._require_compatible(other)
        row_dots = (
            self._counters.astype(np.float64)
            * other._counters.astype(np.float64)
        ).sum(axis=1)
        return float(np.median(row_dots))

    # -- sketch arithmetic (§3.2: we can add and subtract them) -----------

    def compatible_with(self, other: CountSketch) -> bool:
        """True if the sketches share shape *and* hash functions."""
        return (
            isinstance(other, CountSketch)
            and self._depth == other._depth
            and self._width == other._width
            and self._bucket_hashes == other._bucket_hashes
            and self._sign_hashes == other._sign_hashes
        )

    def _require_compatible(self, other: CountSketch) -> None:
        if not isinstance(other, CountSketch):
            raise TypeError(f"expected CountSketch, got {type(other).__name__}")
        if not self.compatible_with(other):
            raise ValueError(
                "sketches are not compatible: arithmetic requires identical "
                "shape and shared hash functions (build both with the same "
                "(depth, width, seed))"
            )

    def _with_counters(self, counters: np.ndarray, total: int) -> CountSketch:
        clone = CountSketch(
            self._depth,
            self._width,
            seed=self._seed,
            bucket_hashes=self._bucket_hashes,
            sign_hashes=self._sign_hashes,
        )
        clone._counters = counters
        clone._total_weight = total
        return clone

    def copy(self) -> CountSketch:
        """Return an independent copy of this sketch."""
        return self._with_counters(self._counters.copy(), self._total_weight)

    def __add__(self, other: CountSketch) -> CountSketch:
        """Sketch of the concatenation of the two underlying streams."""
        self._require_compatible(other)
        return self._with_counters(
            self._counters + other._counters,
            self._total_weight + other._total_weight,
        )

    def __sub__(self, other: CountSketch) -> CountSketch:
        """Sketch of the *difference* of the two frequency vectors.

        ``(a - b).estimate(q)`` estimates ``n_q(a) - n_q(b)`` — the quantity
        the §4.2 max-change algorithm ranks by.
        """
        self._require_compatible(other)
        return self._with_counters(
            self._counters - other._counters,
            self._total_weight - other._total_weight,
        )

    def __neg__(self) -> CountSketch:
        return self._with_counters(-self._counters, -self._total_weight)

    def scale(self, factor: int | float) -> CountSketch:
        """Return the sketch of the frequency vector scaled by ``factor``.

        Two kinds of factor keep the int64 counter invariant (and with it
        ``state_dict`` round-tripping and equality against integer
        sketches), and only those are accepted:

        * **Integral factors** (``3``, ``-1``, ``2.0``) multiply every
          counter exactly.
        * **Exact reciprocals** (``0.5``, ``0.25``, …): a float whose
          IEEE-754 value is exactly ``1/k`` for an integer ``k >= 2``
          **floor-divides** every counter by ``k``.  ``scale(0.5)`` is the
          TinyLFU aging/reset operation (halve every counter when the
          sample watermark is hit; see :mod:`repro.cache`) and the halving
          step of Hokusai-style time decay.

        Floor-division semantics are pinned deliberately: ``counter // k``
        rounds toward negative infinity, so ``5 -> 2``, ``-5 -> -3``, and
        a ``-1`` counter is a fixed point of repeated halving (it never
        decays to ``0``).  Every per-row readout of ``scale(0.5)`` is
        therefore within ``0.5`` of half the original readout, and so is
        the median estimate.  Callers using halving as TinyLFU aging must
        clear their doorkeeper in the same step — the doorkeeper's ones
        are one-epoch state that the halved sketch no longer accounts for.

        Only binary reciprocals are exactly representable as floats
        (``0.2`` is really ``0.200000…11``), so non-dyadic fractions are
        rejected rather than silently mis-scaled.

        Raises:
            TypeError: if ``factor`` is not a real number.
            ValueError: if ``factor`` is neither integral nor an exact
                ``1/k`` reciprocal.
        """
        if isinstance(factor, (bool, np.bool_)):
            raise TypeError("scale factor must be an integer, not a bool")
        if isinstance(factor, (float, np.floating)):
            value = float(factor)
            if value.is_integer():
                factor = int(value)
            else:
                ratio = (
                    Fraction(value) if math.isfinite(value) else None
                )
                if (
                    ratio is None
                    or ratio.numerator != 1
                    or ratio.denominator < 2
                ):
                    raise ValueError(
                        f"scale factor must be integral or an exact "
                        f"reciprocal 1/k, got {factor!r}: other fractions "
                        "would break the int64 counter invariant (0.5 "
                        "floor-halves every counter; 0.2 is not exactly "
                        "representable as a float)"
                    )
                divisor = ratio.denominator
                return self._with_counters(
                    self._counters // divisor,
                    self._total_weight // divisor,
                )
        elif isinstance(factor, (int, np.integer)):
            factor = int(factor)
        else:
            raise TypeError(
                f"scale factor must be an integer, "
                f"got {type(factor).__name__}"
            )
        return self._with_counters(
            self._counters * factor, self._total_weight * factor
        )

    def merge(self, other: CountSketch) -> None:
        """In-place ``+=`` of a compatible sketch (distributed aggregation)."""
        self._require_compatible(other)
        self._counters += other._counters
        self._total_weight += other._total_weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountSketch):
            return NotImplemented
        return self.compatible_with(other) and bool(
            np.array_equal(self._counters, other._counters)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashable
        raise TypeError("CountSketch is mutable and unhashable")

    # -- introspection / serialization ---------------------------------------

    def l2_norm(self) -> float:
        """The L2 norm of the counter array (useful as a residual gauge)."""
        return float(math.sqrt(float((self._counters.astype(np.float64) ** 2).sum())))

    def state_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict; the counters travel as an ndarray.

        Only sketches built with the default polynomial families (i.e.
        without explicit ``bucket_hashes``/``sign_hashes``) can be
        serialized this way; the hash functions are reconstructed from the
        recorded coefficients.

        The ``counters`` value is an independent int64 ``np.ndarray`` copy
        (not nested Python lists — boxing ``depth × width`` ints costs
        more than the sketch itself for wide configurations).  Callers
        that need JSON must ``.tolist()`` it themselves; durable snapshots
        should use :mod:`repro.store`, which packs the array as raw
        little-endian bytes behind a checksummed header.
        """
        bucket_coeffs = []
        sign_coeffs = []
        for h in self._bucket_hashes:
            if not isinstance(h, BucketHash) or not isinstance(
                h.base, PolynomialHash
            ):
                raise TypeError(
                    "state_dict supports only default polynomial hashing"
                )
            bucket_coeffs.append(list(h.base.coefficients))
        for s in self._sign_hashes:
            if not isinstance(s, SignHash) or not isinstance(
                s.base, PolynomialHash
            ):
                raise TypeError(
                    "state_dict supports only default polynomial hashing"
                )
            sign_coeffs.append(list(s.base.coefficients))
        return {
            "depth": self._depth,
            "width": self._width,
            "seed": self._seed,
            "bucket_coefficients": bucket_coeffs,
            "sign_coefficients": sign_coeffs,
            "total_weight": self._total_weight,
            "counters": self._counters.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> CountSketch:
        """Rebuild a sketch serialized by :meth:`state_dict`.

        Raises:
            ValueError: if the coefficient lists disagree with ``depth``,
                or the counter array is non-integral or mis-shaped.
        """
        depth = state["depth"]
        width = state["width"]
        bucket_coefficients = state["bucket_coefficients"]
        sign_coefficients = state["sign_coefficients"]
        if len(bucket_coefficients) != depth:
            raise ValueError(
                f"expected {depth} bucket coefficient lists (one per row), "
                f"got {len(bucket_coefficients)}"
            )
        if len(sign_coefficients) != depth:
            raise ValueError(
                f"expected {depth} sign coefficient lists (one per row), "
                f"got {len(sign_coefficients)}"
            )
        bucket_hashes = [
            BucketHash(PolynomialHash(tuple(coeffs)), width)
            for coeffs in bucket_coefficients
        ]
        sign_hashes = [
            SignHash(PolynomialHash(tuple(coeffs)))
            for coeffs in sign_coefficients
        ]
        sketch = cls(
            depth,
            width,
            seed=state.get("seed", 0),
            bucket_hashes=bucket_hashes,
            sign_hashes=sign_hashes,
        )
        sketch._counters = coerce_counter_array(state["counters"], depth, width)
        sketch._total_weight = state["total_weight"]
        return sketch

    def __repr__(self) -> str:
        return (
            f"CountSketch(depth={self._depth}, width={self._width}, "
            f"seed={self._seed}, total_weight={self._total_weight})"
        )
