"""The one-pass APPROXTOP algorithm of §3.2: Count Sketch + top-k heap.

For each stream item ``q_j`` the tracker

1. performs ``ADD(C, q_j)`` on its Count Sketch;
2. if ``q_j`` is already in the heap, increments its (exact) count;
3. otherwise, if ``ESTIMATE(C, q_j)`` exceeds the smallest count in the
   heap, evicts that smallest entry and inserts ``q_j`` with the estimate.

The heap therefore stores each member's estimated count *at insertion time*
plus exact increments afterwards (the "counting samples" idea the paper
borrows from Gibbons & Matias).  With the sketch dimensioned per Lemma 5 the
reported items all have true count ≥ (1−ε)·n_k, and every item with count
≥ (1+ε)·n_k is reported, w.h.p. (Theorem 1) — experiment E4 measures this.

Total space is ``O(t·b + k)``: the sketch counters plus one stored object
and one counter per heap entry.
"""

from __future__ import annotations

from collections.abc import Hashable
from typing import Any

from repro.core.countsketch import CountSketch
from repro.core.heap import IndexedMinHeap
from repro.observability.registry import MetricsRegistry, get_registry


class _TrackerMetrics:
    """Metric handles captured once per tracker when collection is on.

    ``topk_exact_increments_total / topk_updates_total`` is the tracker's
    exact-increment ratio (how often the hot "already in heap" path is
    taken); admissions + evictions measure heap churn.
    """

    __slots__ = (
        "updates", "admissions", "evictions", "rejections",
        "exact_increments",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.updates = registry.counter("topk_updates_total")
        self.admissions = registry.counter("topk_heap_admissions_total")
        self.evictions = registry.counter("topk_heap_evictions_total")
        self.rejections = registry.counter("topk_heap_rejections_total")
        self.exact_increments = registry.counter(
            "topk_exact_increments_total"
        )


class TopKTracker:
    """Track the approximate top-``k`` items of a stream in one pass.

    Args:
        k: number of frequent items to track (the heap capacity).
        sketch: a :class:`~repro.core.countsketch.CountSketch` to use; pass
            an explicit sketch to control hashing or to share hash functions
            across trackers.  Mutually exclusive with ``depth``/``width``.
        depth: rows of the internal sketch (when ``sketch`` is not given).
        width: counters per row of the internal sketch.
        seed: seed for the internal sketch.
        exact_heap_counts: keep exact incremental counts for heap members
            (the paper's step 2).  Setting this to ``False`` re-estimates a
            heap member from the sketch on every recurrence instead — the A3
            ablation, which is both slower and noisier.
    """

    def __init__(
        self,
        k: int,
        sketch: CountSketch | None = None,
        depth: int | None = None,
        width: int | None = None,
        seed: int = 0,
        exact_heap_counts: bool = True,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if sketch is None:
            if depth is None or width is None:
                raise ValueError(
                    "provide either a sketch or both depth and width"
                )
            sketch = CountSketch(depth, width, seed=seed)
        elif depth is not None or width is not None:
            raise ValueError("pass either a sketch or depth/width, not both")
        self._k = k
        self._sketch = sketch
        self._heap = IndexedMinHeap()
        self._exact_heap_counts = exact_heap_counts
        self._items_processed = 0
        registry = get_registry()
        self._metrics = _TrackerMetrics(registry) if registry.enabled else None

    @property
    def k(self) -> int:
        """The heap capacity."""
        return self._k

    @property
    def sketch(self) -> CountSketch:
        """The underlying Count Sketch."""
        return self._sketch

    @property
    def items_processed(self) -> int:
        """Total stream weight processed so far."""
        return self._items_processed

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item`` (the §3.2 loop body)."""
        if count < 1:
            raise ValueError("count must be a positive number of occurrences")
        self._sketch.update(item, count)
        self._items_processed += count
        metrics = self._metrics
        if metrics is not None:
            metrics.updates.inc()
        heap = self._heap
        if item in heap:
            if self._exact_heap_counts:
                heap.add_to(item, count)
                if metrics is not None:
                    metrics.exact_increments.inc()
            else:
                heap.update(item, self._sketch.estimate(item))
            return
        estimate = self._sketch.estimate(item)
        if len(heap) < self._k:
            heap.push(item, estimate)
            if metrics is not None:
                metrics.admissions.inc()
        else:
            __, smallest = heap.min()
            if estimate > smallest:
                heap.pop_min()
                heap.push(item, estimate)
                if metrics is not None:
                    metrics.admissions.inc()
                    metrics.evictions.inc()
            elif metrics is not None:
                metrics.rejections.inc()

    def top(self, k: int | None = None) -> list[tuple[Hashable, float]]:
        """Return up to ``k`` (item, tracked count) pairs, heaviest first.

        ``k`` defaults to the tracker's capacity; it may be smaller to read
        a prefix of the list.
        """
        if k is None:
            k = self._k
        if k < 0:
            raise ValueError("k must be nonnegative")
        return self._heap.as_sorted_list()[:k]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._heap

    def estimate(self, item: Hashable) -> float:
        """Best available count estimate for ``item``.

        Heap members return their tracked (exact-incremented) count; other
        items fall back to the sketch estimate.
        """
        if item in self._heap:
            return self._heap.priority(item)
        return self._sketch.estimate(item)

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Serialize the tracker: sketch state plus the heap, exactly.

        The heap entries are recorded in internal array order (see
        :meth:`~repro.core.heap.IndexedMinHeap.entries`), so a restored
        tracker's :meth:`top` output is bit-for-bit identical — including
        tie-breaks — and further updates continue as if uninterrupted.
        """
        return {
            "k": self._k,
            "exact_heap_counts": self._exact_heap_counts,
            "items_processed": self._items_processed,
            "sketch": self._sketch.state_dict(),
            "heap": self._heap.entries(),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> TopKTracker:
        """Rebuild a tracker serialized by :meth:`state_dict`.

        Raises:
            ValueError: if the heap holds more than ``k`` entries or the
                nested sketch state fails its own validation.
        """
        heap = IndexedMinHeap.from_entries(
            [(item, priority) for item, priority in state["heap"]]
        )
        if len(heap) > state["k"]:
            raise ValueError(
                f"heap holds {len(heap)} entries but k={state['k']}"
            )
        tracker = cls(
            state["k"],
            sketch=CountSketch.from_state_dict(state["sketch"]),
            exact_heap_counts=state["exact_heap_counts"],
        )
        tracker._heap = heap
        tracker._items_processed = state["items_processed"]
        return tracker

    def counters_used(self) -> int:
        """Sketch counters plus one count per heap entry (paper: ``tb + k``)."""
        return self._sketch.counters_used() + len(self._heap)

    def items_stored(self) -> int:
        """Stream objects stored: the heap members only."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"TopKTracker(k={self._k}, sketch={self._sketch!r}, "
            f"heap_size={len(self._heap)})"
        )
