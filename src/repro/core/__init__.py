"""The paper's core contribution: Count Sketch and the algorithms on top.

* :class:`~repro.core.countsketch.CountSketch` — the §3 data structure
  (``ADD`` / ``ESTIMATE``, plus the sketch arithmetic of §3.2).
* :class:`~repro.core.topk.TopKTracker` — the §3.2 one-pass APPROXTOP
  algorithm (sketch + heap of the top-k estimated items).
* :class:`~repro.core.candidate_top.CandidateTopTracker` — the §4.1 usage:
  keep ``l ≥ k`` candidates so the true top k are contained w.h.p.; optional
  second pass for exact counts.
* :class:`~repro.core.maxchange.MaxChangeFinder` — the §4.2 two-pass
  max-change algorithm over a pair of streams.
* :mod:`repro.core.params` — executable versions of the paper's parameter
  settings (Eq. 5's γ, Lemma 5's bound on ``b``, ``t = Θ(log n/δ)``).
* :class:`~repro.core.heap.IndexedMinHeap` — the heap substrate.
"""

from repro.core.candidate_top import CandidateTopTracker
from repro.core.countsketch import CountSketch
from repro.core.group_testing import GroupTestingSketch
from repro.core.heap import IndexedMinHeap
from repro.core.maxchange import ChangeReport, MaxChangeFinder
from repro.core.params import (
    SketchParameters,
    gamma,
    suggest_depth,
    width_for_approxtop,
)
from repro.core.hierarchical import (
    HierarchicalCountSketch,
    heavy_change_items,
)
from repro.core.relative_change import (
    RelativeChangeFinder,
    RelativeChangeReport,
)
from repro.core.sketch_base import FrequencyEstimator, StreamSummary
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch

__all__ = [
    "CandidateTopTracker",
    "ChangeReport",
    "CountSketch",
    "FrequencyEstimator",
    "GroupTestingSketch",
    "HierarchicalCountSketch",
    "IndexedMinHeap",
    "JumpingWindowSketch",
    "MaxChangeFinder",
    "RelativeChangeFinder",
    "RelativeChangeReport",
    "SketchParameters",
    "SparseCountSketch",
    "StreamSummary",
    "TopKTracker",
    "VectorizedCountSketch",
    "gamma",
    "heavy_change_items",
    "suggest_depth",
    "width_for_approxtop",
]
