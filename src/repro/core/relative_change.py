"""Max-*percent*-change finder — the paper's §5 open problem.

The conclusion notes: "there is still an open problem of finding the
elements with the max-percent change, or other objective functions that
somehow balance absolute and relative changes."  This module implements a
practical two-sketch heuristic for it, documented as an extension rather
than a claim from the paper.

Design: keep *separate* sketches for ``S1`` and ``S2`` (same hash
functions, so their difference is also available exactly).  In the second
pass, score each first-encountered item by a smoothed relative change

    score(q) = |n̂₂(q) − n̂₁(q)| / max(n̂₁(q), floor)

and keep exact counts for the ``l`` highest-scoring items, reporting the
top ``k`` by exact relative change.  The ``floor`` (additive smoothing)
is what "balances absolute and relative changes": without it, noise items
with n̂₁ ≈ 0 dominate; as ``floor → ∞`` the objective degrades to absolute
change.  The guarantees are inherited per sketch (Lemma 4 per stream),
but the ratio of two estimates carries no clean w.h.p. bound — which is
presumably why the paper left it open.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable

from repro.core.countsketch import CountSketch
from repro.core.heap import IndexedMinHeap


@dataclass(frozen=True)
class RelativeChangeReport:
    """One item's result from the max-percent-change heuristic."""

    item: Hashable
    count_before: int
    count_after: int

    @property
    def ratio(self) -> float:
        """Exact smoothed growth ratio ``after / max(before, 1)``."""
        return self.count_after / max(self.count_before, 1)

    @property
    def percent_change(self) -> float:
        """Exact smoothed percent change (positive = growth)."""
        return (self.count_after - self.count_before) / max(
            self.count_before, 1
        )


class RelativeChangeFinder:
    """Two-pass max-percent-change finder (extension; see module docs).

    Args:
        l: exact-count candidate set size.
        floor: additive smoothing floor for the pass-2 score; items whose
            before-estimate is below this are scored as if it were this.
        depth: rows per sketch.
        width: counters per row per sketch.
        seed: hash seed (shared by both sketches).
    """

    def __init__(
        self,
        l: int,
        floor: float = 8.0,
        depth: int = 5,
        width: int = 512,
        seed: int = 0,
    ) -> None:
        if l < 1:
            raise ValueError("l must be at least 1")
        if floor <= 0:
            raise ValueError("floor must be positive")
        self._l = l
        self._floor = floor
        self._before_sketch = CountSketch(depth, width, seed=seed)
        self._after_sketch = CountSketch(depth, width, seed=seed)
        self._candidates = IndexedMinHeap()  # priority = score
        self._evicted: set[Hashable] = set()
        self._before_counts: dict[Hashable, int] = {}
        self._after_counts: dict[Hashable, int] = {}

    @property
    def l(self) -> int:
        """Candidate set capacity."""
        return self._l

    def first_pass(
        self, before: Iterable[Hashable], after: Iterable[Hashable]
    ) -> None:
        """Sketch each stream separately (shared hash functions)."""
        for item in before:
            self._before_sketch.update(item)
        for item in after:
            self._after_sketch.update(item)

    def _score(self, item: Hashable) -> float:
        before = self._before_sketch.estimate(item)
        after = self._after_sketch.estimate(item)
        return abs(after - before) / max(before, self._floor)

    def _admit(self, item: Hashable) -> bool:
        if item in self._candidates:
            return True
        if item in self._evicted:
            return False
        score = self._score(item)
        if len(self._candidates) < self._l:
            self._candidates.push(item, score)
        else:
            __, smallest = self._candidates.min()
            if score <= smallest:
                self._evicted.add(item)
                return False
            loser, __ = self._candidates.pop_min()
            self._evicted.add(loser)
            self._before_counts.pop(loser, None)
            self._after_counts.pop(loser, None)
            self._candidates.push(item, score)
        self._before_counts.setdefault(item, 0)
        self._after_counts.setdefault(item, 0)
        return True

    def second_pass(
        self, before: Iterable[Hashable], after: Iterable[Hashable]
    ) -> None:
        """Exact-count the highest-scoring candidates (S1 then S2)."""
        for item in before:
            if self._admit(item):
                self._before_counts[item] += 1
        for item in after:
            if self._admit(item):
                self._after_counts[item] += 1

    def report(self, k: int, min_after: int = 0) -> list[RelativeChangeReport]:
        """The ``k`` candidates with the largest exact |percent change|.

        Args:
            k: how many items to report.
            min_after: optionally require at least this many occurrences
                in the second stream (suppresses vanished-noise items when
                hunting for *growth*).
        """
        if k < 0:
            raise ValueError("k must be nonnegative")
        reports = [
            RelativeChangeReport(
                item=item,
                count_before=self._before_counts[item],
                count_after=self._after_counts[item],
            )
            for item, __ in self._candidates
            if self._after_counts[item] >= min_after
        ]
        # Rank by the same smoothed objective the admission score uses, so
        # the floor consistently balances absolute vs relative change.
        reports.sort(
            key=lambda r: abs(r.count_after - r.count_before)
            / max(r.count_before, self._floor),
            reverse=True,
        )
        return reports[:k]

    def counters_used(self) -> int:
        """Both sketches plus two exact counters per candidate."""
        return (
            self._before_sketch.counters_used()
            + self._after_sketch.counters_used()
            + 2 * len(self._candidates)
        )

    def items_stored(self) -> int:
        """Stored stream objects: the candidate set."""
        return len(self._candidates)

    def __repr__(self) -> str:
        return (
            f"RelativeChangeFinder(l={self._l}, floor={self._floor}, "
            f"candidates={len(self._candidates)})"
        )
