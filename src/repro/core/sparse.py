"""A sparse-backed Count Sketch for over-provisioned widths.

Lemma 5 widths can be enormous (E4 runs ``b ≈ 1.3·10⁵`` at ε = 0.25), yet
a stream with ``m`` distinct items touches at most ``m`` buckets per row.
This backend stores each row as a dict of touched buckets instead of a
dense array: memory is ``O(t · min(m, b))`` while estimates are
*bit-for-bit identical* to the dense :class:`~repro.core.countsketch.
CountSketch` built with the same ``(depth, width, seed)`` — both use the
same default hash families, and :meth:`to_dense` / equality against a
dense sketch are tested to agree exactly.

Use the dense sketch when ``m`` approaches ``b`` (arrays win on constant
factors); use this one when the analysis demands a wide ``b`` but the
stream's support is small.
"""

from __future__ import annotations

import statistics
from collections.abc import Hashable, Iterable, Mapping
from typing import TYPE_CHECKING, Any

from repro.hashing.bucket import BucketHashFamily
from repro.hashing.encode import encode_key
from repro.hashing.mersenne import KWiseFamily
from repro.hashing.sign import SignHashFamily
from repro.observability.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # runtime import stays local to to_dense (circularity)
    from repro.core.countsketch import CountSketch


class _SparseMetrics:
    """Metric handles captured once per sparse sketch when collection is on."""

    __slots__ = ("updates", "estimates")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.updates = registry.counter("sparse_countsketch_updates_total")
        self.estimates = registry.counter(
            "sparse_countsketch_estimates_total"
        )


class SparseCountSketch:
    """A Count Sketch whose rows are dicts of touched buckets.

    Args:
        depth: number of rows ``t``.
        width: nominal counters per row ``b`` (hash range; not allocated).
        seed: hash seed — identical to the dense sketch's derivation, so
            equal ``(depth, width, seed)`` means identical estimates.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._depth = depth
        self._width = width
        self._seed = seed
        bucket_family = BucketHashFamily(
            KWiseFamily(independence=2, seed=seed, salt="buckets"), width
        )
        sign_family = SignHashFamily(
            KWiseFamily(independence=2, seed=seed, salt="signs")
        )
        self._bucket_hashes = tuple(bucket_family.draw(depth))
        self._sign_hashes = tuple(sign_family.draw(depth))
        self._rows: list[dict[int, int]] = [{} for __ in range(depth)]
        self._total_weight = 0
        registry = get_registry()
        self._metrics = _SparseMetrics(registry) if registry.enabled else None

    @property
    def depth(self) -> int:
        """Number of rows ``t``."""
        return self._depth

    @property
    def width(self) -> int:
        """Nominal width ``b`` (the hash range)."""
        return self._width

    @property
    def seed(self) -> int:
        """The hash seed."""
        return self._seed

    @property
    def total_weight(self) -> int:
        """Net weight of all updates applied."""
        return self._total_weight

    def update(self, item: Hashable, count: int = 1) -> None:
        """Apply ``ADD`` with weight ``count`` (may be negative)."""
        key = encode_key(item)
        for row_index in range(self._depth):
            bucket = self._bucket_hashes[row_index](key)
            delta = self._sign_hashes[row_index](key) * count
            row = self._rows[row_index]
            value = row.get(bucket, 0) + delta
            if value:
                row[bucket] = value
            else:
                row.pop(bucket, None)  # keep the representation minimal
        self._total_weight += count
        if self._metrics is not None:
            self._metrics.updates.inc()

    def update_counts(self, counts: Mapping[Hashable, int]) -> None:
        """Apply a batch of weighted updates, one per distinct item."""
        for item, count in counts.items():
            self.update(item, count)

    def extend(self, stream: Iterable[Hashable]) -> None:
        """Apply ``ADD`` for each item of ``stream``."""
        for item in stream:
            self.update(item)

    def row_estimates(self, item: Hashable) -> list[float]:
        """The ``depth`` individual per-row estimates for ``item``."""
        key = encode_key(item)
        return [
            float(self._rows[i].get(self._bucket_hashes[i](key), 0))
            * self._sign_hashes[i](key)
            for i in range(self._depth)
        ]

    def estimate(self, item: Hashable) -> float:
        """``ESTIMATE``: the median of per-row signed bucket values."""
        if self._metrics is not None:
            self._metrics.estimates.inc()
        return statistics.median(self.row_estimates(item))

    def estimate_f2(self) -> float:
        """AMS-style second-moment estimate (median of row sums of squares).

        Matches the dense sketch's :meth:`~repro.core.countsketch.
        CountSketch.estimate_f2` exactly, so the observable error
        envelopes in :mod:`repro.analysis.confidence` work unchanged.
        """
        row_sums = [
            float(sum(value * value for value in row.values()))
            for row in self._rows
        ]
        return statistics.median(row_sums)

    # -- linearity -------------------------------------------------------------

    def compatible_with(self, other: SparseCountSketch) -> bool:
        """True iff sketch arithmetic with ``other`` is meaningful."""
        return (
            isinstance(other, SparseCountSketch)
            and self._depth == other._depth
            and self._width == other._width
            and self._bucket_hashes == other._bucket_hashes
            and self._sign_hashes == other._sign_hashes
        )

    def merge(self, other: SparseCountSketch) -> None:
        """In-place ``+=`` of a compatible sparse sketch."""
        if not isinstance(other, SparseCountSketch):
            raise TypeError(
                f"expected SparseCountSketch, got {type(other).__name__}"
            )
        if not self.compatible_with(other):
            raise ValueError(
                "sketches are not compatible: build both with the same "
                "(depth, width, seed)"
            )
        for mine, theirs in zip(self._rows, other._rows, strict=True):
            for bucket, value in theirs.items():
                merged = mine.get(bucket, 0) + value
                if merged:
                    mine[bucket] = merged
                else:
                    mine.pop(bucket, None)
        self._total_weight += other._total_weight

    def __add__(self, other: SparseCountSketch) -> SparseCountSketch:
        result = SparseCountSketch(self._depth, self._width, seed=self._seed)
        result.merge(self)
        result.merge(other)
        return result

    def __sub__(self, other: SparseCountSketch) -> SparseCountSketch:
        if not isinstance(other, SparseCountSketch):
            raise TypeError(
                f"expected SparseCountSketch, got {type(other).__name__}"
            )
        if not self.compatible_with(other):
            raise ValueError("sketches are not compatible")
        result = SparseCountSketch(self._depth, self._width, seed=self._seed)
        result.merge(self)
        negated = SparseCountSketch(self._depth, self._width, seed=self._seed)
        negated._rows = [
            {bucket: -value for bucket, value in row.items()}
            for row in other._rows
        ]
        negated._total_weight = -other._total_weight
        result.merge(negated)
        return result

    # -- interop and accounting ---------------------------------------------------

    def to_dense(self) -> CountSketch:
        """Materialize as a dense :class:`~repro.core.countsketch.CountSketch`.

        The result compares equal to a dense sketch built with the same
        parameters and fed the same updates.
        """
        from repro.core.countsketch import CountSketch

        dense = CountSketch(self._depth, self._width, seed=self._seed)
        counters = dense._counters
        for row_index, row in enumerate(self._rows):
            for bucket, value in row.items():
                counters[row_index, bucket] = value
        dense._total_weight = self._total_weight
        return dense

    def buckets_touched(self) -> int:
        """Nonzero buckets across all rows — the sketch's actual memory."""
        return sum(len(row) for row in self._rows)

    def counters_used(self) -> int:
        """Actual counters held (touched buckets), not the nominal ``t·b``."""
        return self.buckets_touched()

    def nominal_counters(self) -> int:
        """The dense-equivalent counter count ``t·b``."""
        return self._depth * self._width

    def items_stored(self) -> int:
        """A bare sketch stores no stream objects."""
        return 0

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict of touched buckets per row.

        The hash functions derive from ``seed``, so only the dimensions,
        seed, and the per-row ``{bucket: value}`` tables travel; the
        round-trip is exact (and stays sparse — untouched buckets are
        never materialized).
        """
        return {
            "depth": self._depth,
            "width": self._width,
            "seed": self._seed,
            "total_weight": self._total_weight,
            "rows": [dict(row) for row in self._rows],
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> SparseCountSketch:
        """Rebuild a sketch serialized by :meth:`state_dict`.

        Raises:
            ValueError: if the row count disagrees with ``depth``, a
                bucket index falls outside ``[0, width)``, a stored value
                is zero (the representation keeps only touched buckets),
                or a bucket/value is not an integer.
        """
        depth = state["depth"]
        width = state["width"]
        rows = state["rows"]
        if len(rows) != depth:
            raise ValueError(
                f"expected {depth} rows (one per hash row), got {len(rows)}"
            )
        cleaned: list[dict[int, int]] = []
        for row in rows:
            table: dict[int, int] = {}
            for bucket, value in row.items():
                bucket = int(bucket)  # JSON round-trips dict keys as str
                if not 0 <= bucket < width:
                    raise ValueError(
                        f"bucket index {bucket} outside [0, {width})"
                    )
                if isinstance(value, float) and not value.is_integer():
                    raise ValueError(
                        "counter values must be integral: the int64 "
                        "counter invariant rejects float counter data"
                    )
                value = int(value)
                if value == 0:
                    raise ValueError(
                        "zero-valued buckets must be absent from a sparse "
                        "row (the representation keeps touched buckets "
                        "only)"
                    )
                table[bucket] = value
            cleaned.append(table)
        sketch = cls(depth, width, seed=state["seed"])
        sketch._rows = cleaned
        sketch._total_weight = state["total_weight"]
        return sketch

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseCountSketch):
            return self.compatible_with(other) and self._rows == other._rows
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashable
        raise TypeError("SparseCountSketch is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"SparseCountSketch(depth={self._depth}, width={self._width}, "
            f"seed={self._seed}, touched={self.buckets_touched()})"
        )
