"""Group-testing heavy-hitter decoding (Cormode–Muthukrishnan style).

A second route (besides the dyadic hierarchy of
:mod:`repro.core.hierarchical`) to *enumerating* heavy items from sketch
state alone: augment each Count Sketch cell with one counter per item-id
bit.  An update for item ``q`` adds ``s_i(q)·count`` to the cell's total
and to the bit-counter of every set bit of ``q``.  If a single heavy item
dominates its cell, each of its id bits is recovered by majority: bit
``j`` is 1 iff the bit-counter holds more than half the cell's total
(all magnitudes taken absolutely, so signed/turnstile streams decode
too).  Decoded candidates are then *verified* against the cell totals
(a median estimate across rows), which discards garbage decodes from
contested cells.

Versus the dyadic hierarchy: one structure instead of ``domain_bits``
sketches, one bucket hash per row per update (the hierarchy hashes once
per level), at the price of ``domain_bits + 1`` counters per cell and a
per-cell (not global) dominance requirement.  The tests compare both on
the same workloads.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.hashing.bucket import BucketHashFamily
from repro.hashing.mersenne import KWiseFamily
from repro.hashing.sign import SignHashFamily


class GroupTestingSketch:
    """Count Sketch cells augmented with per-bit counters for decoding.

    Items must be integers in ``[0, 2**domain_bits)`` (map arbitrary keys
    through :func:`repro.hashing.encode.encode_key` first and keep the
    mapping if you need to translate back).

    Args:
        domain_bits: bit width of the item domain.
        depth: number of rows.
        width: cells per row.
        seed: hash seed.
    """

    def __init__(
        self,
        domain_bits: int = 24,
        depth: int = 3,
        width: int = 256,
        seed: int = 0,
    ) -> None:
        if not 1 <= domain_bits <= 62:
            raise ValueError("domain_bits must be in [1, 62]")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if width < 1:
            raise ValueError("width must be at least 1")
        self._domain_bits = domain_bits
        self._depth = depth
        self._width = width
        self._seed = seed
        bucket_family = BucketHashFamily(
            KWiseFamily(independence=2, seed=seed, salt="gt-buckets"), width
        )
        sign_family = SignHashFamily(
            KWiseFamily(independence=2, seed=seed, salt="gt-signs")
        )
        self._bucket_hashes = tuple(bucket_family.draw(depth))
        self._sign_hashes = tuple(sign_family.draw(depth))
        # counters[row, cell, 0] = signed total; [row, cell, 1 + j] = the
        # signed total restricted to items whose bit j is set.
        self._counters = np.zeros(
            (depth, width, domain_bits + 1), dtype=np.int64
        )
        self._total_weight = 0

    @property
    def domain_bits(self) -> int:
        """Bit width of the item domain."""
        return self._domain_bits

    @property
    def domain_size(self) -> int:
        """Exclusive upper bound of the item domain."""
        return 1 << self._domain_bits

    @property
    def total_weight(self) -> int:
        """Net weight of all updates applied."""
        return self._total_weight

    def _check_item(self, item: object) -> None:
        if not isinstance(item, int) or isinstance(item, bool):
            raise TypeError("group-testing sketches require integer items")
        if not 0 <= item < self.domain_size:
            raise ValueError(
                f"item {item} outside [0, 2**{self._domain_bits})"
            )

    def update(self, item: int, count: int = 1) -> None:
        """Apply a (possibly negative) weighted update."""
        self._check_item(item)
        for row in range(self._depth):
            cell = self._bucket_hashes[row](item)
            delta = self._sign_hashes[row](item) * count
            counters = self._counters[row, cell]
            counters[0] += delta
            bits = item
            bit_index = 1
            while bits:
                if bits & 1:
                    counters[bit_index] += delta
                bits >>= 1
                bit_index += 1
        self._total_weight += count

    def extend(self, stream: Iterable[int]) -> None:
        """Update once per item of ``stream`` (pre-aggregated)."""
        from collections import Counter

        for item, count in Counter(stream).items():
            self.update(item, count)

    def estimate(self, item: int) -> float:
        """Median-of-rows estimate from the cell totals (plain Count
        Sketch semantics)."""
        self._check_item(item)
        row_estimates = [
            float(self._counters[row, self._bucket_hashes[row](item), 0])
            * self._sign_hashes[row](item)
            for row in range(self._depth)
        ]
        return float(np.median(row_estimates))

    def _decode_cell(self, row: int, cell: int) -> int | None:
        """Majority-decode the dominant item of a cell, if any."""
        counters = self._counters[row, cell]
        total = counters[0]
        if total == 0:
            return None
        half = abs(total) / 2.0
        item = 0
        for bit in range(self._domain_bits):
            value = counters[1 + bit]
            # The dominant item's bit counters carry (nearly) the whole
            # total when set and (nearly) nothing when clear; contested
            # cells produce bits that fail verification later.
            if abs(value) > half and (value > 0) == (total > 0):
                item |= 1 << bit
        return item

    def heavy_hitters(
        self, threshold: float, absolute: bool = False
    ) -> list[tuple[int, float]]:
        """Decode and verify all items with estimated count ≥ threshold.

        Args:
            threshold: minimum estimated count (positive).
            absolute: threshold ``|estimate|`` (for turnstile/difference
                data).

        Returns:
            (item, estimated count) pairs, largest magnitude first.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        candidates: set[int] = set()
        for row in range(self._depth):
            totals = self._counters[row, :, 0]
            hot_cells = np.nonzero(np.abs(totals) >= threshold)[0]
            for cell in hot_cells:
                decoded = self._decode_cell(row, int(cell))
                if decoded is not None:
                    candidates.add(decoded)
        results = []
        for item in candidates:
            estimate = self.estimate(item)
            value = abs(estimate) if absolute else estimate
            if value >= threshold:
                results.append((item, estimate))
        results.sort(key=lambda pair: abs(pair[1]), reverse=True)
        return results

    # -- linearity -------------------------------------------------------------

    def compatible_with(self, other: GroupTestingSketch) -> bool:
        """True iff arithmetic with ``other`` is meaningful."""
        return (
            isinstance(other, GroupTestingSketch)
            and self._domain_bits == other._domain_bits
            and self._depth == other._depth
            and self._width == other._width
            and self._seed == other._seed
        )

    def __sub__(self, other: GroupTestingSketch) -> GroupTestingSketch:
        """The sketch of the difference of the two frequency vectors."""
        if not isinstance(other, GroupTestingSketch):
            raise TypeError(
                f"expected GroupTestingSketch, got {type(other).__name__}"
            )
        if not self.compatible_with(other):
            raise ValueError("sketches are not compatible")
        result = GroupTestingSketch(
            self._domain_bits, self._depth, self._width, self._seed
        )
        result._counters = self._counters - other._counters
        result._total_weight = self._total_weight - other._total_weight
        return result

    def counters_used(self) -> int:
        """Total counters: ``depth · width · (domain_bits + 1)``."""
        return self._depth * self._width * (self._domain_bits + 1)

    def items_stored(self) -> int:
        """No stream objects are stored."""
        return 0

    def __repr__(self) -> str:
        return (
            f"GroupTestingSketch(domain_bits={self._domain_bits}, "
            f"depth={self._depth}, width={self._width}, seed={self._seed})"
        )
