"""An indexed binary min-heap with updatable priorities.

The §3.2 tracker keeps "a heap of the top k elements seen so far" whose
entries must support three operations the standard library's ``heapq`` does
not offer directly: membership testing, in-place priority increase (when an
item already in the heap recurs, its exact count is incremented), and
eviction of the minimum when a new item displaces it.  This indexed heap
provides all three in ``O(log n)`` with an item→slot map.

Priorities are floats (estimated counts at insertion time may be fractional
medians); ties are broken arbitrarily but deterministically by heap order.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator


class IndexedMinHeap:
    """A binary min-heap over unique hashable items with float priorities."""

    def __init__(self) -> None:
        self._items: list[Hashable] = []
        self._priorities: list[float] = []
        self._slots: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._slots

    def __iter__(self) -> Iterator[tuple[Hashable, float]]:
        """Iterate over (item, priority) pairs in arbitrary (heap) order."""
        return iter(zip(self._items, self._priorities, strict=True))

    def priority(self, item: Hashable) -> float:
        """Return the current priority of ``item``.

        Raises:
            KeyError: if ``item`` is not in the heap.
        """
        return self._priorities[self._slots[item]]

    def min(self) -> tuple[Hashable, float]:
        """Return the (item, priority) pair with the smallest priority.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._items:
            raise IndexError("min() on empty heap")
        return self._items[0], self._priorities[0]

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` with ``priority``.

        Raises:
            ValueError: if ``item`` is already present (use
                :meth:`update` to change an existing priority).
        """
        if item in self._slots:
            raise ValueError(f"item {item!r} already in heap")
        self._items.append(item)
        self._priorities.append(priority)
        self._slots[item] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def pop_min(self) -> tuple[Hashable, float]:
        """Remove and return the minimum (item, priority) pair.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._items:
            raise IndexError("pop_min() on empty heap")
        return self._remove_at(0)

    def remove(self, item: Hashable) -> float:
        """Remove ``item`` and return its priority.

        Raises:
            KeyError: if ``item`` is not in the heap.
        """
        slot = self._slots[item]
        __, priority = self._remove_at(slot)
        return priority

    def update(self, item: Hashable, priority: float) -> None:
        """Set the priority of ``item`` (it must already be present).

        Raises:
            KeyError: if ``item`` is not in the heap.
        """
        slot = self._slots[item]
        old = self._priorities[slot]
        self._priorities[slot] = priority
        if priority < old:
            self._sift_up(slot)
        else:
            self._sift_down(slot)

    def add_to(self, item: Hashable, delta: float) -> float:
        """Add ``delta`` to the priority of ``item``; return the new value.

        This is the §3.2 "if q_j is in the heap, increment its count"
        operation.

        Raises:
            KeyError: if ``item`` is not in the heap.
        """
        new_priority = self._priorities[self._slots[item]] + delta
        self.update(item, new_priority)
        return new_priority

    def as_sorted_list(self) -> list[tuple[Hashable, float]]:
        """Return all (item, priority) pairs sorted by priority descending."""
        return sorted(
            zip(self._items, self._priorities, strict=True),
            key=lambda pair: pair[1],
            reverse=True,
        )

    def entries(self) -> list[tuple[Hashable, float]]:
        """All (item, priority) pairs in internal heap-array order.

        The order is part of the heap's observable behaviour (ties in
        :meth:`as_sorted_list` break by array position), so snapshots that
        must restore *bit-for-bit* identical output serialize this order
        and rebuild with :meth:`from_entries`.
        """
        return list(zip(self._items, self._priorities, strict=True))

    @classmethod
    def from_entries(
        cls, entries: list[tuple[Hashable, float]]
    ) -> IndexedMinHeap:
        """Rebuild a heap from :meth:`entries` output, order preserved.

        Raises:
            ValueError: if ``entries`` contains a duplicate item or does
                not satisfy the min-heap property (i.e. it was not
                produced by :meth:`entries`).
        """
        heap = cls()
        heap._items = [item for item, __ in entries]
        heap._priorities = [float(priority) for __, priority in entries]
        heap._slots = {item: slot for slot, item in enumerate(heap._items)}
        if len(heap._slots) != len(heap._items):
            raise ValueError("heap entries contain a duplicate item")
        for slot in range(1, len(heap._priorities)):
            parent = (slot - 1) // 2
            if heap._priorities[slot] < heap._priorities[parent]:
                raise ValueError(
                    "entries do not satisfy the min-heap property; only "
                    "lists produced by entries() can be restored"
                )
        return heap

    # -- internal sifting ---------------------------------------------------

    def _remove_at(self, slot: int) -> tuple[Hashable, float]:
        item = self._items[slot]
        priority = self._priorities[slot]
        last_item = self._items.pop()
        last_priority = self._priorities.pop()
        del self._slots[item]
        if slot < len(self._items):
            self._items[slot] = last_item
            self._priorities[slot] = last_priority
            self._slots[last_item] = slot
            if last_priority < priority:
                self._sift_up(slot)
            else:
                self._sift_down(slot)
        return item, priority

    def _swap(self, a: int, b: int) -> None:
        self._items[a], self._items[b] = self._items[b], self._items[a]
        self._priorities[a], self._priorities[b] = (
            self._priorities[b],
            self._priorities[a],
        )
        self._slots[self._items[a]] = a
        self._slots[self._items[b]] = b

    def _sift_up(self, slot: int) -> None:
        while slot > 0:
            parent = (slot - 1) // 2
            if self._priorities[slot] < self._priorities[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                break

    def _sift_down(self, slot: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and self._priorities[left] < self._priorities[smallest]:
                smallest = left
            if right < size and self._priorities[right] < self._priorities[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest
