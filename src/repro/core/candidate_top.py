"""CANDIDATETOP(S, k, l) via the Count Sketch tracker (§4.1 usage).

§4.1 observes that in the tracker's ordered list of estimated most frequent
elements, the true top ``k`` can only be preceded by elements with count at
least ``(1−ε)·n_k``; keeping ``l > k`` tracked items therefore guarantees
(w.h.p.) that the true top ``k`` are *somewhere in the list* — a solution to
CANDIDATETOP(S, k, l).  For a Zipfian with parameter ``z``,
``l = k / (1−ε)^{1/z}`` suffices, i.e. ``l = O(k)``.

If a second pass over the stream is allowed, the true counts of the ``l``
candidates can be computed exactly and the true top ``k`` identified —
:meth:`CandidateTopTracker.refine` implements that second pass.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker


def candidate_list_size(k: int, epsilon: float, zipf_z: float) -> int:
    """§4.1's ``l = k / (1−ε)^{1/z}`` for a Zipfian stream, rounded up.

    Args:
        k: number of true top items that must be captured.
        epsilon: the tracker's APPROXTOP slack ε.
        zipf_z: the Zipf parameter ``z`` of the stream.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    if zipf_z <= 0:
        raise ValueError("zipf_z must be positive")
    l = k / (1.0 - epsilon) ** (1.0 / zipf_z)
    return max(k, int(l) + 1)


class CandidateTopTracker:
    """One-pass tracker whose candidate list contains the true top ``k``.

    Args:
        k: the number of items that must appear in the candidate list.
        l: candidate list length (``l ≥ k``); defaults to ``2k``, a safe
            constant multiple for Zipf parameters ``z ≥ 0.5`` and small ε.
        sketch: optional explicit sketch (else built from depth/width/seed).
        depth: rows of the internal sketch.
        width: counters per row of the internal sketch.
        seed: seed for the internal sketch.
    """

    def __init__(
        self,
        k: int,
        l: int | None = None,
        sketch: CountSketch | None = None,
        depth: int | None = None,
        width: int | None = None,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        if l is None:
            l = 2 * k
        if l < k:
            raise ValueError("l must be at least k")
        self._k = k
        self._l = l
        self._tracker = TopKTracker(
            l, sketch=sketch, depth=depth, width=width, seed=seed
        )

    @property
    def k(self) -> int:
        """The number of true top items to capture."""
        return self._k

    @property
    def l(self) -> int:
        """The candidate list length."""
        return self._l

    @property
    def sketch(self) -> CountSketch:
        """The underlying Count Sketch."""
        return self._tracker.sketch

    def update(self, item: Hashable, count: int = 1) -> None:
        """Process ``count`` occurrences of ``item``."""
        self._tracker.update(item, count)

    def candidates(self) -> list[tuple[Hashable, float]]:
        """All ``l`` candidates with their tracked counts, heaviest first."""
        return self._tracker.top(self._l)

    def top(self, k: int | None = None) -> list[tuple[Hashable, float]]:
        """The ``k`` heaviest candidates by tracked (approximate) count."""
        return self._tracker.top(self._k if k is None else k)

    def refine(self, stream: Iterable[Hashable]) -> list[tuple[Hashable, int]]:
        """Second pass: exact counts for candidates; return the true top k.

        Args:
            stream: a second pass over the same stream (any iterable that
                replays the data).

        Returns:
            The ``k`` candidates with the largest *exact* counts, as
            (item, exact count) pairs sorted descending.
        """
        candidate_items = {item for item, __ in self.candidates()}
        exact: dict[Hashable, int] = {item: 0 for item in candidate_items}
        for item in stream:
            if item in exact:
                exact[item] += 1
        ranked = sorted(exact.items(), key=lambda pair: pair[1], reverse=True)
        return ranked[: self._k]

    def counters_used(self) -> int:
        """Sketch counters plus one counter per candidate."""
        return self._tracker.counters_used()

    def items_stored(self) -> int:
        """Stored stream objects: the ``l`` candidates."""
        return self._tracker.items_stored()

    def __repr__(self) -> str:
        return f"CandidateTopTracker(k={self._k}, l={self._l})"
