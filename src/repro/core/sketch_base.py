"""Shared interfaces for stream summaries.

Every algorithm in this library — the Count Sketch tracker and all the
baselines — consumes a stream one item at a time and answers questions about
item frequencies afterwards.  Two protocols capture the two capability
levels:

* :class:`FrequencyEstimator` — can estimate the count of *any* item
  (sketches, exact counters).
* :class:`StreamSummary` — can report a list of (item, estimated count)
  pairs for the heaviest items (every top-k style algorithm).

The experiment harness is written against these protocols, which is what
lets one harness sweep Count Sketch and every baseline uniformly.

Space accounting is part of the interface: the paper compares algorithms by
the number of *counters* and *stored objects* they hold (see §5), so every
summary reports both, in those units, rather than Python object sizes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Protocol, runtime_checkable


@runtime_checkable
class FrequencyEstimator(Protocol):
    """A summary that can estimate the frequency of any queried item."""

    def update(self, item: Hashable, count: int = 1) -> None:
        """Record ``count`` additional occurrences of ``item``."""
        ...

    def estimate(self, item: Hashable) -> float:
        """Return the estimated number of occurrences of ``item``."""
        ...


@runtime_checkable
class StreamSummary(Protocol):
    """A summary that can report the heaviest items it has tracked."""

    def update(self, item: Hashable, count: int = 1) -> None:
        """Record ``count`` additional occurrences of ``item``."""
        ...

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """Return up to ``k`` (item, estimated count) pairs, heaviest first."""
        ...

    def counters_used(self) -> int:
        """Number of numeric counters the summary currently holds."""
        ...

    def items_stored(self) -> int:
        """Number of stream objects (keys) the summary currently stores."""
        ...


def consume(summary: FrequencyEstimator | StreamSummary,
            stream: Iterable[Hashable]) -> None:
    """Feed every item of ``stream`` into ``summary`` in order.

    A convenience used throughout the examples, tests, and experiments;
    algorithms that need to see items one at a time (heap-based trackers)
    and algorithms that could batch (pure sketches) both accept this path.
    """
    update = summary.update
    for item in stream:
        update(item)
