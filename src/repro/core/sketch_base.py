"""Shared interfaces for stream summaries.

Every algorithm in this library — the Count Sketch tracker and all the
baselines — consumes a stream one item at a time and answers questions about
item frequencies afterwards.  Two protocols capture the two capability
levels:

* :class:`FrequencyEstimator` — can estimate the count of *any* item
  (sketches, exact counters).
* :class:`StreamSummary` — can report a list of (item, estimated count)
  pairs for the heaviest items (every top-k style algorithm).

The experiment harness is written against these protocols, which is what
lets one harness sweep Count Sketch and every baseline uniformly.

Space accounting is part of the interface: the paper compares algorithms by
the number of *counters* and *stored objects* they hold (see §5), so every
summary reports both, in those units, rather than Python object sizes.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class FrequencyEstimator(Protocol):
    """A summary that can estimate the frequency of any queried item."""

    def update(self, item: Hashable, count: int = 1) -> None:
        """Record ``count`` additional occurrences of ``item``."""
        ...

    def estimate(self, item: Hashable) -> float:
        """Return the estimated number of occurrences of ``item``."""
        ...


@runtime_checkable
class StreamSummary(Protocol):
    """A summary that can report the heaviest items it has tracked."""

    def update(self, item: Hashable, count: int = 1) -> None:
        """Record ``count`` additional occurrences of ``item``."""
        ...

    def top(self, k: int) -> list[tuple[Hashable, float]]:
        """Return up to ``k`` (item, estimated count) pairs, heaviest first."""
        ...

    def counters_used(self) -> int:
        """Number of numeric counters the summary currently holds."""
        ...

    def items_stored(self) -> int:
        """Number of stream objects (keys) the summary currently stores."""
        ...


def coerce_counter_array(
    counters: object, depth: int, width: int
) -> np.ndarray:
    """Validate and convert a serialized counter block to int64.

    Accepts the ``np.ndarray`` a modern ``state_dict`` carries as well as
    the nested-list form older serializations used.  Anything that is not
    exactly-representable integer data is rejected: a float array that
    slipped into a state dict would otherwise be truncated silently here
    and break exact round-trip/merge equality downstream.

    Raises:
        ValueError: if the array is non-integral (float/complex/object
            data, or integral-typed values that do not fit int64) or its
            shape is not ``(depth, width)``.
    """
    array = np.asarray(counters)
    if array.dtype.kind not in "iu":
        candidate = np.asarray(counters, dtype=np.float64)
        if not np.all(np.isfinite(candidate)) or not np.array_equal(
            candidate, np.trunc(candidate)
        ):
            raise ValueError(
                "counter array must be integral: the int64 counter "
                "invariant rejects float/non-numeric counter data"
            )
        array = candidate
    coerced = array.astype(np.int64, casting="unsafe")
    if not np.array_equal(coerced.astype(array.dtype), array):
        raise ValueError("counter values do not fit in int64")
    if coerced.shape != (depth, width):
        raise ValueError(
            f"counter array shape {coerced.shape} does not match "
            f"(depth, width) = ({depth}, {width})"
        )
    return coerced


def consume(summary: FrequencyEstimator | StreamSummary,
            stream: Iterable[Hashable]) -> None:
    """Feed every item of ``stream`` into ``summary`` in order.

    A convenience used throughout the examples, tests, and experiments;
    algorithms that need to see items one at a time (heap-based trackers)
    and algorithms that could batch (pure sketches) both accept this path.
    """
    update = summary.update
    for item in stream:
        update(item)
